//! The design arena: a DAG of modules with a designated top.

use crate::ids::ModuleId;
use crate::module::{MacroInst, Module};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

/// A complete design: an arena of modules forming a DAG under
/// instantiation, with one top module.
///
/// ```
/// use ggpu_netlist::design::Design;
/// use ggpu_netlist::module::Module;
///
/// let mut design = Design::new("demo");
/// let leaf = design.add_module(Module::new("leaf"));
/// let mut top = Module::new("top");
/// top.children.push(ggpu_netlist::module::Instance {
///     name: "u0".into(),
///     module: leaf,
/// });
/// let top = design.add_module(top);
/// design.set_top(top);
/// assert!(design.validate().is_ok());
/// ```
#[derive(Clone)]
pub struct Design {
    name: String,
    modules: Vec<Module>,
    top: Option<ModuleId>,
    /// Lazily computed structural fingerprint per module, parallel to
    /// `modules`. A slot is filled on first demand
    /// ([`Design::module_fingerprint`]) and invalidated whenever the
    /// module is borrowed mutably ([`Design::module_mut`]). Cloning a
    /// design clones the filled slots — a fingerprint is a pure
    /// function of module content, which cloning preserves — so a DSE
    /// variant derived by clone-then-mutate re-hashes only the modules
    /// it actually touched. Excluded from `PartialEq`/`Debug`/`Hash`:
    /// it is a cache, not part of the design's identity.
    fp_cache: Vec<OnceLock<u64>>,
}

/// Equality is structural: name, modules and top. The fingerprint
/// cache never participates — two designs with identical contents are
/// equal regardless of which fingerprints happen to be computed.
impl PartialEq for Design {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.modules == other.modules && self.top == other.top
    }
}

impl fmt::Debug for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Design")
            .field("name", &self.name)
            .field("modules", &self.modules)
            .field("top", &self.top)
            .finish()
    }
}

/// Structural hash consistent with `PartialEq` (name, modules, top);
/// module contents are folded in via their cached fingerprints, so
/// hashing a warm design is O(module count), not O(design size).
impl Hash for Design {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.name.hash(state);
        state.write_usize(self.modules.len());
        for id in self.module_ids() {
            state.write_u64(self.module_fingerprint(id));
        }
        self.top.hash(state);
    }
}

/// Structural problems detected by [`Design::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateDesignError {
    /// No top module was set.
    MissingTop,
    /// A child instance refers to a module id not in the arena.
    DanglingChild {
        /// The parent module's name.
        parent: String,
        /// The offending instance name.
        instance: String,
    },
    /// The instantiation graph contains a cycle through this module.
    InstantiationCycle(String),
    /// Two modules share a name.
    DuplicateModuleName(String),
    /// Two children of one module share an instance name.
    DuplicateInstanceName {
        /// The parent module's name.
        parent: String,
        /// The duplicated instance name.
        instance: String,
    },
    /// Two macros of one module share an instance name.
    DuplicateMacroName {
        /// The owning module's name.
        module: String,
        /// The duplicated macro name.
        name: String,
    },
}

impl fmt::Display for ValidateDesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateDesignError::MissingTop => f.write_str("design has no top module"),
            ValidateDesignError::DanglingChild { parent, instance } => {
                write!(
                    f,
                    "instance {instance} in {parent} refers to a missing module"
                )
            }
            ValidateDesignError::InstantiationCycle(m) => {
                write!(f, "instantiation cycle through module {m}")
            }
            ValidateDesignError::DuplicateModuleName(m) => {
                write!(f, "duplicate module name {m}")
            }
            ValidateDesignError::DuplicateInstanceName { parent, instance } => {
                write!(f, "duplicate instance name {instance} in {parent}")
            }
            ValidateDesignError::DuplicateMacroName { module, name } => {
                write!(f, "duplicate macro name {name} in {module}")
            }
        }
    }
}

impl Error for ValidateDesignError {}

impl Design {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            modules: Vec::new(),
            top: None,
            fp_cache: Vec::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design (used when the DSE derives variants).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a module to the arena and returns its id.
    pub fn add_module(&mut self, module: Module) -> ModuleId {
        let id = ModuleId::from_index(self.modules.len());
        self.modules.push(module);
        self.fp_cache.push(OnceLock::new());
        id
    }

    /// Designates the top module.
    pub fn set_top(&mut self, id: ModuleId) {
        assert!(id.index() < self.modules.len(), "top id out of range");
        self.top = Some(id);
    }

    /// The top module id.
    ///
    /// # Panics
    ///
    /// Panics if no top was set; call [`Design::validate`] first when
    /// handling untrusted designs.
    pub fn top(&self) -> ModuleId {
        self.top.expect("design has no top module")
    }

    /// Borrows a module.
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.index()]
    }

    /// Mutably borrows a module.
    ///
    /// Conservatively invalidates the module's cached fingerprint:
    /// any mutable access is assumed to change content (re-hashing an
    /// unchanged module is cheap; serving a stale fingerprint would
    /// poison every downstream content-addressed cache).
    pub fn module_mut(&mut self, id: ModuleId) -> &mut Module {
        self.fp_cache[id.index()] = OnceLock::new();
        &mut self.modules[id.index()]
    }

    /// The structural fingerprint of one module: a 64-bit hash of its
    /// full contents (name, cell groups, macros, children, timing
    /// paths — floats by bit pattern). Computed lazily and cached;
    /// repeated calls on an unmutated module are a single atomic load.
    ///
    /// Deterministic across processes and designs: two modules with
    /// bit-identical contents fingerprint equal wherever they live,
    /// which is what lets the incremental STA engine share timed
    /// results between the 24 sweep points of a design-space search.
    pub fn module_fingerprint(&self, id: ModuleId) -> u64 {
        *self.fp_cache[id.index()].get_or_init(|| {
            let mut h = DefaultHasher::new();
            self.modules[id.index()].hash(&mut h);
            h.finish()
        })
    }

    /// The structural fingerprint of the whole design: module count,
    /// every per-module fingerprint in arena order, and the top id.
    ///
    /// The design *name* is deliberately excluded — timing, synthesis
    /// and power are pure functions of structure, and the flow renames
    /// designs (`ggpu_1cu_590mhz`, …) after optimization; including
    /// the name would only split cache entries that must agree.
    ///
    /// Replaces the old `Debug`-string hashing, which formatted the
    /// entire design (O(design size)) on every cache probe; on a warm
    /// fingerprint cache this is O(module count).
    pub fn structural_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        h.write_usize(self.modules.len());
        for id in self.module_ids() {
            h.write_u64(self.module_fingerprint(id));
        }
        match self.top {
            Some(t) => h.write_u64(t.index() as u64 + 1),
            None => h.write_u64(0),
        }
        h.finish()
    }

    /// Finds a module by type name.
    pub fn module_by_name(&self, name: &str) -> Option<ModuleId> {
        self.modules
            .iter()
            .position(|m| m.name == name)
            .map(ModuleId::from_index)
    }

    /// All module ids in arena order.
    pub fn module_ids(&self) -> impl Iterator<Item = ModuleId> {
        (0..self.modules.len()).map(ModuleId::from_index)
    }

    /// Number of modules in the arena.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Checks structural invariants: a top exists, all children
    /// resolve, names are unique, and instantiation is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), ValidateDesignError> {
        if self.top.is_none() {
            return Err(ValidateDesignError::MissingTop);
        }
        let mut seen_names: HashMap<&str, ()> = HashMap::new();
        for module in &self.modules {
            if seen_names.insert(&module.name, ()).is_some() {
                return Err(ValidateDesignError::DuplicateModuleName(
                    module.name.clone(),
                ));
            }
            let mut inst_names: HashMap<&str, ()> = HashMap::new();
            for child in &module.children {
                if child.module.index() >= self.modules.len() {
                    return Err(ValidateDesignError::DanglingChild {
                        parent: module.name.clone(),
                        instance: child.name.clone(),
                    });
                }
                if inst_names.insert(&child.name, ()).is_some() {
                    return Err(ValidateDesignError::DuplicateInstanceName {
                        parent: module.name.clone(),
                        instance: child.name.clone(),
                    });
                }
            }
            let mut macro_names: HashMap<&str, ()> = HashMap::new();
            for m in &module.macros {
                if macro_names.insert(&m.name, ()).is_some() {
                    return Err(ValidateDesignError::DuplicateMacroName {
                        module: module.name.clone(),
                        name: m.name.clone(),
                    });
                }
            }
        }
        // Cycle check: DFS with colouring.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        fn dfs(
            design: &Design,
            id: ModuleId,
            colour: &mut [Colour],
        ) -> Result<(), ValidateDesignError> {
            match colour[id.index()] {
                Colour::Black => return Ok(()),
                Colour::Grey => {
                    return Err(ValidateDesignError::InstantiationCycle(
                        design.module(id).name.clone(),
                    ))
                }
                Colour::White => {}
            }
            colour[id.index()] = Colour::Grey;
            for child in &design.module(id).children {
                dfs(design, child.module, colour)?;
            }
            colour[id.index()] = Colour::Black;
            Ok(())
        }
        let mut colour = vec![Colour::White; self.modules.len()];
        for id in self.module_ids() {
            dfs(self, id, &mut colour)?;
        }
        Ok(())
    }

    /// Visits every instance in the hierarchy under the top module,
    /// depth-first, yielding `(hierarchical_path, module_id)` pairs.
    /// The top module itself is visited with an empty path.
    pub fn visit_instances<F: FnMut(&str, ModuleId)>(&self, mut f: F) {
        fn walk<F: FnMut(&str, ModuleId)>(
            design: &Design,
            id: ModuleId,
            path: &mut String,
            f: &mut F,
        ) {
            f(path, id);
            let len = path.len();
            for child in &design.module(id).children {
                if !path.is_empty() {
                    path.push('/');
                }
                path.push_str(&child.name);
                walk(design, child.module, path, f);
                path.truncate(len);
            }
        }
        let mut path = String::new();
        walk(self, self.top(), &mut path, &mut f);
    }

    /// Lists every macro instance under the top module with its full
    /// hierarchical path (`"cu0/pe3/rf_bank2"`).
    pub fn all_macros(&self) -> Vec<(String, MacroInst)> {
        let mut out = Vec::new();
        self.visit_instances(|path, id| {
            for m in &self.module(id).macros {
                let full = if path.is_empty() {
                    m.name.clone()
                } else {
                    format!("{path}/{}", m.name)
                };
                out.push((full, m.clone()));
            }
        });
        out
    }

    /// Counts how many times each module is instantiated under the top
    /// (the top itself counts once). Modules unreachable from the top
    /// have multiplicity zero.
    pub fn multiplicities(&self) -> Vec<u64> {
        let mut mult = vec![0u64; self.modules.len()];
        fn walk(design: &Design, id: ModuleId, mult: &mut [u64]) {
            mult[id.index()] += 1;
            for child in &design.module(id).children {
                walk(design, child.module, mult);
            }
        }
        walk(self, self.top(), &mut mult);
        mult
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Instance;

    fn two_level() -> Design {
        let mut d = Design::new("t");
        let leaf = d.add_module(Module::new("leaf"));
        let mut mid = Module::new("mid");
        mid.children.push(Instance {
            name: "l0".into(),
            module: leaf,
        });
        mid.children.push(Instance {
            name: "l1".into(),
            module: leaf,
        });
        let mid = d.add_module(mid);
        let mut top = Module::new("top");
        for i in 0..3 {
            top.children.push(Instance {
                name: format!("m{i}"),
                module: mid,
            });
        }
        let top = d.add_module(top);
        d.set_top(top);
        d
    }

    #[test]
    fn validate_accepts_dag() {
        assert!(two_level().validate().is_ok());
    }

    #[test]
    fn validate_rejects_missing_top() {
        let d = Design::new("x");
        assert_eq!(d.validate(), Err(ValidateDesignError::MissingTop));
    }

    #[test]
    fn validate_rejects_cycle() {
        let mut d = Design::new("x");
        let a = d.add_module(Module::new("a"));
        let b = d.add_module(Module::new("b"));
        d.module_mut(a).children.push(Instance {
            name: "u".into(),
            module: b,
        });
        d.module_mut(b).children.push(Instance {
            name: "v".into(),
            module: a,
        });
        d.set_top(a);
        assert!(matches!(
            d.validate(),
            Err(ValidateDesignError::InstantiationCycle(_))
        ));
    }

    #[test]
    fn validate_rejects_duplicate_module_names() {
        let mut d = Design::new("x");
        let a = d.add_module(Module::new("a"));
        d.add_module(Module::new("a"));
        d.set_top(a);
        assert_eq!(
            d.validate(),
            Err(ValidateDesignError::DuplicateModuleName("a".into()))
        );
    }

    #[test]
    fn validate_rejects_duplicate_instance_names() {
        let mut d = Design::new("x");
        let leaf = d.add_module(Module::new("leaf"));
        let mut top = Module::new("top");
        for _ in 0..2 {
            top.children.push(Instance {
                name: "u0".into(),
                module: leaf,
            });
        }
        let top = d.add_module(top);
        d.set_top(top);
        assert!(matches!(
            d.validate(),
            Err(ValidateDesignError::DuplicateInstanceName { .. })
        ));
    }

    #[test]
    fn multiplicities_multiply_through_hierarchy() {
        let d = two_level();
        let mult = d.multiplicities();
        let leaf = d.module_by_name("leaf").unwrap();
        let mid = d.module_by_name("mid").unwrap();
        let top = d.module_by_name("top").unwrap();
        assert_eq!(mult[top.index()], 1);
        assert_eq!(mult[mid.index()], 3);
        assert_eq!(mult[leaf.index()], 6);
    }

    #[test]
    fn visit_builds_hierarchical_paths() {
        let d = two_level();
        let mut paths = Vec::new();
        d.visit_instances(|p, _| paths.push(p.to_string()));
        assert!(paths.contains(&"".to_string()));
        assert!(paths.contains(&"m1/l0".to_string()));
        assert_eq!(paths.len(), 1 + 3 + 6);
    }

    #[test]
    fn all_macros_reports_full_paths() {
        use crate::module::{MacroInst, MemoryRole};
        use ggpu_tech::sram::SramConfig;
        let mut d = two_level();
        let leaf = d.module_by_name("leaf").unwrap();
        d.module_mut(leaf).macros.push(MacroInst::new(
            "ram",
            SramConfig::dual(64, 8),
            MemoryRole::Other,
            0.5,
        ));
        let macros = d.all_macros();
        assert_eq!(macros.len(), 6);
        assert!(macros.iter().any(|(p, _)| p == "m2/l1/ram"));
    }

    #[test]
    fn fingerprints_are_cached_and_invalidated_on_mutation() {
        let mut d = two_level();
        let leaf = d.module_by_name("leaf").unwrap();
        let fp1 = d.module_fingerprint(leaf);
        assert_eq!(fp1, d.module_fingerprint(leaf), "stable while unmutated");
        let whole1 = d.structural_fingerprint();
        assert_eq!(whole1, d.structural_fingerprint());

        // Mutating one module changes its fingerprint and the design's.
        d.module_mut(leaf).name = "leaf2".into();
        assert_ne!(d.module_fingerprint(leaf), fp1);
        assert_ne!(d.structural_fingerprint(), whole1);

        // An untouched sibling keeps its fingerprint.
        let mid = d.module_by_name("mid").unwrap();
        let mid_fp = d.module_fingerprint(mid);
        d.module_mut(leaf).name = "leaf".into();
        assert_eq!(d.module_fingerprint(mid), mid_fp);
        assert_eq!(d.module_fingerprint(leaf), fp1, "content round-trip");
        assert_eq!(d.structural_fingerprint(), whole1);
    }

    #[test]
    fn clone_preserves_fingerprints_and_equality_ignores_cache() {
        let d = two_level();
        let fp = d.structural_fingerprint(); // warm the cache
        let cold = two_level(); // nothing computed
        assert_eq!(d, cold, "cache state must not affect equality");
        let cloned = d.clone();
        assert_eq!(cloned.structural_fingerprint(), fp);
    }

    #[test]
    fn structural_fingerprint_ignores_design_name() {
        let mut a = two_level();
        let b = two_level();
        a.set_name("renamed_variant");
        assert_ne!(a, b, "names differ so designs differ");
        assert_eq!(
            a.structural_fingerprint(),
            b.structural_fingerprint(),
            "structure is identical"
        );
    }

    #[test]
    fn identical_module_content_fingerprints_equal_across_designs() {
        let a = two_level();
        let b = two_level();
        let la = a.module_by_name("leaf").unwrap();
        let lb = b.module_by_name("leaf").unwrap();
        assert_eq!(a.module_fingerprint(la), b.module_fingerprint(lb));
    }

    #[test]
    fn module_lookup() {
        let d = two_level();
        assert!(d.module_by_name("mid").is_some());
        assert!(d.module_by_name("nope").is_none());
        assert_eq!(d.module_count(), 3);
    }
}
