//! Module contents: cell groups, memory macros and child instances.

use crate::ids::ModuleId;
use crate::timing::TimingPath;
use ggpu_tech::sram::SramConfig;
use ggpu_tech::stdcell::CellClass;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A population of identical standard cells inside a module.
///
/// Real elaborated netlists contain each cell individually; at the
/// scale of an 8-CU G-GPU (1.5 M+ cells) that is wasteful when the flow
/// only needs counts, area, power and representative timing paths.
/// A `CellGroup` is a run-length-encoded population: `count` cells of
/// `class`, toggling with the given `activity` (fraction of cells
/// switching per clock cycle, used by the dynamic-power rollup).
#[derive(Debug, Clone, PartialEq)]
pub struct CellGroup {
    /// Descriptive name (e.g. `"operand_regs"`).
    pub name: String,
    /// The cell class populated.
    pub class: CellClass,
    /// Number of cells.
    pub count: u64,
    /// Average switching activity (0.0–1.0) per cycle.
    pub activity: f64,
}

/// Structural hash; the switching activity participates via its
/// IEEE-754 bit pattern (see the [`crate::timing::TimingPath`] note).
impl Hash for CellGroup {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.name.hash(state);
        self.class.hash(state);
        self.count.hash(state);
        state.write_u64(self.activity.to_bits());
    }
}

impl CellGroup {
    /// Creates a group, validating the activity range.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `0.0..=1.0`.
    pub fn new(name: impl Into<String>, class: CellClass, count: u64, activity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity must be in [0, 1], got {activity}"
        );
        Self {
            name: name.into(),
            class,
            count,
            activity,
        }
    }
}

/// What architectural structure a memory macro implements; used by the
/// report generators and by the floorplanner's colour coding (the
/// paper's Figs. 3–4 colour memories by partition role).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MemoryRole {
    /// Per-PE register file bank.
    RegisterFile,
    /// Instruction memory (CRAM).
    InstructionRam,
    /// Local scratchpad (LRAM).
    ScratchRam,
    /// Data-cache data array.
    CacheData,
    /// Data-cache tag array.
    CacheTag,
    /// Runtime memory holding kernel descriptors.
    RuntimeMemory,
    /// Data-mover / interface FIFO.
    Fifo,
    /// Wavefront / workgroup bookkeeping state.
    SchedulerState,
    /// Anything else.
    Other,
}

impl fmt::Display for MemoryRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemoryRole::RegisterFile => "register-file",
            MemoryRole::InstructionRam => "instruction-ram",
            MemoryRole::ScratchRam => "scratch-ram",
            MemoryRole::CacheData => "cache-data",
            MemoryRole::CacheTag => "cache-tag",
            MemoryRole::RuntimeMemory => "runtime-memory",
            MemoryRole::Fifo => "fifo",
            MemoryRole::SchedulerState => "scheduler-state",
            MemoryRole::Other => "other",
        };
        f.write_str(s)
    }
}

/// An instantiated memory macro.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroInst {
    /// Instance name within the module (e.g. `"rf_bank0"`).
    pub name: String,
    /// Requested geometry, compiled against the technology's memory
    /// compiler during synthesis.
    pub config: SramConfig,
    /// Architectural role.
    pub role: MemoryRole,
    /// Average accesses per clock cycle (0.0–1.0 per port), used by the
    /// dynamic-power rollup.
    pub access_activity: f64,
    /// Structural bank group: macros implementing the banks of one
    /// logical memory carry the same id (see [`crate::geometry`]).
    /// `None` for a standalone macro.
    pub bank_group: Option<crate::geometry::BankGroupId>,
}

/// Structural hash; the access activity participates via its IEEE-754
/// bit pattern (see the [`crate::timing::TimingPath`] note).
impl Hash for MacroInst {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.name.hash(state);
        self.config.hash(state);
        self.role.hash(state);
        state.write_u64(self.access_activity.to_bits());
        self.bank_group.hash(state);
    }
}

impl MacroInst {
    /// Creates a macro instance, validating the activity range.
    ///
    /// # Panics
    ///
    /// Panics if `access_activity` is outside `0.0..=1.0`.
    pub fn new(
        name: impl Into<String>,
        config: SramConfig,
        role: MemoryRole,
        access_activity: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&access_activity),
            "access activity must be in [0, 1], got {access_activity}"
        );
        Self {
            name: name.into(),
            config,
            role,
            access_activity,
            bank_group: None,
        }
    }

    /// Assigns the structural bank group (builder style).
    pub fn with_bank_group(mut self, group: crate::geometry::BankGroupId) -> Self {
        self.bank_group = Some(group);
        self
    }
}

/// A child-module instantiation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instance {
    /// Instance name within the parent (e.g. `"cu0"`).
    pub name: String,
    /// The instantiated module.
    pub module: ModuleId,
}

/// A hardware module: populations of cells, memory macros, child
/// instances and representative timing paths.
///
/// `Hash` covers every field, so a module's hash is a structural
/// fingerprint of its full contents; [`crate::Design`] caches one
/// fingerprint per module and invalidates it on mutable access, which
/// is what makes design-level fingerprinting (and the incremental STA
/// engine built on it) O(dirty modules) instead of O(whole design).
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Module {
    /// Module (type) name, unique within a design.
    pub name: String,
    /// Standard-cell populations.
    pub groups: Vec<CellGroup>,
    /// Memory macros.
    pub macros: Vec<MacroInst>,
    /// Child instances.
    pub children: Vec<Instance>,
    /// Representative register-to-register timing paths through this
    /// module's logic (see [`crate::timing`]).
    pub paths: Vec<TimingPath>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            groups: Vec::new(),
            macros: Vec::new(),
            children: Vec::new(),
            paths: Vec::new(),
        }
    }

    /// Adds a cell group and returns `self` for chaining.
    pub fn with_group(mut self, group: CellGroup) -> Self {
        self.groups.push(group);
        self
    }

    /// Adds a macro and returns `self` for chaining.
    pub fn with_macro(mut self, m: MacroInst) -> Self {
        self.macros.push(m);
        self
    }

    /// Finds a macro by instance name.
    pub fn find_macro(&self, name: &str) -> Option<&MacroInst> {
        self.macros.iter().find(|m| m.name == name)
    }

    /// Finds a macro by instance name, mutably.
    pub fn find_macro_mut(&mut self, name: &str) -> Option<&mut MacroInst> {
        self.macros.iter_mut().find(|m| m.name == name)
    }

    /// Removes the named macro and returns it, or `None` if absent.
    pub fn remove_macro(&mut self, name: &str) -> Option<MacroInst> {
        let idx = self.macros.iter().position(|m| m.name == name)?;
        Some(self.macros.remove(idx))
    }

    /// Total number of child instances.
    pub fn child_count(&self) -> usize {
        self.children.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_tech::sram::SramConfig;

    #[test]
    fn build_and_query_module() {
        let mut m = Module::new("pe")
            .with_group(CellGroup::new("alu", CellClass::FullAdder, 640, 0.2))
            .with_macro(MacroInst::new(
                "rf",
                SramConfig::dual(512, 32),
                MemoryRole::RegisterFile,
                0.8,
            ));
        assert_eq!(m.name, "pe");
        assert!(m.find_macro("rf").is_some());
        assert!(m.find_macro("nope").is_none());
        let taken = m.remove_macro("rf").unwrap();
        assert_eq!(taken.config.words, 512);
        assert!(m.find_macro("rf").is_none());
        assert!(m.remove_macro("rf").is_none());
    }

    #[test]
    #[should_panic(expected = "activity must be in")]
    fn invalid_group_activity_panics() {
        let _ = CellGroup::new("x", CellClass::Inv, 1, 1.5);
    }

    #[test]
    #[should_panic(expected = "access activity must be in")]
    fn invalid_macro_activity_panics() {
        let _ = MacroInst::new("x", SramConfig::dual(64, 8), MemoryRole::Other, -0.1);
    }

    #[test]
    fn memory_role_display() {
        assert_eq!(MemoryRole::CacheData.to_string(), "cache-data");
        assert_eq!(MemoryRole::RegisterFile.to_string(), "register-file");
    }
}
