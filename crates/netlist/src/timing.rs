//! Representative timing paths.
//!
//! An elaborated netlist implies millions of register-to-register
//! paths; synthesis timing is governed by a handful of structural
//! worst-case paths per module. The RTL generators declare exactly
//! those ([`TimingPath`]): where the path launches
//! ([`PathEndpoint::Macro`] paths model the paper's "critical path has
//! its starting point at a memory block"), the chain of logic stages it
//! traverses, and any post-layout wire delay annotated by the router.
//!
//! GPUPlanner's two transforms operate directly on these paths:
//! memory division shrinks the launching macro and prepends a MUX
//! stage; pipeline insertion splits the stage chain in two.

use ggpu_tech::stdcell::CellClass;
use ggpu_tech::units::Ns;
use std::fmt;

/// Where a timing path begins or ends.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PathEndpoint {
    /// A standard-cell register (launch: clock-to-Q; capture: setup).
    Register,
    /// A memory macro identified by its instance name within the
    /// owning module (launch: access time; capture: address/data
    /// setup).
    Macro(String),
    /// A module input port (delay budgeted externally).
    Input,
    /// A module output port.
    Output,
}

impl fmt::Display for PathEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathEndpoint::Register => f.write_str("reg"),
            PathEndpoint::Macro(name) => write!(f, "macro({name})"),
            PathEndpoint::Input => f.write_str("in"),
            PathEndpoint::Output => f.write_str("out"),
        }
    }
}

/// One combinational stage of a path: a cell of `class` driving
/// `fanout` downstream pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LogicStage {
    /// The driving cell's class.
    pub class: CellClass,
    /// Number of sink pins the stage drives.
    pub fanout: u32,
}

impl LogicStage {
    /// A single stage.
    pub fn new(class: CellClass, fanout: u32) -> Self {
        Self { class, fanout }
    }

    /// A chain of `levels` identical stages — convenient for
    /// expressing "N levels of logic".
    pub fn chain(class: CellClass, levels: usize, fanout: u32) -> Vec<Self> {
        vec![Self::new(class, fanout); levels]
    }
}

/// A representative register-to-register (or macro-to-register, etc.)
/// timing path.
///
/// `Hash` is structural: every field participates (the route delay via
/// its IEEE-754 bit pattern), so the incremental STA engine's
/// content-addressed cache treats any mutation — endpoint rewiring,
/// stage edits, route annotation — as a new timing problem.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct TimingPath {
    /// Descriptive name, unique within the owning module.
    pub name: String,
    /// Launch point.
    pub start: PathEndpoint,
    /// Capture point.
    pub end: PathEndpoint,
    /// The combinational stages between launch and capture.
    pub stages: Vec<LogicStage>,
    /// Additional wire delay annotated after routing; zero pre-layout.
    pub route_delay: Ns,
}

impl TimingPath {
    /// Creates a pre-layout path (no route delay).
    pub fn new(
        name: impl Into<String>,
        start: PathEndpoint,
        end: PathEndpoint,
        stages: Vec<LogicStage>,
    ) -> Self {
        Self {
            name: name.into(),
            start,
            end,
            stages,
            route_delay: Ns::ZERO,
        }
    }

    /// Number of combinational stages.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Splits the path after stage `cut` (0-based, exclusive), modelling
    /// pipeline-register insertion: the first half captures into the new
    /// register, the second half launches from it. Route delay stays on
    /// the second half (the inserted register is placed at the launch
    /// end of the long route).
    ///
    /// # Panics
    ///
    /// Panics if `cut` is zero or not less than the stage count —
    /// a pipeline register must leave logic on both sides.
    pub fn split_at(&self, cut: usize) -> (TimingPath, TimingPath) {
        assert!(
            cut > 0 && cut < self.stages.len(),
            "cut {cut} must leave stages on both sides of a {}-stage path",
            self.stages.len()
        );
        let first = TimingPath {
            name: format!("{}__p0", self.name),
            start: self.start.clone(),
            end: PathEndpoint::Register,
            stages: self.stages[..cut].to_vec(),
            route_delay: Ns::ZERO,
        };
        let second = TimingPath {
            name: format!("{}__p1", self.name),
            start: PathEndpoint::Register,
            end: self.end.clone(),
            stages: self.stages[cut..].to_vec(),
            route_delay: self.route_delay,
        };
        (first, second)
    }

    /// `true` if the path launches from the named macro.
    pub fn launches_from_macro(&self, macro_name: &str) -> bool {
        matches!(&self.start, PathEndpoint::Macro(n) if n == macro_name)
    }

    /// `true` if the path captures into the named macro.
    pub fn captures_into_macro(&self, macro_name: &str) -> bool {
        matches!(&self.end, PathEndpoint::Macro(n) if n == macro_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimingPath {
        TimingPath::new(
            "rf_read",
            PathEndpoint::Macro("rf0".into()),
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 6, 2),
        )
    }

    #[test]
    fn chain_builds_levels() {
        let stages = LogicStage::chain(CellClass::Inv, 4, 3);
        assert_eq!(stages.len(), 4);
        assert!(stages.iter().all(|s| s.fanout == 3));
    }

    #[test]
    fn split_preserves_stage_total() {
        let p = sample();
        let (a, b) = p.split_at(2);
        assert_eq!(a.depth() + b.depth(), p.depth());
        assert_eq!(a.start, PathEndpoint::Macro("rf0".into()));
        assert_eq!(a.end, PathEndpoint::Register);
        assert_eq!(b.start, PathEndpoint::Register);
        assert_eq!(b.end, PathEndpoint::Register);
    }

    #[test]
    fn split_moves_route_delay_to_second_half() {
        let mut p = sample();
        p.route_delay = Ns::new(0.4);
        let (a, b) = p.split_at(3);
        assert_eq!(a.route_delay, Ns::ZERO);
        assert_eq!(b.route_delay, Ns::new(0.4));
    }

    #[test]
    #[should_panic(expected = "must leave stages on both sides")]
    fn split_at_zero_panics() {
        let _ = sample().split_at(0);
    }

    #[test]
    #[should_panic(expected = "must leave stages on both sides")]
    fn split_at_end_panics() {
        let p = sample();
        let _ = p.split_at(p.depth());
    }

    #[test]
    fn macro_queries() {
        let p = sample();
        assert!(p.launches_from_macro("rf0"));
        assert!(!p.launches_from_macro("rf1"));
        assert!(!p.captures_into_macro("rf0"));
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(PathEndpoint::Register.to_string(), "reg");
        assert_eq!(PathEndpoint::Macro("x".into()).to_string(), "macro(x)");
    }
}
