//! Index newtypes for the netlist arenas.

use std::fmt;

/// Identifies a [`crate::module::Module`] within a [`crate::design::Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleId(pub(crate) u32);

impl ModuleId {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs an id from a raw index. Intended for serialization
    /// round-trips; an id built from an arbitrary index may not refer
    /// to a live module.
    pub fn from_index(index: usize) -> Self {
        Self(index as u32)
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let id = ModuleId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "m7");
    }
}
