//! Statistics rollup: counts, area, leakage and per-cycle switching
//! energy, accumulated over the module hierarchy.
//!
//! These are the quantities the paper's Table I reports per design
//! (total area, memory area, #FF, #Comb., #Memory, leakage, dynamic
//! power). Dynamic power is frequency-dependent, so this module
//! reports *energy per clock cycle*; `ggpu-synth` multiplies by the
//! target clock.

use crate::design::Design;
use crate::ids::ModuleId;
use ggpu_tech::sram::CompileSramError;
use ggpu_tech::units::{NanoWatts, PicoJoules, Um2};
use ggpu_tech::Tech;
use std::collections::{BTreeMap, HashMap};
use std::ops::{Add, AddAssign};

/// Accumulated statistics of a module subtree or whole design.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetlistStats {
    /// Sequential (flip-flop) cell count.
    pub ff_cells: u64,
    /// Combinational cell count.
    pub comb_cells: u64,
    /// Memory macro count.
    pub macro_count: u64,
    /// Standard-cell area.
    pub cell_area: Um2,
    /// Memory macro area.
    pub macro_area: Um2,
    /// Standard-cell leakage.
    pub cell_leakage: NanoWatts,
    /// Memory macro leakage.
    pub macro_leakage: NanoWatts,
    /// Switching energy dissipated per clock cycle at the annotated
    /// activities (cells and macro accesses combined).
    pub energy_per_cycle: PicoJoules,
}

impl NetlistStats {
    /// Total silicon area (cells + macros).
    pub fn total_area(&self) -> Um2 {
        self.cell_area + self.macro_area
    }

    /// Total leakage (cells + macros).
    pub fn total_leakage(&self) -> NanoWatts {
        self.cell_leakage + self.macro_leakage
    }

    /// Total cell count (sequential + combinational).
    pub fn total_cells(&self) -> u64 {
        self.ff_cells + self.comb_cells
    }

    /// Scales every statistic by an integer multiplicity.
    fn scaled(self, n: u64) -> Self {
        let k = n as f64;
        Self {
            ff_cells: self.ff_cells * n,
            comb_cells: self.comb_cells * n,
            macro_count: self.macro_count * n,
            cell_area: self.cell_area * k,
            macro_area: self.macro_area * k,
            cell_leakage: self.cell_leakage * k,
            macro_leakage: self.macro_leakage * k,
            energy_per_cycle: self.energy_per_cycle * k,
        }
    }
}

impl Add for NetlistStats {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            ff_cells: self.ff_cells + rhs.ff_cells,
            comb_cells: self.comb_cells + rhs.comb_cells,
            macro_count: self.macro_count + rhs.macro_count,
            cell_area: self.cell_area + rhs.cell_area,
            macro_area: self.macro_area + rhs.macro_area,
            cell_leakage: self.cell_leakage + rhs.cell_leakage,
            macro_leakage: self.macro_leakage + rhs.macro_leakage,
            energy_per_cycle: self.energy_per_cycle + rhs.energy_per_cycle,
        }
    }
}

impl AddAssign for NetlistStats {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

/// Computes the statistics local to one module (its own groups and
/// macros, no children).
///
/// # Errors
///
/// Fails if a macro geometry is outside the memory-compiler range.
pub fn local_stats(
    design: &Design,
    id: ModuleId,
    tech: &Tech,
) -> Result<NetlistStats, CompileSramError> {
    let module = design.module(id);
    let mut stats = NetlistStats::default();
    for group in &module.groups {
        let spec = tech.library.cell(group.class);
        if group.class.is_sequential() {
            stats.ff_cells += group.count;
        } else {
            stats.comb_cells += group.count;
        }
        let k = group.count as f64;
        stats.cell_area += spec.area * k;
        stats.cell_leakage += spec.leakage * k;
        stats.energy_per_cycle += spec.switch_energy * (k * group.activity);
        // Sequential cells also burn clock-tree energy every cycle,
        // independent of data activity.
        if group.class.is_sequential() {
            stats.energy_per_cycle += spec.switch_energy * (0.45 * k);
        }
    }
    for m in &module.macros {
        let compiled = tech.memory_compiler.compile(m.config)?;
        stats.macro_count += 1;
        stats.macro_area += compiled.area;
        stats.macro_leakage += compiled.leakage;
        let rw_mix = 0.7 * compiled.read_energy.value() + 0.3 * compiled.write_energy.value();
        stats.energy_per_cycle += PicoJoules::new(rw_mix) * m.access_activity;
    }
    Ok(stats)
}

/// Computes deep statistics of a module subtree (the module plus all
/// transitively instantiated children).
///
/// # Errors
///
/// Fails if any macro geometry in the subtree is outside the
/// memory-compiler range.
pub fn subtree_stats(
    design: &Design,
    id: ModuleId,
    tech: &Tech,
) -> Result<NetlistStats, CompileSramError> {
    fn go(
        design: &Design,
        id: ModuleId,
        tech: &Tech,
        memo: &mut HashMap<ModuleId, NetlistStats>,
    ) -> Result<NetlistStats, CompileSramError> {
        if let Some(&hit) = memo.get(&id) {
            return Ok(hit);
        }
        let mut stats = local_stats(design, id, tech)?;
        // Children with the same target module share one memoized
        // subtree; count instantiations. BTreeMap, not HashMap: the
        // accumulation below sums floats, so iteration order must be
        // deterministic for stats to be bit-for-bit reproducible
        // across calls (the parallel sweep asserts on this).
        let mut counts: BTreeMap<ModuleId, u64> = BTreeMap::new();
        for child in &design.module(id).children {
            *counts.entry(child.module).or_insert(0) += 1;
        }
        for (child, n) in counts {
            stats += go(design, child, tech, memo)?.scaled(n);
        }
        memo.insert(id, stats);
        Ok(stats)
    }
    go(design, id, tech, &mut HashMap::new())
}

/// Computes deep statistics of the whole design (the top module's
/// subtree).
///
/// # Errors
///
/// Fails if any macro geometry is outside the memory-compiler range.
pub fn design_stats(design: &Design, tech: &Tech) -> Result<NetlistStats, CompileSramError> {
    subtree_stats(design, design.top(), tech)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{CellGroup, Instance, MacroInst, MemoryRole, Module};
    use ggpu_tech::sram::SramConfig;
    use ggpu_tech::stdcell::CellClass;

    fn tech() -> Tech {
        Tech::l65()
    }

    fn pe_design() -> Design {
        let mut d = Design::new("t");
        let pe = d.add_module(
            Module::new("pe")
                .with_group(CellGroup::new("regs", CellClass::Dff, 1000, 0.25))
                .with_group(CellGroup::new("alu", CellClass::FullAdder, 500, 0.2))
                .with_macro(MacroInst::new(
                    "rf",
                    SramConfig::dual(512, 32),
                    MemoryRole::RegisterFile,
                    0.8,
                )),
        );
        let mut cu = Module::new("cu");
        for i in 0..8 {
            cu.children.push(Instance {
                name: format!("pe{i}"),
                module: pe,
            });
        }
        cu.groups
            .push(CellGroup::new("sched", CellClass::Dff, 2000, 0.3));
        let cu = d.add_module(cu);
        let mut top = Module::new("top");
        top.children.push(Instance {
            name: "cu0".into(),
            module: cu,
        });
        let top = d.add_module(top);
        d.set_top(top);
        d
    }

    #[test]
    fn counts_multiply_through_hierarchy() {
        let d = pe_design();
        let s = design_stats(&d, &tech()).unwrap();
        assert_eq!(s.ff_cells, 8 * 1000 + 2000);
        assert_eq!(s.comb_cells, 8 * 500);
        assert_eq!(s.macro_count, 8);
    }

    #[test]
    fn local_vs_subtree() {
        let d = pe_design();
        let cu = d.module_by_name("cu").unwrap();
        let t = tech();
        let local = local_stats(&d, cu, &t).unwrap();
        let deep = subtree_stats(&d, cu, &t).unwrap();
        assert_eq!(local.ff_cells, 2000);
        assert_eq!(deep.ff_cells, 10_000);
        assert!(deep.total_area() > local.total_area());
    }

    #[test]
    fn areas_and_leakage_are_positive() {
        let d = pe_design();
        let s = design_stats(&d, &tech()).unwrap();
        assert!(s.cell_area.value() > 0.0);
        assert!(s.macro_area.value() > 0.0);
        assert!(s.total_leakage().value() > 0.0);
        assert!(s.energy_per_cycle.value() > 0.0);
    }

    #[test]
    fn macro_out_of_range_is_reported() {
        let mut d = pe_design();
        let pe = d.module_by_name("pe").unwrap();
        d.module_mut(pe).macros.push(MacroInst::new(
            "bad",
            SramConfig::dual(8, 32),
            MemoryRole::Other,
            0.1,
        ));
        assert!(design_stats(&d, &tech()).is_err());
    }

    #[test]
    fn stats_add_is_componentwise() {
        let d = pe_design();
        let t = tech();
        let pe = d.module_by_name("pe").unwrap();
        let one = local_stats(&d, pe, &t).unwrap();
        let two = one + one;
        assert_eq!(two.ff_cells, 2 * one.ff_cells);
        assert!((two.cell_area.value() - 2.0 * one.cell_area.value()).abs() < 1e-9);
    }

    #[test]
    fn higher_activity_means_more_energy() {
        let t = tech();
        let mut d = Design::new("a");
        let m = d.add_module(Module::new("m").with_group(CellGroup::new(
            "g",
            CellClass::Nand2,
            10_000,
            0.1,
        )));
        d.set_top(m);
        let low = design_stats(&d, &t).unwrap().energy_per_cycle;
        let mut d2 = Design::new("b");
        let m2 = d2.add_module(Module::new("m").with_group(CellGroup::new(
            "g",
            CellClass::Nand2,
            10_000,
            0.5,
        )));
        d2.set_top(m2);
        let high = design_stats(&d2, &t).unwrap().energy_per_cycle;
        assert!(high > low);
    }
}
