//! Property tests of the statistics rollup: stats must be additive
//! over module composition and scale exactly with instantiation count.

use ggpu_netlist::module::{CellGroup, Instance, MacroInst, MemoryRole, Module};
use ggpu_netlist::stats::{design_stats, local_stats};
use ggpu_netlist::Design;
use ggpu_prop::{cases, Rng};
use ggpu_tech::sram::SramConfig;
use ggpu_tech::stdcell::CellClass;
use ggpu_tech::Tech;

const CLASSES: [CellClass; 6] = [
    CellClass::Inv,
    CellClass::Nand2,
    CellClass::Mux2,
    CellClass::FullAdder,
    CellClass::Dff,
    CellClass::DffEn,
];

fn arb_leaf(rng: &mut Rng) -> Module {
    let groups = rng.vec_of(1..=4, |r| {
        (r.pick_copy(&CLASSES), r.u64_in(1, 4999), r.f64_in(0.0, 1.0))
    });
    let macros = rng.vec_of(0..=3, |r| {
        (r.u32_in(4, 11), r.u32_in(2, 64), r.f64_in(0.0, 1.0))
    });
    let mut m = Module::new("leaf");
    for (i, (class, count, act)) in groups.into_iter().enumerate() {
        m.groups
            .push(CellGroup::new(format!("g{i}"), class, count, act));
    }
    for (i, (wp, bits, act)) in macros.into_iter().enumerate() {
        m.macros.push(MacroInst::new(
            format!("m{i}"),
            SramConfig::dual(1 << wp, bits),
            MemoryRole::Other,
            act,
        ));
    }
    m
}

#[test]
fn stats_scale_linearly_with_instance_count() {
    cases(128, |rng| {
        let leaf = arb_leaf(rng);
        let n = rng.usize_in(1, 11);
        let tech = Tech::l65();
        let mut d = Design::new("t");
        let leaf_id = d.add_module(leaf);
        let mut top = Module::new("top");
        for i in 0..n {
            top.children.push(Instance {
                name: format!("u{i}"),
                module: leaf_id,
            });
        }
        let top_id = d.add_module(top);
        d.set_top(top_id);
        d.validate().expect("valid");

        let one = local_stats(&d, leaf_id, &tech).expect("in range");
        let all = design_stats(&d, &tech).expect("in range");
        assert_eq!(all.ff_cells, one.ff_cells * n as u64);
        assert_eq!(all.comb_cells, one.comb_cells * n as u64);
        assert_eq!(all.macro_count, one.macro_count * n as u64);
        let rel = |a: f64, b: f64| {
            if b == 0.0 {
                (a - b).abs()
            } else {
                (a - b).abs() / b
            }
        };
        assert!(rel(all.cell_area.value(), one.cell_area.value() * n as f64) < 1e-9);
        assert!(rel(all.macro_area.value(), one.macro_area.value() * n as f64) < 1e-9);
        assert!(
            rel(
                all.energy_per_cycle.value(),
                one.energy_per_cycle.value() * n as f64
            ) < 1e-9
        );
    });
}

#[test]
fn deep_and_shallow_composition_agree() {
    cases(128, |rng| {
        let leaf = arb_leaf(rng);
        // top -> mid -> leaf must equal top -> leaf with the same
        // total multiplicity.
        let tech = Tech::l65();
        let mut deep = Design::new("deep");
        let l = deep.add_module(leaf.clone());
        let mut mid = Module::new("mid");
        for i in 0..3 {
            mid.children.push(Instance {
                name: format!("l{i}"),
                module: l,
            });
        }
        let m = deep.add_module(mid);
        let mut top = Module::new("top");
        for i in 0..2 {
            top.children.push(Instance {
                name: format!("m{i}"),
                module: m,
            });
        }
        let t = deep.add_module(top);
        deep.set_top(t);

        let mut flat = Design::new("flat");
        let l2 = flat.add_module(leaf);
        let mut top2 = Module::new("top");
        for i in 0..6 {
            top2.children.push(Instance {
                name: format!("l{i}"),
                module: l2,
            });
        }
        let t2 = flat.add_module(top2);
        flat.set_top(t2);

        let a = design_stats(&deep, &tech).expect("in range");
        let b = design_stats(&flat, &tech).expect("in range");
        assert_eq!(a.ff_cells, b.ff_cells);
        assert_eq!(a.macro_count, b.macro_count);
        assert!((a.total_area().value() - b.total_area().value()).abs() < 1e-6);
    });
}
