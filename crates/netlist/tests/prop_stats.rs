//! Property tests of the statistics rollup: stats must be additive
//! over module composition and scale exactly with instantiation count.

use ggpu_netlist::module::{CellGroup, Instance, MacroInst, MemoryRole, Module};
use ggpu_netlist::stats::{design_stats, local_stats};
use ggpu_netlist::Design;
use ggpu_tech::sram::SramConfig;
use ggpu_tech::stdcell::CellClass;
use ggpu_tech::Tech;
use proptest::prelude::*;

fn arb_class() -> impl Strategy<Value = CellClass> {
    prop_oneof![
        Just(CellClass::Inv), Just(CellClass::Nand2), Just(CellClass::Mux2),
        Just(CellClass::FullAdder), Just(CellClass::Dff), Just(CellClass::DffEn),
    ]
}

fn arb_leaf() -> impl Strategy<Value = Module> {
    (
        proptest::collection::vec((arb_class(), 1u64..5000, 0.0f64..=1.0), 1..5),
        proptest::collection::vec((4u32..=11, 2u32..=64, 0.0f64..=1.0), 0..4),
    )
        .prop_map(|(groups, macros)| {
            let mut m = Module::new("leaf");
            for (i, (class, count, act)) in groups.into_iter().enumerate() {
                m.groups.push(CellGroup::new(format!("g{i}"), class, count, act));
            }
            for (i, (wp, bits, act)) in macros.into_iter().enumerate() {
                m.macros.push(MacroInst::new(
                    format!("m{i}"),
                    SramConfig::dual(1 << wp, bits),
                    MemoryRole::Other,
                    act,
                ));
            }
            m
        })
}

proptest! {
    #[test]
    fn stats_scale_linearly_with_instance_count(leaf in arb_leaf(), n in 1usize..12) {
        let tech = Tech::l65();
        let mut d = Design::new("t");
        let leaf_id = d.add_module(leaf);
        let mut top = Module::new("top");
        for i in 0..n {
            top.children.push(Instance { name: format!("u{i}"), module: leaf_id });
        }
        let top_id = d.add_module(top);
        d.set_top(top_id);
        d.validate().expect("valid");

        let one = local_stats(&d, leaf_id, &tech).expect("in range");
        let all = design_stats(&d, &tech).expect("in range");
        prop_assert_eq!(all.ff_cells, one.ff_cells * n as u64);
        prop_assert_eq!(all.comb_cells, one.comb_cells * n as u64);
        prop_assert_eq!(all.macro_count, one.macro_count * n as u64);
        let rel = |a: f64, b: f64| if b == 0.0 { (a - b).abs() } else { (a - b).abs() / b };
        prop_assert!(rel(all.cell_area.value(), one.cell_area.value() * n as f64) < 1e-9);
        prop_assert!(rel(all.macro_area.value(), one.macro_area.value() * n as f64) < 1e-9);
        prop_assert!(rel(all.energy_per_cycle.value(), one.energy_per_cycle.value() * n as f64) < 1e-9);
    }

    #[test]
    fn deep_and_shallow_composition_agree(leaf in arb_leaf()) {
        // top -> mid -> leaf must equal top -> leaf with the same
        // total multiplicity.
        let tech = Tech::l65();
        let mut deep = Design::new("deep");
        let l = deep.add_module(leaf.clone());
        let mut mid = Module::new("mid");
        for i in 0..3 {
            mid.children.push(Instance { name: format!("l{i}"), module: l });
        }
        let m = deep.add_module(mid);
        let mut top = Module::new("top");
        for i in 0..2 {
            top.children.push(Instance { name: format!("m{i}"), module: m });
        }
        let t = deep.add_module(top);
        deep.set_top(t);

        let mut flat = Design::new("flat");
        let l2 = flat.add_module(leaf);
        let mut top2 = Module::new("top");
        for i in 0..6 {
            top2.children.push(Instance { name: format!("l{i}"), module: l2 });
        }
        let t2 = flat.add_module(top2);
        flat.set_top(t2);

        let a = design_stats(&deep, &tech).expect("in range");
        let b = design_stats(&flat, &tech).expect("in range");
        prop_assert_eq!(a.ff_cells, b.ff_cells);
        prop_assert_eq!(a.macro_count, b.macro_count);
        prop_assert!((a.total_area().value() - b.total_area().value()).abs() < 1e-6);
    }
}
