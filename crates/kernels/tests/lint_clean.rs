//! Every shipped GPU kernel must verify cleanly — not just free of
//! deny-class findings, but free of warnings too. This is the
//! repo-side twin of the `ggpu-lint --all-kernels --deny warn` CI
//! gate: if a kernel edit introduces even a smell, this test names it.

use ggpu_kernels::bench::{all, mat_mul_local};
use ggpu_lint::{verify_asm, LintConfig};

#[test]
fn all_shipped_gpu_kernels_are_lint_clean_at_default_severity() {
    let benches: Vec<_> = all().into_iter().chain([mat_mul_local()]).collect();
    assert_eq!(benches.len(), 8);
    for bench in benches {
        let (program, report) = verify_asm(bench.name, bench.gpu_asm(), &LintConfig::new())
            .unwrap_or_else(|e| panic!("{}: failed to assemble: {e}", bench.name));
        assert!(!program.is_empty());
        assert!(
            report.is_clean(),
            "{} has lint findings at default severity:\n{report}",
            bench.name
        );
    }
}

#[test]
fn all_shipped_gpu_kernels_survive_the_strict_policy() {
    for bench in all().into_iter().chain([mat_mul_local()]) {
        let (_, report) = verify_asm(bench.name, bench.gpu_asm(), &LintConfig::strict()).unwrap();
        assert_eq!(
            report.denial_count(),
            0,
            "{} would fail `--deny warn`:\n{report}",
            bench.name
        );
    }
}
