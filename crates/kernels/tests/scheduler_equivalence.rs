//! End-to-end equivalence of the event-driven SIMT core against the
//! retained cycle-stepping reference, across the paper's whole
//! Table III kernel suite (plus the LRAM-tiled extension).
//!
//! `RunStats` equality covers cycles, instruction/lane/wavefront/
//! workgroup counts, busy and stall accounting and the full memory
//! statistics — everything except the host-side performance fields
//! (`sim_wall`, `sched_iterations`), which are expected to differ:
//! that difference *is* the optimization.

use ggpu_kernels::bench::{all, mat_mul_local, run_gpu_suite_with_threads, Bench};
use ggpu_simt::RunStats;

fn both(bench: &Bench, n: u32, cus: u32) -> (RunStats, RunStats) {
    let event = bench
        .run_gpu(n, cus)
        .unwrap_or_else(|e| panic!("{} event-driven: {e}", bench.name));
    let reference = bench
        .run_gpu_reference(n, cus)
        .unwrap_or_else(|e| panic!("{} reference: {e}", bench.name));
    (event, reference)
}

#[test]
fn every_paper_kernel_matches_the_reference_scheduler() {
    for bench in all() {
        // Reduced sizes keep the cycle-stepping oracle fast; the
        // protocol (grid, workgroup, params) is the paper's.
        let n = match bench.name {
            "xcorr" | "parallel_sel" => 192,
            _ => 512,
        };
        for cus in [1, 2, 4] {
            let (event, reference) = both(&bench, n, cus);
            assert_eq!(
                event, reference,
                "{} at n={n}, {cus} CU(s): event-driven stats diverge",
                bench.name
            );
        }
    }
}

#[test]
fn lram_tiled_kernel_matches_the_reference_scheduler() {
    // The barrier-heavy extension kernel: workgroup-wide staging with
    // two barriers per tile exercises the wheel's barrier-release
    // events hardest.
    let bench = mat_mul_local();
    let (event, reference) = both(&bench, 256, 2);
    assert_eq!(event, reference, "mat_mul_local stats diverge");
}

#[test]
fn event_core_never_does_more_scheduler_work() {
    // The wheel may only *skip* idle cycles: on every kernel its
    // iteration count is bounded by the reference's, and on the
    // memory-bound streamers it is at least 5x lower.
    for bench in all() {
        let n = match bench.name {
            "xcorr" | "parallel_sel" => 192,
            _ => 1024,
        };
        let (event, reference) = both(&bench, n, 2);
        assert!(
            event.sched_iterations <= reference.sched_iterations,
            "{}: event {} > reference {} iterations",
            bench.name,
            event.sched_iterations,
            reference.sched_iterations
        );
        if matches!(bench.name, "copy" | "vec_mul") {
            assert!(
                event.sched_iterations * 5 <= reference.sched_iterations,
                "{}: memory-bound kernel must skip >=5x iterations ({} vs {})",
                bench.name,
                event.sched_iterations,
                reference.sched_iterations
            );
        }
    }
}

#[test]
fn threaded_suite_matches_sequential_suite() {
    let benches = all();
    let seq = run_gpu_suite_with_threads(&benches, 256, 2, 1).expect("sequential sweep");
    let par = run_gpu_suite_with_threads(&benches, 256, 2, 4).expect("threaded sweep");
    assert_eq!(seq.len(), benches.len());
    for ((sn, ss), (pn, ps)) in seq.iter().zip(&par) {
        assert_eq!(sn, pn, "suite order must be input order");
        assert_eq!(ss, ps, "{sn}: threaded stats diverge from sequential");
    }
}
