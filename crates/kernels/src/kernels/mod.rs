//! The seven AMD OpenCL SDK micro-benchmarks of the paper's
//! evaluation, one module per kernel.

pub mod copy;
pub mod div_int;
pub mod fir;
pub mod mat_mul;
pub mod mat_mul_local;
pub mod parallel_sel;
pub mod vec_mul;
pub mod xcorr;
