//! `parallel_sel`: parallel selection (rank) sort —
//! `out[rank(a[i])] = a[i]` where the rank counts smaller elements
//! (ties broken by index). Quadratic work with data-dependent
//! branches: the divergence-heavy kernel of the evaluation.

use crate::layout::data;

/// Kernel name as reported in the paper's Table III.
pub const NAME: &str = "parallel_sel";

/// Builds the input values (second buffer unused).
pub fn inputs(n: u32) -> (Vec<u32>, Vec<u32>) {
    (data(n as usize, 12, 65_536), Vec::new())
}

/// Reference output: the sorted permutation of `a`.
pub fn golden(n: u32, a: &[u32], _b: &[u32]) -> Vec<u32> {
    let n = n as usize;
    let mut out = vec![0u32; n];
    for i in 0..n {
        let v = a[i];
        let rank = a
            .iter()
            .enumerate()
            .filter(|&(j, &w)| w < v || (w == v && j < i))
            .count();
        out[rank] = v;
    }
    out
}

/// G-GPU kernel (params: 0=n, 1=&a, 2=&b, 3=&out, 4=extra).
pub const GPU_ASM: &str = include_str!("asm/parallel_sel.s");

/// RISC-V program (a0=n, a1=&a, a2=&b, a3=&out, a4=extra).
pub const RISCV_ASM: &str = "
    li   t0, 0
    beqz a0, done
    outer:
    slli t1, t0, 2
    add  t1, t1, a1
    lw   t1, 0(t1)
    li   t2, 0
    li   t3, 0
    inner:
    slli t4, t2, 2
    add  t4, t4, a1
    lw   t4, 0(t4)
    bltu t4, t1, inc
    bne  t4, t1, next
    bge  t2, t0, next
    inc:
    addi t3, t3, 1
    next:
    addi t2, t2, 1
    blt  t2, a0, inner
    slli t4, t3, 2
    add  t4, t4, a3
    sw   t1, 0(t4)
    addi t0, t0, 1
    blt  t0, a0, outer
    done:
    ecall
";
