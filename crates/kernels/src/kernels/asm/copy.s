
    gid   r1
    param r2, 1
    param r3, 3
    slli  r4, r1, 2
    add   r5, r4, r2
    lw    r6, r5, 0
    add   r7, r4, r3
    sw    r7, r6, 0
    ret
