
    gid   r1
    param r2, 1          ; a
    param r3, 2          ; b
    param r4, 3          ; out
    param r5, 4          ; K
    param r14, 0         ; n
    slli  r14, r14, 2    ; column stride in bytes
    slli  r6, r1, 2
    add   r6, r6, r2     ; pA = &a[0*n + i]
    addi  r7, r3, 0      ; pB
    addi  r8, r0, 0      ; acc
    addi  r9, r0, 0      ; k
    loop:
    lw    r10, r6, 0
    lw    r11, r7, 0
    mul   r12, r10, r11
    add   r8, r8, r12
    add   r6, r6, r14
    lw    r10, r6, 0
    lw    r11, r7, 4
    mul   r12, r10, r11
    add   r8, r8, r12
    add   r6, r6, r14
    lw    r10, r6, 0
    lw    r11, r7, 8
    mul   r12, r10, r11
    add   r8, r8, r12
    add   r6, r6, r14
    lw    r10, r6, 0
    lw    r11, r7, 12
    mul   r12, r10, r11
    add   r8, r8, r12
    add   r6, r6, r14
    addi  r7, r7, 16
    addi  r9, r9, 4
    blt   r9, r5, loop
    slli  r13, r1, 2
    add   r13, r13, r4
    sw    r13, r8, 0
    ret
