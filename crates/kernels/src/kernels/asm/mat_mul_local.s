
    gid   r1
    param r2, 1          ; a
    param r3, 2          ; b
    param r4, 3          ; out
    param r5, 4          ; K
    param r14, 0         ; n
    slli  r14, r14, 2    ; column stride in bytes

    ; stage b into LRAM: lane (lid mod K) copies b[lane].
    lid   r15
    addi  r16, r5, -1
    and   r15, r15, r16  ; lane = lid mod K (K is a power of two)
    slli  r15, r15, 2
    add   r16, r15, r3
    lw    r17, r16, 0
    swl   r15, r17, 0

    slli  r6, r1, 2
    add   r6, r6, r2     ; pA = &a[0*n + i]
    addi  r7, r0, 0      ; local pB offset
    addi  r8, r0, 0      ; acc
    addi  r9, r0, 0      ; k
    loop:
    lw    r10, r6, 0
    lwl   r11, r7, 0
    mul   r12, r10, r11
    add   r8, r8, r12
    add   r6, r6, r14
    lw    r10, r6, 0
    lwl   r11, r7, 4
    mul   r12, r10, r11
    add   r8, r8, r12
    add   r6, r6, r14
    lw    r10, r6, 0
    lwl   r11, r7, 8
    mul   r12, r10, r11
    add   r8, r8, r12
    add   r6, r6, r14
    lw    r10, r6, 0
    lwl   r11, r7, 12
    mul   r12, r10, r11
    add   r8, r8, r12
    add   r6, r6, r14
    addi  r7, r7, 16
    addi  r9, r9, 4
    blt   r9, r5, loop
    slli  r13, r1, 2
    add   r13, r13, r4
    sw    r13, r8, 0
    ret
