
    gid   r1
    param r2, 1
    param r3, 2
    param r4, 3
    slli  r5, r1, 2
    add   r6, r5, r2
    lw    r7, r6, 0
    add   r8, r5, r3
    lw    r9, r8, 0
    divu  r10, r7, r9
    add   r11, r5, r4
    sw    r11, r10, 0
    ret
