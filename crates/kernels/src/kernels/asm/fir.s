
    gid   r1
    param r2, 1
    param r3, 2
    param r4, 3
    param r5, 4
    slli  r6, r1, 2
    add   r6, r6, r2     ; pA = &a[i]
    addi  r7, r3, 0      ; pC
    addi  r8, r0, 0      ; acc
    addi  r9, r0, 0      ; j
    loop:
    lw    r10, r6, 0
    lw    r11, r7, 0
    mul   r12, r10, r11
    add   r8, r8, r12
    lw    r10, r6, 4
    lw    r11, r7, 4
    mul   r12, r10, r11
    add   r8, r8, r12
    lw    r10, r6, 8
    lw    r11, r7, 8
    mul   r12, r10, r11
    add   r8, r8, r12
    lw    r10, r6, 12
    lw    r11, r7, 12
    mul   r12, r10, r11
    add   r8, r8, r12
    addi  r6, r6, 16
    addi  r7, r7, 16
    addi  r9, r9, 4
    blt   r9, r5, loop
    slli  r13, r1, 2
    add   r13, r13, r4
    sw    r13, r8, 0
    ret
