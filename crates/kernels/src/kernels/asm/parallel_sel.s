
    gid   r1
    param r2, 0          ; n
    param r3, 1          ; a
    param r4, 3          ; out
    slli  r5, r1, 2
    add   r5, r5, r3
    lw    r6, r5, 0      ; v = a[i]
    addi  r7, r0, 0      ; j
    addi  r8, r0, 0      ; rank
    loop:
    slli  r9, r7, 2
    add   r9, r9, r3
    lw    r10, r9, 0     ; a[j]
    bltu  r10, r6, inc
    bne   r10, r6, next
    bge   r7, r1, next
    inc:
    addi  r8, r8, 1
    next:
    addi  r7, r7, 1
    blt   r7, r2, loop
    slli  r11, r8, 2
    add   r11, r11, r4
    sw    r11, r6, 0
    ret
