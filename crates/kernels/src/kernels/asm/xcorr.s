
    gid   r1             ; lag
    param r2, 1          ; a
    param r3, 2          ; b
    param r4, 3          ; out
    param r5, 4          ; len
    slli  r13, r5, 2     ; size in bytes
    addi  r6, r2, 0      ; pA
    add   r15, r2, r13   ; aEnd
    slli  r10, r1, 2
    add   r10, r10, r3   ; pB = &b[lag]
    add   r11, r3, r13   ; bEnd
    addi  r7, r0, 0      ; acc
    loop:
    lw    r8, r6, 0
    lw    r9, r10, 0
    mul   r12, r8, r9
    add   r7, r7, r12
    addi  r10, r10, 4
    blt   r10, r11, w0
    sub   r10, r10, r13
    w0:
    lw    r8, r6, 4
    lw    r9, r10, 0
    mul   r12, r8, r9
    add   r7, r7, r12
    addi  r10, r10, 4
    blt   r10, r11, w1
    sub   r10, r10, r13
    w1:
    lw    r8, r6, 8
    lw    r9, r10, 0
    mul   r12, r8, r9
    add   r7, r7, r12
    addi  r10, r10, 4
    blt   r10, r11, w2
    sub   r10, r10, r13
    w2:
    lw    r8, r6, 12
    lw    r9, r10, 0
    mul   r12, r8, r9
    add   r7, r7, r12
    addi  r10, r10, 4
    blt   r10, r11, w3
    sub   r10, r10, r13
    w3:
    addi  r6, r6, 16
    blt   r6, r15, loop
    slli  r14, r1, 2
    add   r14, r14, r4
    sw    r14, r7, 0
    ret
