//! `vec_mul`: `out[i] = a[i] * b[i]` — elementwise multiply.

use crate::layout::data;

/// Kernel name as reported in the paper's Table III.
pub const NAME: &str = "vec_mul";

/// Builds the `(a, b)` input buffers for `n` work-items.
pub fn inputs(n: u32) -> (Vec<u32>, Vec<u32>) {
    (data(n as usize, 2, 251), data(n as usize, 3, 251))
}

/// Reference output.
pub fn golden(_n: u32, a: &[u32], b: &[u32]) -> Vec<u32> {
    a.iter().zip(b).map(|(&x, &y)| x.wrapping_mul(y)).collect()
}

/// G-GPU kernel (params: 0=n, 1=&a, 2=&b, 3=&out, 4=extra).
pub const GPU_ASM: &str = include_str!("asm/vec_mul.s");

/// RISC-V program (a0=n, a1=&a, a2=&b, a3=&out, a4=extra).
pub const RISCV_ASM: &str = "
    li   t0, 0
    beqz a0, done
    loop:
    slli t1, t0, 2
    add  t2, t1, a1
    lw   t3, 0(t2)
    add  t4, t1, a2
    lw   t5, 0(t4)
    mul  t6, t3, t5
    add  t2, t1, a3
    sw   t6, 0(t2)
    addi t0, t0, 1
    blt  t0, a0, loop
    done:
    ecall
";
