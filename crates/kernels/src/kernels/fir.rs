//! `fir`: 16-tap finite impulse response filter,
//! `out[i] = sum_j a[i+j] * c[j]`, tap loop unrolled by four on both
//! targets (compiler-realistic code).

use crate::layout::data;

/// Kernel name as reported in the paper's Table III.
pub const NAME: &str = "fir";

/// Number of filter taps (divisible by the unroll factor 4).
pub const TAPS: u32 = 16;

/// Builds the `(a, coefficients)` buffers for `n` outputs
/// (`a` holds `n + TAPS` samples).
pub fn inputs(n: u32) -> (Vec<u32>, Vec<u32>) {
    (
        data((n + TAPS) as usize, 6, 251),
        data(TAPS as usize, 7, 251),
    )
}

/// Reference output.
pub fn golden(n: u32, a: &[u32], b: &[u32]) -> Vec<u32> {
    (0..n as usize)
        .map(|i| {
            (0..TAPS as usize)
                .map(|j| a[i + j].wrapping_mul(b[j]))
                .fold(0u32, u32::wrapping_add)
        })
        .collect()
}

/// G-GPU kernel (params: 0=n, 1=&a, 2=&coef, 3=&out, 4=TAPS).
pub const GPU_ASM: &str = include_str!("asm/fir.s");

/// RISC-V program (a0=n, a1=&a, a2=&coef, a3=&out, a4=TAPS).
pub const RISCV_ASM: &str = "
    li   t0, 0
    beqz a0, done
    outer:
    slli t1, t0, 2
    add  t1, t1, a1
    mv   t2, a2
    li   t3, 0
    li   t4, 0
    inner:
    lw   t5, 0(t1)
    lw   t6, 0(t2)
    mul  t5, t5, t6
    add  t3, t3, t5
    lw   t5, 4(t1)
    lw   t6, 4(t2)
    mul  t5, t5, t6
    add  t3, t3, t5
    lw   t5, 8(t1)
    lw   t6, 8(t2)
    mul  t5, t5, t6
    add  t3, t3, t5
    lw   t5, 12(t1)
    lw   t6, 12(t2)
    mul  t5, t5, t6
    add  t3, t3, t5
    addi t1, t1, 16
    addi t2, t2, 16
    addi t4, t4, 4
    blt  t4, a4, inner
    slli t5, t0, 2
    add  t5, t5, a3
    sw   t3, 0(t5)
    addi t0, t0, 1
    blt  t0, a0, outer
    done:
    ecall
";
