//! `mat_mul_local`: the LRAM-tiled variant of [`super::mat_mul`] —
//! an extension beyond the paper's kernel set demonstrating the
//! FGPU's per-CU local scratchpad.
//!
//! Every wavefront first copies the shared vector `b` (64 words, one
//! per lane) from global memory into LRAM, then runs the dot loop
//! against the scratchpad. The copy is idempotent — every wavefront
//! writes the same values to the same addresses — so no barrier is
//! needed: each wavefront's own program order guarantees its stores
//! precede its loads, and overlapping writes from other wavefronts are
//! identical.

use super::mat_mul;

/// Kernel name.
pub const NAME: &str = "mat_mul_local";

/// Same inputs and golden output as the global-memory variant.
pub use super::mat_mul::{golden, inputs, K};

/// G-GPU kernel (params: 0=n, 1=&a, 2=&b, 3=&out, 4=K).
pub const GPU_ASM: &str = include_str!("asm/mat_mul_local.s");

/// The RISC-V has no scratchpad; the baseline is the global variant.
pub const RISCV_ASM: &str = mat_mul::RISCV_ASM;
