//! `mat_mul_local`: the LRAM-tiled variant of [`super::mat_mul`] —
//! an extension beyond the paper's kernel set demonstrating the
//! FGPU's per-CU local scratchpad.
//!
//! Every wavefront first copies the shared vector `b` (64 words, one
//! per lane) from global memory into LRAM, then runs the dot loop
//! against the scratchpad. The copy is idempotent — every wavefront
//! writes the same values to the same addresses — so no barrier is
//! needed: each wavefront's own program order guarantees its stores
//! precede its loads, and overlapping writes from other wavefronts are
//! identical.

use super::mat_mul;

/// Kernel name.
pub const NAME: &str = "mat_mul_local";

/// Same inputs and golden output as the global-memory variant.
pub use super::mat_mul::{golden, inputs, K};

/// G-GPU kernel (params: 0=n, 1=&a, 2=&b, 3=&out, 4=K).
pub const GPU_ASM: &str = "
    gid   r1
    param r2, 1          ; a
    param r3, 2          ; b
    param r4, 3          ; out
    param r5, 4          ; K
    param r14, 0         ; n
    slli  r14, r14, 2    ; column stride in bytes

    ; stage b into LRAM: lane (lid mod K) copies b[lane].
    lid   r15
    addi  r16, r5, -1
    and   r15, r15, r16  ; lane = lid mod K (K is a power of two)
    slli  r15, r15, 2
    add   r16, r15, r3
    lw    r17, r16, 0
    swl   r15, r17, 0

    slli  r6, r1, 2
    add   r6, r6, r2     ; pA = &a[0*n + i]
    addi  r7, r0, 0      ; local pB offset
    addi  r8, r0, 0      ; acc
    addi  r9, r0, 0      ; k
    loop:
    lw    r10, r6, 0
    lwl   r11, r7, 0
    mul   r12, r10, r11
    add   r8, r8, r12
    add   r6, r6, r14
    lw    r10, r6, 0
    lwl   r11, r7, 4
    mul   r12, r10, r11
    add   r8, r8, r12
    add   r6, r6, r14
    lw    r10, r6, 0
    lwl   r11, r7, 8
    mul   r12, r10, r11
    add   r8, r8, r12
    add   r6, r6, r14
    lw    r10, r6, 0
    lwl   r11, r7, 12
    mul   r12, r10, r11
    add   r8, r8, r12
    add   r6, r6, r14
    addi  r7, r7, 16
    addi  r9, r9, 4
    blt   r9, r5, loop
    slli  r13, r1, 2
    add   r13, r13, r4
    sw    r13, r8, 0
    ret
";

/// The RISC-V has no scratchpad; the baseline is the global variant.
pub const RISCV_ASM: &str = mat_mul::RISCV_ASM;
