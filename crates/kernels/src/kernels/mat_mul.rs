//! `mat_mul`: dense matrix-vector rows, `out[i] = sum_k a[k*n+i]*b[k]`
//! with a fixed dot length `K` — the compute-bound kernel.
//!
//! The matrix is stored column-major (`a[k*n + i]`), which is how an
//! OpenCL kernel is written for a SIMT machine: work-items with
//! consecutive ids read consecutive addresses, so wavefront loads
//! coalesce, and concurrent CUs share the cached `k`-slices. Both
//! implementations unroll the dot loop by four, matching what the
//! paper's LLVM/GCC toolchains emit at `-O2`.

use crate::layout::data;

/// Kernel name as reported in the paper's Table III.
pub const NAME: &str = "mat_mul";

/// Dot length per output element (divisible by the unroll factor 4).
pub const K: u32 = 64;

/// Builds the `(a, b)` input buffers for `n` output elements
/// (`a` is `K` columns of `n` values, column-major).
pub fn inputs(n: u32) -> (Vec<u32>, Vec<u32>) {
    (data((n * K) as usize, 4, 251), data(K as usize, 5, 251))
}

/// Reference output.
pub fn golden(n: u32, a: &[u32], b: &[u32]) -> Vec<u32> {
    (0..n as usize)
        .map(|i| {
            (0..K as usize)
                .map(|k| a[k * n as usize + i].wrapping_mul(b[k]))
                .fold(0u32, u32::wrapping_add)
        })
        .collect()
}

/// G-GPU kernel (params: 0=n, 1=&a, 2=&b, 3=&out, 4=K).
/// Column stride is `n` words, so the per-iteration pointer bump is
/// `4*n` bytes, computed once.
pub const GPU_ASM: &str = include_str!("asm/mat_mul.s");

/// RISC-V program (a0=n, a1=&a, a2=&b, a3=&out, a4=K).
pub const RISCV_ASM: &str = "
    li   t0, 0           # i
    beqz a0, done
    slli s0, a0, 2       # column stride
    outer:
    slli t1, t0, 2
    add  t1, t1, a1      # pA = &a[i]
    mv   t2, a2          # pB
    li   t3, 0           # acc
    li   t4, 0           # k
    inner:
    lw   t5, 0(t1)
    lw   t6, 0(t2)
    mul  t5, t5, t6
    add  t3, t3, t5
    add  t1, t1, s0
    lw   t5, 0(t1)
    lw   t6, 4(t2)
    mul  t5, t5, t6
    add  t3, t3, t5
    add  t1, t1, s0
    lw   t5, 0(t1)
    lw   t6, 8(t2)
    mul  t5, t5, t6
    add  t3, t3, t5
    add  t1, t1, s0
    lw   t5, 0(t1)
    lw   t6, 12(t2)
    mul  t5, t5, t6
    add  t3, t3, t5
    add  t1, t1, s0
    addi t2, t2, 16
    addi t4, t4, 4
    blt  t4, a4, inner
    slli t5, t0, 2
    add  t5, t5, a3
    sw   t3, 0(t5)
    addi t0, t0, 1
    blt  t0, a0, outer
    done:
    ecall
";
