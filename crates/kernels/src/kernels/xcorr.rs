//! `xcorr`: circular cross-correlation,
//! `out[lag] = sum_i a[i] * b[(i+lag) mod n]` — long per-item
//! reductions. Both implementations use a wrapping pointer for `b`
//! and unroll by four; the wrap check diverges briefly per wavefront
//! (each lane wraps at a different `i`), and the long `b` window
//! stresses the shared direct-mapped cache.

use crate::layout::data;

/// Kernel name as reported in the paper's Table III.
pub const NAME: &str = "xcorr";

/// Builds the `(a, b)` sequences of length `n` (`n` divisible by 4).
pub fn inputs(n: u32) -> (Vec<u32>, Vec<u32>) {
    (data(n as usize, 10, 251), data(n as usize, 11, 251))
}

/// Reference output (one value per lag).
pub fn golden(n: u32, a: &[u32], b: &[u32]) -> Vec<u32> {
    let n = n as usize;
    (0..n)
        .map(|lag| {
            (0..n)
                .map(|i| a[i].wrapping_mul(b[(i + lag) % n]))
                .fold(0u32, u32::wrapping_add)
        })
        .collect()
}

/// G-GPU kernel (params: 0=n lags, 1=&a, 2=&b, 3=&out, 4=n).
pub const GPU_ASM: &str = include_str!("asm/xcorr.s");

/// RISC-V program (a0=n lags, a1=&a, a2=&b, a3=&out, a4=n).
pub const RISCV_ASM: &str = "
    beqz a0, done
    slli s0, a4, 2       # size in bytes
    add  s1, a2, s0      # bEnd
    li   t0, 0           # lag
    outer:
    mv   t1, a1          # pA
    add  s2, a1, s0      # aEnd
    slli t2, t0, 2
    add  t2, t2, a2      # pB = &b[lag]
    li   t3, 0           # acc
    inner:
    lw   t4, 0(t1)
    lw   t5, 0(t2)
    mul  t4, t4, t5
    add  t3, t3, t4
    addi t2, t2, 4
    blt  t2, s1, w0
    sub  t2, t2, s0
    w0:
    lw   t4, 4(t1)
    lw   t5, 0(t2)
    mul  t4, t4, t5
    add  t3, t3, t4
    addi t2, t2, 4
    blt  t2, s1, w1
    sub  t2, t2, s0
    w1:
    lw   t4, 8(t1)
    lw   t5, 0(t2)
    mul  t4, t4, t5
    add  t3, t3, t4
    addi t2, t2, 4
    blt  t2, s1, w2
    sub  t2, t2, s0
    w2:
    lw   t4, 12(t1)
    lw   t5, 0(t2)
    mul  t4, t4, t5
    add  t3, t3, t4
    addi t2, t2, 4
    blt  t2, s1, w3
    sub  t2, t2, s0
    w3:
    addi t1, t1, 16
    blt  t1, s2, inner
    slli t4, t0, 2
    add  t4, t4, a3
    sw   t3, 0(t4)
    addi t0, t0, 1
    blt  t0, a0, outer
    done:
    ecall
";
