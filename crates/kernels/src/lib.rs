//! The seven micro-benchmarks of the G-GPU evaluation (paper
//! Table III / Figs. 5–6): `mat_mul`, `copy`, `vec_mul`, `fir`,
//! `div_int`, `xcorr` and `parallel_sel`, implemented for both the
//! SIMT accelerator and the RISC-V baseline, with golden references
//! the harness verifies every run against.
//!
//! # Example
//!
//! ```
//! use ggpu_kernels::bench;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let copy = bench::all()[1];
//! assert_eq!(copy.name, "copy");
//! let stats = copy.run_gpu(256, 2)?; // verified against the golden output
//! assert!(stats.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod bench;
pub mod kernels;
pub mod layout;

pub use bench::{
    all, run_gpu_suite, run_gpu_suite_with_threads, scaled_speedup, suite_threads, Bench,
    BenchError, Kind,
};
