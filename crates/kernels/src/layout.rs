//! Memory layout conventions and deterministic workload generation.
//!
//! Both simulators use the same calling convention so each benchmark
//! is written once per target:
//!
//! * G-GPU: kernel parameters `0=n, 1=&A, 2=&B, 3=&OUT, 4=extra`
//!   (extra is the dot length / tap count / sequence length);
//! * RISC-V: registers `a0=n, a1=&A, a2=&B, a3=&OUT, a4=extra`.

/// G-GPU global-memory size in words (4 MiB).
pub const GPU_MEMORY_WORDS: usize = 1 << 20;
/// G-GPU buffer A base byte address.
pub const GPU_A: u32 = 0x0010_0000;
/// G-GPU buffer B base byte address (staggered by half the cache so
/// the input buffers do not alias to the same direct-mapped index).
pub const GPU_B: u32 = 0x0020_2000;
/// G-GPU output buffer base byte address (staggered by a quarter
/// cache).
pub const GPU_OUT: u32 = 0x0030_4000;

/// RISC-V memory size in bytes. The paper's core had 32 KiB and was
/// crashed by growing the inputs; the harness gives the simulator 2 MiB
/// so that sweep experiments beyond the paper's crash point still run.
pub const RISCV_MEMORY_BYTES: usize = 0x0020_0000;
/// RISC-V buffer A base byte address (region up to 1 MiB).
pub const RISCV_A: u32 = 0x0001_0000;
/// RISC-V buffer B base byte address.
pub const RISCV_B: u32 = 0x0011_0000;
/// RISC-V output buffer base byte address.
pub const RISCV_OUT: u32 = 0x0019_0000;

/// Deterministic pseudo-random workload data in `1..=modulus`
/// (a fixed LCG so paper-table regeneration is reproducible without
/// an RNG dependency in the library itself).
pub fn data(len: usize, seed: u32, modulus: u32) -> Vec<u32> {
    assert!(modulus > 0, "modulus must be nonzero");
    let mut state = seed.wrapping_mul(2_654_435_761).wrapping_add(12345) | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (state >> 8) % modulus + 1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_is_deterministic_and_in_range() {
        let a = data(1000, 7, 251);
        let b = data(1000, 7, 251);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (1..=251).contains(&v)));
        let c = data(1000, 8, 251);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn buffers_do_not_overlap() {
        // Largest A buffer: mat_mul 2048 x 64 words = 512 KiB.
        assert!(GPU_A + 2048 * 64 * 4 <= GPU_B);
        assert!(GPU_B + 0x10_0000 <= GPU_OUT); // B region holds 256 Ki words
        assert!((GPU_OUT as usize) + 0x4_0000 <= GPU_MEMORY_WORDS * 4); // out <= 64 Ki words
        assert!(RISCV_A < RISCV_B && RISCV_B < RISCV_OUT);
        assert!((RISCV_OUT as usize) < RISCV_MEMORY_BYTES);
    }
}
