//! Benchmark harness: runs each kernel on both targets and checks
//! outputs against the golden reference.

use crate::kernels::{copy, div_int, fir, mat_mul, mat_mul_local, parallel_sel, vec_mul, xcorr};
use crate::layout::{
    GPU_A, GPU_B, GPU_MEMORY_WORDS, GPU_OUT, RISCV_A, RISCV_B, RISCV_MEMORY_BYTES, RISCV_OUT,
};
use ggpu_riscv::{assemble as rv_assemble, AssembleRvError, Cpu, CpuError, CpuStats};
use ggpu_simt::{Gpu, Kernel, Launch, RunStats, SimError, SimtConfig};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Which benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Kind {
    MatMul,
    /// Extension beyond the paper: LRAM-tiled mat_mul.
    MatMulLocal,
    Copy,
    VecMul,
    Fir,
    DivInt,
    Xcorr,
    ParallelSel,
}

/// One benchmark with the paper's Table III input-size protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bench {
    /// Which kernel.
    pub kind: Kind,
    /// Kernel name (Table III row label).
    pub name: &'static str,
    /// Input size the paper ran on the RISC-V.
    pub riscv_n: u32,
    /// Input size the paper ran on the G-GPU.
    pub gpu_n: u32,
}

/// The LRAM-tiled mat_mul extension kernel (not part of the paper's
/// Table III; see `ablation_local`). Grid sizes must be multiples of
/// the wavefront size, because partial wavefronts would stage only
/// part of the shared vector.
pub fn mat_mul_local() -> Bench {
    Bench {
        kind: Kind::MatMulLocal,
        name: mat_mul_local::NAME,
        riscv_n: 128,
        gpu_n: 2048,
    }
}

/// All seven benchmarks in the paper's Table III order, with the
/// paper's input sizes.
pub fn all() -> [Bench; 7] {
    [
        Bench {
            kind: Kind::MatMul,
            name: mat_mul::NAME,
            riscv_n: 128,
            gpu_n: 2048,
        },
        Bench {
            kind: Kind::Copy,
            name: copy::NAME,
            riscv_n: 512,
            gpu_n: 32768,
        },
        Bench {
            kind: Kind::VecMul,
            name: vec_mul::NAME,
            riscv_n: 1024,
            gpu_n: 65536,
        },
        Bench {
            kind: Kind::Fir,
            name: fir::NAME,
            riscv_n: 128,
            gpu_n: 4096,
        },
        Bench {
            kind: Kind::DivInt,
            name: div_int::NAME,
            riscv_n: 512,
            gpu_n: 4096,
        },
        Bench {
            kind: Kind::Xcorr,
            name: xcorr::NAME,
            riscv_n: 256,
            gpu_n: 4096,
        },
        Bench {
            kind: Kind::ParallelSel,
            name: parallel_sel::NAME,
            riscv_n: 128,
            gpu_n: 2048,
        },
    ]
}

/// Harness errors.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchError {
    /// The SIMT kernel failed to assemble (a bug in the kernel text).
    GpuAsm(ggpu_isa::AssembleError),
    /// The SIMT kernel failed the static pre-flight verifier.
    GpuVerify(ggpu_simt::KernelVerifyError),
    /// The RISC-V program failed to assemble.
    RiscvAsm(AssembleRvError),
    /// The SIMT simulation faulted.
    Gpu(SimError),
    /// The RISC-V simulation faulted.
    Riscv(CpuError),
    /// The produced output does not match the golden reference.
    WrongOutput {
        /// Kernel name.
        kernel: &'static str,
        /// First mismatching index.
        index: usize,
        /// Expected word.
        expected: u32,
        /// Produced word.
        actual: u32,
    },
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::GpuAsm(e) => write!(f, "gpu kernel assembly: {e}"),
            BenchError::GpuVerify(e) => write!(f, "gpu kernel verification: {e}"),
            BenchError::RiscvAsm(e) => write!(f, "riscv assembly: {e}"),
            BenchError::Gpu(e) => write!(f, "gpu simulation: {e}"),
            BenchError::Riscv(e) => write!(f, "riscv simulation: {e}"),
            BenchError::WrongOutput {
                kernel,
                index,
                expected,
                actual,
            } => write!(
                f,
                "{kernel}: output[{index}] = {actual}, expected {expected}"
            ),
        }
    }
}

impl Error for BenchError {}

impl Bench {
    /// The per-kernel `extra` launch parameter (dot length, tap count
    /// or sequence length).
    pub fn extra(&self, n: u32) -> u32 {
        match self.kind {
            Kind::MatMul | Kind::MatMulLocal => mat_mul::K,
            Kind::Fir => fir::TAPS,
            Kind::Xcorr => n,
            _ => 0,
        }
    }

    /// Input buffers for a run of size `n`.
    pub fn inputs(&self, n: u32) -> (Vec<u32>, Vec<u32>) {
        match self.kind {
            Kind::MatMul => mat_mul::inputs(n),
            Kind::MatMulLocal => mat_mul_local::inputs(n),
            Kind::Copy => copy::inputs(n),
            Kind::VecMul => vec_mul::inputs(n),
            Kind::Fir => fir::inputs(n),
            Kind::DivInt => div_int::inputs(n),
            Kind::Xcorr => xcorr::inputs(n),
            Kind::ParallelSel => parallel_sel::inputs(n),
        }
    }

    /// Golden output for a run of size `n`.
    pub fn golden(&self, n: u32) -> Vec<u32> {
        let (a, b) = self.inputs(n);
        match self.kind {
            Kind::MatMul => mat_mul::golden(n, &a, &b),
            Kind::MatMulLocal => mat_mul_local::golden(n, &a, &b),
            Kind::Copy => copy::golden(n, &a, &b),
            Kind::VecMul => vec_mul::golden(n, &a, &b),
            Kind::Fir => fir::golden(n, &a, &b),
            Kind::DivInt => div_int::golden(n, &a, &b),
            Kind::Xcorr => xcorr::golden(n, &a, &b),
            Kind::ParallelSel => parallel_sel::golden(n, &a, &b),
        }
    }

    /// The G-GPU kernel source.
    pub fn gpu_asm(&self) -> &'static str {
        match self.kind {
            Kind::MatMul => mat_mul::GPU_ASM,
            Kind::MatMulLocal => mat_mul_local::GPU_ASM,
            Kind::Copy => copy::GPU_ASM,
            Kind::VecMul => vec_mul::GPU_ASM,
            Kind::Fir => fir::GPU_ASM,
            Kind::DivInt => div_int::GPU_ASM,
            Kind::Xcorr => xcorr::GPU_ASM,
            Kind::ParallelSel => parallel_sel::GPU_ASM,
        }
    }

    /// The RISC-V program source.
    pub fn riscv_asm(&self) -> &'static str {
        match self.kind {
            Kind::MatMul => mat_mul::RISCV_ASM,
            Kind::MatMulLocal => mat_mul_local::RISCV_ASM,
            Kind::Copy => copy::RISCV_ASM,
            Kind::VecMul => vec_mul::RISCV_ASM,
            Kind::Fir => fir::RISCV_ASM,
            Kind::DivInt => div_int::RISCV_ASM,
            Kind::Xcorr => xcorr::RISCV_ASM,
            Kind::ParallelSel => parallel_sel::RISCV_ASM,
        }
    }

    fn check_output(&self, golden: &[u32], out: &[u32]) -> Result<(), BenchError> {
        for (i, (&e, &a)) in golden.iter().zip(out).enumerate() {
            if e != a {
                return Err(BenchError::WrongOutput {
                    kernel: self.name,
                    index: i,
                    expected: e,
                    actual: a,
                });
            }
        }
        Ok(())
    }

    /// Runs the kernel on the SIMT simulator with `cus` compute units
    /// and verifies the output against the golden reference.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError`] on simulation faults or output
    /// mismatches.
    pub fn run_gpu(&self, n: u32, cus: u32) -> Result<RunStats, BenchError> {
        self.run_gpu_with(n, SimtConfig::with_cus(cus))
    }

    /// Runs the kernel on a machine with an explicit [`SimtConfig`] —
    /// for architecture-sensitivity studies (cache size, AXI width,
    /// divider behaviour) beyond the paper's fixed configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError`] on simulation faults or output
    /// mismatches.
    pub fn run_gpu_with(&self, n: u32, config: SimtConfig) -> Result<RunStats, BenchError> {
        self.run_gpu_inner(n, config, false)
    }

    /// Runs the kernel under the retained cycle-stepping reference
    /// scheduler ([`ggpu_simt::Gpu::launch_reference`]) — the
    /// validation oracle the event-driven core is checked against.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError`] on simulation faults or output
    /// mismatches.
    pub fn run_gpu_reference(&self, n: u32, cus: u32) -> Result<RunStats, BenchError> {
        self.run_gpu_inner(n, SimtConfig::with_cus(cus), true)
    }

    fn run_gpu_inner(
        &self,
        n: u32,
        config: SimtConfig,
        reference: bool,
    ) -> Result<RunStats, BenchError> {
        if self.kind == Kind::MatMulLocal && !n.is_multiple_of(64) {
            return Err(BenchError::Gpu(SimError::BadLaunch(
                "mat_mul_local requires full wavefronts (n % 64 == 0)".into(),
            )));
        }
        let (a, b) = self.inputs(n);
        let mut gpu = Gpu::new(config, GPU_MEMORY_WORDS);
        gpu.write_words(GPU_A, &a).map_err(BenchError::Gpu)?;
        if !b.is_empty() {
            gpu.write_words(GPU_B, &b).map_err(BenchError::Gpu)?;
        }
        let kernel =
            Kernel::from_asm_verified(self.name, self.gpu_asm()).map_err(BenchError::GpuVerify)?;
        let wg = n.min(256);
        let launch = Launch::new(n, wg, vec![n, GPU_A, GPU_B, GPU_OUT, self.extra(n)]);
        let stats = if reference {
            gpu.launch_reference(&kernel, &launch)
        } else {
            gpu.launch(&kernel, &launch)
        }
        .map_err(BenchError::Gpu)?;
        let golden = self.golden(n);
        let out = gpu
            .read_words(GPU_OUT, golden.len())
            .map_err(BenchError::Gpu)?;
        self.check_output(&golden, &out)?;
        Ok(stats)
    }

    /// Runs the kernel on the RISC-V simulator and verifies the output
    /// against the golden reference.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError`] on simulation faults or output
    /// mismatches.
    pub fn run_riscv(&self, n: u32) -> Result<CpuStats, BenchError> {
        let (a, b) = self.inputs(n);
        let program = rv_assemble(self.riscv_asm()).map_err(BenchError::RiscvAsm)?;
        let mut cpu = Cpu::new(&program, RISCV_MEMORY_BYTES);
        cpu.write_words(RISCV_A, &a).map_err(BenchError::Riscv)?;
        if !b.is_empty() {
            cpu.write_words(RISCV_B, &b).map_err(BenchError::Riscv)?;
        }
        cpu.set_reg(10, n); // a0
        cpu.set_reg(11, RISCV_A); // a1
        cpu.set_reg(12, RISCV_B); // a2
        cpu.set_reg(13, RISCV_OUT); // a3
        cpu.set_reg(14, self.extra(n)); // a4
        let stats = cpu.run().map_err(BenchError::Riscv)?;
        let golden = self.golden(n);
        let out = cpu
            .read_words(RISCV_OUT, golden.len())
            .map_err(BenchError::Riscv)?;
        self.check_output(&golden, &out)?;
        Ok(stats)
    }
}

/// Number of worker threads for a suite of `jobs` kernels: the
/// `GGPU_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`], clamped to the
/// job count. The same knob governs the planner's parallel sweep.
pub fn suite_threads(jobs: usize) -> usize {
    let configured = std::env::var("GGPU_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0);
    let threads =
        configured.unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()));
    threads.min(jobs.max(1))
}

/// Runs every benchmark at size `n` on `cus` compute units, verifying
/// each against its golden reference, and returns `(name, stats)` in
/// input order.
///
/// Each simulation owns its GPU instance, so the kernels run
/// concurrently on [`suite_threads`] scoped worker threads (override
/// with the `GGPU_THREADS` environment variable; `GGPU_THREADS=1`
/// forces a sequential sweep with identical results).
///
/// # Errors
///
/// Returns the first [`BenchError`] in input order if any kernel
/// faults or miscomputes.
pub fn run_gpu_suite(
    benches: &[Bench],
    n: u32,
    cus: u32,
) -> Result<Vec<(&'static str, RunStats)>, BenchError> {
    run_gpu_suite_with_threads(benches, n, cus, suite_threads(benches.len()))
}

/// [`run_gpu_suite`] on an explicit number of worker threads (`1`
/// forces the sequential reference behavior).
///
/// # Errors
///
/// Returns the first [`BenchError`] in input order if any kernel
/// faults or miscomputes.
pub fn run_gpu_suite_with_threads(
    benches: &[Bench],
    n: u32,
    cus: u32,
    threads: usize,
) -> Result<Vec<(&'static str, RunStats)>, BenchError> {
    let jobs = benches.len();
    let mut outcomes: Vec<(usize, Result<RunStats, BenchError>)> = if threads <= 1 || jobs <= 1 {
        benches
            .iter()
            .enumerate()
            .map(|(i, b)| (i, b.run_gpu(n, cus)))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let results = Mutex::new(Vec::with_capacity(jobs));
        thread::scope(|scope| {
            for _ in 0..threads.min(jobs) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let out = benches[i].run_gpu(n, cus);
                    results
                        .lock()
                        .expect("suite worker poisoned")
                        .push((i, out));
                });
            }
        });
        results.into_inner().expect("suite worker poisoned")
    };
    outcomes.sort_by_key(|(i, _)| *i);
    outcomes
        .into_iter()
        .map(|(i, out)| out.map(|stats| (benches[i].name, stats)))
        .collect()
}

/// Computes the paper's pessimistic speed-up: RISC-V cycles scaled by
/// the input-size ratio, divided by the G-GPU cycles.
pub fn scaled_speedup(riscv_cycles: u64, riscv_n: u32, gpu_cycles: u64, gpu_n: u32) -> f64 {
    let scale = f64::from(gpu_n) / f64::from(riscv_n);
    (riscv_cycles as f64) * scale / (gpu_cycles as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Functional verification runs at reduced sizes so `cargo test`
    // stays fast; the paper-size runs live in the bench harness.
    const TEST_N: u32 = 96;

    #[test]
    fn every_kernel_is_correct_on_both_targets() {
        for bench in all() {
            bench
                .run_gpu(TEST_N, 2)
                .unwrap_or_else(|e| panic!("{} on gpu: {e}", bench.name));
            bench
                .run_riscv(TEST_N)
                .unwrap_or_else(|e| panic!("{} on riscv: {e}", bench.name));
        }
    }

    #[test]
    fn table_sizes_match_the_paper() {
        let benches = all();
        let sizes: Vec<(u32, u32)> = benches.iter().map(|b| (b.riscv_n, b.gpu_n)).collect();
        assert_eq!(
            sizes,
            vec![
                (128, 2048),
                (512, 32768),
                (1024, 65536),
                (128, 4096),
                (512, 4096),
                (256, 4096),
                (128, 2048),
            ]
        );
    }

    #[test]
    fn parallel_kernels_scale_with_cus() {
        let bench = all()[1]; // copy
        let c1 = bench.run_gpu(2048, 1).unwrap().cycles;
        let c4 = bench.run_gpu(2048, 4).unwrap().cycles;
        assert!(c4 < c1, "copy: 1CU {c1} vs 4CU {c4}");
    }

    #[test]
    fn div_int_speedup_is_small() {
        let bench = all()[4];
        let gpu = bench.run_gpu(512, 1).unwrap();
        let rv = bench.run_riscv(512).unwrap();
        let speedup = scaled_speedup(rv.cycles, 512, gpu.cycles, 512);
        assert!(
            speedup < 6.0,
            "div_int must be a weak spot for the G-GPU, got {speedup:.1}x"
        );
    }

    #[test]
    fn copy_speedup_is_large() {
        let bench = all()[1];
        let gpu = bench.run_gpu(4096, 8).unwrap();
        let rv = bench.run_riscv(512).unwrap();
        let speedup = scaled_speedup(rv.cycles, 512, gpu.cycles, 4096);
        assert!(
            speedup > 8.0,
            "copy on 8 CUs must be far faster, got {speedup:.1}x"
        );
    }

    #[test]
    fn scaled_speedup_math() {
        assert!((scaled_speedup(100, 10, 50, 100) - 20.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod local_variant_tests {
    use super::*;

    #[test]
    fn lram_tiled_mat_mul_is_correct_and_relieves_the_cache() {
        let global = all()[0];
        let local = mat_mul_local();
        // Correctness is checked inside run_gpu against the shared
        // golden reference.
        let g = global.run_gpu(1024, 2).unwrap();
        let l = local.run_gpu(1024, 2).unwrap();
        // The tiled variant removes all b-vector traffic from the
        // shared cache...
        assert!(
            l.mem.accesses < g.mem.accesses * 9 / 10,
            "cache traffic must drop: {} vs {}",
            l.mem.accesses,
            g.mem.accesses
        );
        // ...but the kernel is issue-bound, so cycles stay within a
        // few percent (an honest negative result: the b vector was
        // cache-resident anyway; see `ablation_local`).
        let ratio = l.cycles as f64 / g.cycles as f64;
        assert!(
            (0.9..=1.06).contains(&ratio),
            "cycles ratio {ratio:.3} ({} vs {})",
            l.cycles,
            g.cycles
        );
    }

    #[test]
    fn partial_wavefront_grids_are_rejected_for_the_local_variant() {
        let err = mat_mul_local().run_gpu(100, 1).unwrap_err();
        assert!(matches!(err, BenchError::Gpu(SimError::BadLaunch(_))));
    }
}

#[cfg(test)]
mod sensitivity_tests {
    use super::*;
    use ggpu_simt::CacheConfig;

    #[test]
    fn bigger_cache_helps_when_the_working_set_outgrows_it() {
        // xcorr re-reads both full sequences for every lag (n-fold
        // reuse). At n = 1024 the 8 KiB working set fits the stock
        // 32 KiB cache but thrashes a 4 KiB one.
        let bench = all()[5];
        let n = 1024;
        let mut small_cfg = SimtConfig::with_cus(2);
        small_cfg.cache = CacheConfig {
            size_kib: 4,
            ..small_cfg.cache
        };
        let small = bench.run_gpu_with(n, small_cfg).unwrap();
        let big = bench.run_gpu_with(n, SimtConfig::with_cus(2)).unwrap();
        assert!(
            big.mem.miss_ratio() < small.mem.miss_ratio() * 0.8,
            "misses: {:.3} -> {:.3}",
            small.mem.miss_ratio(),
            big.mem.miss_ratio()
        );
        assert!(big.cycles <= small.cycles);
    }

    #[test]
    fn narrower_axi_slows_the_streaming_kernel() {
        let bench = all()[1]; // copy
        let n = 8192;
        let wide = bench.run_gpu(n, 4).unwrap();
        let mut narrow_cfg = SimtConfig::with_cus(4);
        narrow_cfg.dram.bytes_per_cycle = 1;
        let narrow = bench.run_gpu_with(n, narrow_cfg).unwrap();
        assert!(
            narrow.cycles > wide.cycles * 3 / 2,
            "1 B/cycle AXI must hurt copy: {} vs {}",
            narrow.cycles,
            wide.cycles
        );
    }

    #[test]
    fn streaming_cycles_scale_linearly_with_n() {
        let bench = all()[2]; // vec_mul
        let c1 = bench.run_gpu(2048, 2).unwrap().cycles;
        let c4 = bench.run_gpu(8192, 2).unwrap().cycles;
        let ratio = c4 as f64 / c1 as f64;
        assert!(
            (3.0..5.5).contains(&ratio),
            "4x the data should take ~4x the cycles, got {ratio:.2}"
        );
    }
}
