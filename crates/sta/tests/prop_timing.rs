//! Property tests of the timing engine: structural monotonicity that
//! must hold for any design the generator can produce.

use ggpu_netlist::module::{MacroInst, MemoryRole, Module};
use ggpu_netlist::timing::{LogicStage, PathEndpoint, TimingPath};
use ggpu_netlist::Design;
use ggpu_prop::{cases, Rng};
use ggpu_sta::{analyze, max_frequency};
use ggpu_tech::sram::SramConfig;
use ggpu_tech::stdcell::CellClass;
use ggpu_tech::units::{Mhz, Ns};
use ggpu_tech::Tech;

fn design_with_path(depth: usize, fanout: u32, words: u32) -> Design {
    let mut d = Design::new("t");
    let mut m = Module::new("m");
    m.macros.push(MacroInst::new(
        "ram",
        SramConfig::dual(words, 32),
        MemoryRole::Other,
        0.5,
    ));
    m.paths.push(TimingPath::new(
        "p",
        PathEndpoint::Macro("ram".into()),
        PathEndpoint::Register,
        LogicStage::chain(CellClass::Nand2, depth, fanout),
    ));
    let id = d.add_module(m);
    d.set_top(id);
    d
}

fn arb_geometry(rng: &mut Rng) -> (usize, u32, u32) {
    (rng.usize_in(1, 19), rng.u32_in(1, 5), rng.u32_in(4, 11))
}

/// More logic depth can only reduce fmax.
#[test]
fn fmax_monotonic_in_depth() {
    cases(64, |rng| {
        let depth = rng.usize_in(1, 29);
        let fanout = rng.u32_in(1, 5);
        let wp = rng.u32_in(4, 11);
        let tech = Tech::l65();
        let f1 = max_frequency(&design_with_path(depth, fanout, 1 << wp), &tech)
            .unwrap()
            .unwrap();
        let f2 = max_frequency(&design_with_path(depth + 1, fanout, 1 << wp), &tech)
            .unwrap()
            .unwrap();
        assert!(f2.value() < f1.value());
    });
}

/// Higher fanout can only reduce fmax.
#[test]
fn fmax_monotonic_in_fanout() {
    cases(64, |rng| {
        let (depth, fanout, wp) = arb_geometry(rng);
        let fanout = fanout.min(7);
        let tech = Tech::l65();
        let f1 = max_frequency(&design_with_path(depth, fanout, 1 << wp), &tech)
            .unwrap()
            .unwrap();
        let f2 = max_frequency(&design_with_path(depth, fanout + 1, 1 << wp), &tech)
            .unwrap()
            .unwrap();
        assert!(f2.value() < f1.value());
    });
}

/// Slack at the zero-slack clock is zero, and shifting the clock
/// shifts slack by exactly the period delta.
#[test]
fn slack_tracks_period_exactly() {
    cases(64, |rng| {
        let depth = rng.usize_in(1, 19);
        let wp = rng.u32_in(4, 11);
        let tech = Tech::l65();
        let d = design_with_path(depth, 2, 1 << wp);
        let fmax = max_frequency(&d, &tech).unwrap().unwrap();
        let at_fmax = analyze(&d, &tech, fmax).unwrap();
        assert!(at_fmax.critical().unwrap().slack.abs() < Ns::new(1e-9));

        let slower = Mhz::new(fmax.value() * 0.8);
        let at_slower = analyze(&d, &tech, slower).unwrap();
        let expected_gain = slower.period() - fmax.period();
        let gain = at_slower.critical().unwrap().slack - at_fmax.critical().unwrap().slack;
        assert!((gain - expected_gain).abs() < Ns::new(1e-9));
    });
}

/// Route delay shifts arrival one-for-one.
#[test]
fn route_delay_adds_linearly() {
    cases(64, |rng| {
        let depth = rng.usize_in(1, 14);
        let extra = rng.f64_in(0.0, 1.0);
        let tech = Tech::l65();
        let mut d = design_with_path(depth, 2, 1024);
        let base = analyze(&d, &tech, Mhz::new(400.0))
            .unwrap()
            .critical()
            .unwrap()
            .arrival;
        let top = d.top();
        d.module_mut(top).paths[0].route_delay = Ns::new(extra);
        let with_route = analyze(&d, &tech, Mhz::new(400.0))
            .unwrap()
            .critical()
            .unwrap()
            .arrival;
        assert!(((with_route - base) - Ns::new(extra)).abs() < Ns::new(1e-12));
    });
}
