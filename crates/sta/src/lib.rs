//! Static timing analysis for `ggpu-netlist` designs.
//!
//! [`analyze`] times every representative path in a design against a
//! clock, producing a [`TimingReport`]; [`max_frequency`] finds the
//! zero-slack clock. Paths launching from memory macros use the
//! compiled macro's access time, reproducing the paper's observation
//! that the unoptimized G-GPU's critical path *"has its starting point
//! at a memory block"*.
//!
//! # Example
//!
//! ```
//! use ggpu_netlist::module::{MacroInst, MemoryRole, Module};
//! use ggpu_netlist::timing::{LogicStage, PathEndpoint, TimingPath};
//! use ggpu_netlist::Design;
//! use ggpu_sta::analyze;
//! use ggpu_tech::sram::SramConfig;
//! use ggpu_tech::stdcell::CellClass;
//! use ggpu_tech::units::Mhz;
//! use ggpu_tech::Tech;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut design = Design::new("demo");
//! let mut m = Module::new("m");
//! m.macros.push(MacroInst::new(
//!     "ram", SramConfig::dual(2048, 32), MemoryRole::CacheData, 0.5,
//! ));
//! m.paths.push(TimingPath::new(
//!     "read",
//!     PathEndpoint::Macro("ram".into()),
//!     PathEndpoint::Register,
//!     LogicStage::chain(CellClass::Nand2, 5, 2),
//! ));
//! let id = design.add_module(m);
//! design.set_top(id);
//! let report = analyze(&design, &Tech::l65(), Mhz::new(500.0))?;
//! assert!(report.critical().unwrap().is_memory_launched());
//! # Ok(())
//! # }
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod analysis;
pub mod engine;
pub mod report;

pub use analysis::{analyze, max_frequency, StaError, CLOCK_UNCERTAINTY, INPUT_DELAY_BUDGET};
pub use engine::{EngineStats, IncrementalSta};
pub use report::{PathTiming, TimingReport};
