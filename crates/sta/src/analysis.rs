//! Arrival-time computation for representative paths.

use crate::report::{PathTiming, TimingReport};
use ggpu_netlist::timing::PathEndpoint;
use ggpu_netlist::{Design, ModuleId};
use ggpu_tech::sram::CompileSramError;
use ggpu_tech::stdcell::CellClass;
use ggpu_tech::units::{FemtoFarads, Mhz, Ns};
use ggpu_tech::Tech;
use std::error::Error;
use std::fmt;

/// Fixed clock uncertainty (jitter + skew margin) subtracted from every
/// path's budget, matching a typical 65 nm sign-off margin.
pub const CLOCK_UNCERTAINTY: Ns = Ns::new(0.05);

/// Default delay budget assumed for paths launching from a module
/// input port.
pub const INPUT_DELAY_BUDGET: Ns = Ns::new(0.30);

/// Problems encountered while timing a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaError {
    /// A timing path references a macro that does not exist in its
    /// module.
    MacroNotFound {
        /// The module owning the path.
        module: String,
        /// The path name.
        path: String,
        /// The missing macro instance name.
        macro_name: String,
    },
    /// A macro in the design cannot be compiled by the memory compiler.
    Sram(CompileSramError),
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::MacroNotFound {
                module,
                path,
                macro_name,
            } => write!(
                f,
                "path {path} in module {module} references missing macro {macro_name}"
            ),
            StaError::Sram(e) => write!(f, "memory compiler: {e}"),
        }
    }
}

impl Error for StaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StaError::Sram(e) => Some(e),
            StaError::MacroNotFound { .. } => None,
        }
    }
}

impl From<CompileSramError> for StaError {
    fn from(e: CompileSramError) -> Self {
        StaError::Sram(e)
    }
}

/// Resolves a macro's (access time, setup) pair, compiling its
/// geometry through the process-wide memoized memory-compiler
/// front-end ([`ggpu_tech::sram::CompiledSramCache`]).
fn macro_access_time(
    design: &Design,
    module: ModuleId,
    path_name: &str,
    macro_name: &str,
    tech: &Tech,
) -> Result<(Ns, Ns), StaError> {
    let m = design
        .module(module)
        .find_macro(macro_name)
        .ok_or_else(|| StaError::MacroNotFound {
            module: design.module(module).name.clone(),
            path: path_name.to_string(),
            macro_name: macro_name.to_string(),
        })?;
    let compiled = tech.memory_compiler.compile_cached(m.config)?;
    Ok((compiled.access_time, compiled.setup))
}

/// Clock-independent timing of one path: every component of a
/// [`PathTiming`] except the slack, which is a function of the clock
/// period alone. Caching at this granularity makes *any* clock a
/// cache hit — the incremental engine re-derives slack per query with
/// the exact arithmetic [`analyze`] uses, so results stay
/// bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct UnclockedPath {
    pub(crate) module: String,
    pub(crate) path: String,
    pub(crate) start: PathEndpoint,
    pub(crate) end: PathEndpoint,
    pub(crate) launch: Ns,
    pub(crate) logic: Ns,
    pub(crate) route: Ns,
    pub(crate) setup: Ns,
    pub(crate) arrival: Ns,
}

impl UnclockedPath {
    /// Instantiates the path at a clock `period`, computing slack with
    /// the same expression (and therefore the same floating-point
    /// rounding) as the full analysis.
    pub(crate) fn at_period(&self, period: Ns) -> PathTiming {
        let slack = period - CLOCK_UNCERTAINTY - self.setup - self.arrival;
        PathTiming {
            module: self.module.clone(),
            path: self.path.clone(),
            start: self.start.clone(),
            end: self.end.clone(),
            launch: self.launch,
            logic: self.logic,
            route: self.route,
            setup: self.setup,
            arrival: self.arrival,
            slack,
        }
    }
}

/// Ascending-slack ordering used everywhere a report is sorted or a
/// critical path is selected. `total_cmp` instead of
/// `partial_cmp(..).expect(..)`: a NaN delay (e.g. a corrupt route
/// annotation) sorts to the report's tail deterministically instead of
/// panicking the planner mid-sweep.
pub(crate) fn slack_order(a: &PathTiming, b: &PathTiming) -> std::cmp::Ordering {
    a.slack.value().total_cmp(&b.slack.value())
}

/// Times every representative path of module `id`, producing
/// clock-independent results in the module's declaration order.
///
/// Each macro endpoint is compiled at most once per path — a
/// macro-to-macro path through one memory no longer characterizes the
/// same geometry twice — and compilation itself is memoized
/// process-wide, so repeated geometries (banks cloned per PE/CU) cost
/// one table lookup.
///
/// # Errors
///
/// Returns [`StaError`] if a path references a missing macro or a
/// macro geometry is outside the compiler range.
pub(crate) fn time_module(
    design: &Design,
    id: ModuleId,
    tech: &Tech,
) -> Result<Vec<UnclockedPath>, StaError> {
    let dff = tech.library.cell(CellClass::Dff);
    let module = design.module(id);
    let mut out = Vec::with_capacity(module.paths.len());
    for path in &module.paths {
        // Launch component. Remember a launching macro's timing so a
        // same-macro capture below reuses it instead of recompiling.
        let mut launch_macro: Option<(&str, (Ns, Ns))> = None;
        let launch = match &path.start {
            PathEndpoint::Register => dff.intrinsic_delay,
            PathEndpoint::Macro(name) => {
                let times = macro_access_time(design, id, &path.name, name, tech)?;
                launch_macro = Some((name.as_str(), times));
                times.0
            }
            PathEndpoint::Input => INPUT_DELAY_BUDGET,
            PathEndpoint::Output => Ns::ZERO,
        };

        // Logic component: each stage drives the next stage's input
        // capacitance plus estimated wire load.
        let mut logic = Ns::ZERO;
        for (i, stage) in path.stages.iter().enumerate() {
            let spec = tech.library.cell(stage.class);
            let sink_cap: FemtoFarads = match path.stages.get(i + 1) {
                Some(next) => tech.library.cell(next.class).input_cap,
                None => match &path.end {
                    PathEndpoint::Register => dff.input_cap,
                    PathEndpoint::Macro(_) => FemtoFarads::new(6.0),
                    _ => FemtoFarads::new(4.0),
                },
            };
            let load =
                tech.wire_load.net_cap(stage.fanout) + sink_cap * f64::from(stage.fanout.max(1));
            logic += spec.delay(load);
        }

        // Capture requirement.
        let setup = match &path.end {
            PathEndpoint::Register => dff.setup,
            PathEndpoint::Macro(name) => match launch_macro {
                Some((launch_name, times)) if launch_name == name => times.1,
                _ => macro_access_time(design, id, &path.name, name, tech)?.1,
            },
            PathEndpoint::Input | PathEndpoint::Output => Ns::ZERO,
        };

        let arrival = launch + logic + path.route_delay;
        out.push(UnclockedPath {
            module: module.name.clone(),
            path: path.name.clone(),
            start: path.start.clone(),
            end: path.end.clone(),
            launch,
            logic,
            route: path.route_delay,
            setup,
            arrival,
        });
    }
    Ok(out)
}

/// Times every representative path of every module in `design` against
/// the given clock and returns a full report sorted by ascending slack.
///
/// Identical module instances share their internal paths (the paper's
/// flow likewise places one CU partition and clones it), so each
/// module is analyzed once regardless of its multiplicity.
///
/// This is the full-recompute reference engine; the incremental engine
/// in [`crate::engine`] is property-tested to return byte-identical
/// reports.
///
/// # Errors
///
/// Returns [`StaError`] if a path references a missing macro or a
/// macro geometry is outside the compiler range.
pub fn analyze(design: &Design, tech: &Tech, clock: Mhz) -> Result<TimingReport, StaError> {
    let period = clock.period();
    let mut paths = Vec::new();
    for id in design.module_ids() {
        for up in time_module(design, id, tech)? {
            paths.push(up.at_period(period));
        }
    }
    paths.sort_by(slack_order);
    Ok(TimingReport::new(clock, paths))
}

/// Clock used for the single clock-independent probe analysis behind
/// [`max_frequency`]: path delay does not depend on the clock, so one
/// analysis at any frequency yields the critical delay.
pub(crate) const FMAX_PROBE: Mhz = Mhz::new(100.0);

/// Selects the critical (worst-slack) path from an iterator of timed
/// paths with the exact comparison the report sort uses, keeping the
/// first among ties — i.e. it returns precisely
/// `sorted(paths)[0]` without the O(P log P) sort.
pub(crate) fn select_critical(paths: impl Iterator<Item = PathTiming>) -> Option<PathTiming> {
    let mut crit: Option<PathTiming> = None;
    for p in paths {
        let better = match &crit {
            None => true,
            Some(c) => slack_order(&p, c).is_lt(),
        };
        if better {
            crit = Some(p);
        }
    }
    crit
}

/// Frequency at which `crit` (the critical path of some design) has
/// exactly zero slack.
pub(crate) fn fmax_of_critical(crit: &PathTiming) -> Mhz {
    let min_period = crit.arrival + crit.setup + CLOCK_UNCERTAINTY;
    min_period.frequency()
}

/// Computes the maximum clock frequency the design supports: the
/// frequency at which the worst path has exactly zero slack.
///
/// The critical path is found by a single top-1 scan — no report is
/// materialized and no O(P log P) sort runs; ties resolve exactly as
/// the stable report sort would (first declared wins).
///
/// # Errors
///
/// Same conditions as [`analyze`]. Returns `None` inside `Ok` if the
/// design declares no timing paths.
pub fn max_frequency(design: &Design, tech: &Tech) -> Result<Option<Mhz>, StaError> {
    let period = FMAX_PROBE.period();
    let mut crit: Option<PathTiming> = None;
    for id in design.module_ids() {
        for up in time_module(design, id, tech)? {
            let p = up.at_period(period);
            let better = match &crit {
                None => true,
                Some(c) => slack_order(&p, c).is_lt(),
            };
            if better {
                crit = Some(p);
            }
        }
    }
    Ok(crit.as_ref().map(fmax_of_critical))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_netlist::module::{MacroInst, MemoryRole, Module};
    use ggpu_netlist::timing::{LogicStage, TimingPath};
    use ggpu_tech::sram::SramConfig;

    fn design_with_paths() -> Design {
        let mut d = Design::new("t");
        let mut m = Module::new("m");
        m.macros.push(MacroInst::new(
            "big",
            SramConfig::dual(4096, 32),
            MemoryRole::CacheData,
            0.5,
        ));
        m.paths.push(TimingPath::new(
            "mem_read",
            PathEndpoint::Macro("big".into()),
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 4, 2),
        ));
        m.paths.push(TimingPath::new(
            "reg_reg",
            PathEndpoint::Register,
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 8, 2),
        ));
        let id = d.add_module(m);
        d.set_top(id);
        d
    }

    #[test]
    fn memory_path_dominates() {
        let d = design_with_paths();
        let report = analyze(&d, &Tech::l65(), Mhz::new(500.0)).unwrap();
        let crit = report.critical().unwrap();
        assert_eq!(crit.path, "mem_read");
        assert!(matches!(crit.start, PathEndpoint::Macro(_)));
    }

    #[test]
    fn fmax_matches_zero_slack() {
        let d = design_with_paths();
        let tech = Tech::l65();
        let fmax = max_frequency(&d, &tech).unwrap().unwrap();
        let at_fmax = analyze(&d, &tech, fmax).unwrap();
        assert!(at_fmax.critical().unwrap().slack.value().abs() < 1e-9);
        // Slightly faster clock must violate.
        let pushed = analyze(&d, &tech, Mhz::new(fmax.value() * 1.01)).unwrap();
        assert!(pushed.critical().unwrap().slack.value() < 0.0);
    }

    #[test]
    fn route_delay_reduces_slack() {
        let mut d = design_with_paths();
        let tech = Tech::l65();
        let before = analyze(&d, &tech, Mhz::new(500.0)).unwrap();
        let s_before = before.critical().unwrap().slack;
        let top = d.top();
        d.module_mut(top).paths[0].route_delay = Ns::new(0.3);
        let after = analyze(&d, &tech, Mhz::new(500.0)).unwrap();
        let s_after = after.critical().unwrap().slack;
        assert!((s_before - s_after).value() > 0.29);
    }

    #[test]
    fn missing_macro_is_reported() {
        let mut d = Design::new("t");
        let mut m = Module::new("m");
        m.paths.push(TimingPath::new(
            "bad",
            PathEndpoint::Macro("ghost".into()),
            PathEndpoint::Register,
            vec![],
        ));
        let id = d.add_module(m);
        d.set_top(id);
        let err = analyze(&d, &Tech::l65(), Mhz::new(500.0)).unwrap_err();
        assert!(matches!(err, StaError::MacroNotFound { .. }));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn empty_design_has_no_fmax() {
        let mut d = Design::new("t");
        let id = d.add_module(Module::new("empty"));
        d.set_top(id);
        assert!(max_frequency(&d, &Tech::l65()).unwrap().is_none());
    }

    #[test]
    fn deeper_logic_is_slower() {
        let tech = Tech::l65();
        let mut d = Design::new("t");
        let mut m = Module::new("m");
        m.paths.push(TimingPath::new(
            "short",
            PathEndpoint::Register,
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 3, 2),
        ));
        m.paths.push(TimingPath::new(
            "long",
            PathEndpoint::Register,
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 12, 2),
        ));
        let id = d.add_module(m);
        d.set_top(id);
        let report = analyze(&d, &tech, Mhz::new(500.0)).unwrap();
        assert_eq!(report.critical().unwrap().path, "long");
    }
}
