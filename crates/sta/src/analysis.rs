//! Arrival-time computation for representative paths.

use crate::report::{PathTiming, TimingReport};
use ggpu_netlist::timing::PathEndpoint;
use ggpu_netlist::{Design, ModuleId};
use ggpu_tech::sram::CompileSramError;
use ggpu_tech::stdcell::CellClass;
use ggpu_tech::units::{FemtoFarads, Mhz, Ns};
use ggpu_tech::Tech;
use std::error::Error;
use std::fmt;

/// Fixed clock uncertainty (jitter + skew margin) subtracted from every
/// path's budget, matching a typical 65 nm sign-off margin.
pub const CLOCK_UNCERTAINTY: Ns = Ns::new(0.05);

/// Default delay budget assumed for paths launching from a module
/// input port.
pub const INPUT_DELAY_BUDGET: Ns = Ns::new(0.30);

/// Problems encountered while timing a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaError {
    /// A timing path references a macro that does not exist in its
    /// module.
    MacroNotFound {
        /// The module owning the path.
        module: String,
        /// The path name.
        path: String,
        /// The missing macro instance name.
        macro_name: String,
    },
    /// A macro in the design cannot be compiled by the memory compiler.
    Sram(CompileSramError),
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::MacroNotFound {
                module,
                path,
                macro_name,
            } => write!(
                f,
                "path {path} in module {module} references missing macro {macro_name}"
            ),
            StaError::Sram(e) => write!(f, "memory compiler: {e}"),
        }
    }
}

impl Error for StaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StaError::Sram(e) => Some(e),
            StaError::MacroNotFound { .. } => None,
        }
    }
}

impl From<CompileSramError> for StaError {
    fn from(e: CompileSramError) -> Self {
        StaError::Sram(e)
    }
}

fn macro_access_time(
    design: &Design,
    module: ModuleId,
    path_name: &str,
    macro_name: &str,
    tech: &Tech,
) -> Result<(Ns, Ns), StaError> {
    let m = design
        .module(module)
        .find_macro(macro_name)
        .ok_or_else(|| StaError::MacroNotFound {
            module: design.module(module).name.clone(),
            path: path_name.to_string(),
            macro_name: macro_name.to_string(),
        })?;
    let compiled = tech.memory_compiler.compile(m.config)?;
    Ok((compiled.access_time, compiled.setup))
}

/// Times every representative path of every module in `design` against
/// the given clock and returns a full report sorted by ascending slack.
///
/// Identical module instances share their internal paths (the paper's
/// flow likewise places one CU partition and clones it), so each
/// module is analyzed once regardless of its multiplicity.
///
/// # Errors
///
/// Returns [`StaError`] if a path references a missing macro or a
/// macro geometry is outside the compiler range.
pub fn analyze(design: &Design, tech: &Tech, clock: Mhz) -> Result<TimingReport, StaError> {
    let period = clock.period();
    let mut paths = Vec::new();
    let dff = tech.library.cell(CellClass::Dff);

    for id in design.module_ids() {
        let module = design.module(id);
        for path in &module.paths {
            // Launch component.
            let launch = match &path.start {
                PathEndpoint::Register => dff.intrinsic_delay,
                PathEndpoint::Macro(name) => {
                    macro_access_time(design, id, &path.name, name, tech)?.0
                }
                PathEndpoint::Input => INPUT_DELAY_BUDGET,
                PathEndpoint::Output => Ns::ZERO,
            };

            // Logic component: each stage drives the next stage's input
            // capacitance plus estimated wire load.
            let mut logic = Ns::ZERO;
            for (i, stage) in path.stages.iter().enumerate() {
                let spec = tech.library.cell(stage.class);
                let sink_cap: FemtoFarads = match path.stages.get(i + 1) {
                    Some(next) => tech.library.cell(next.class).input_cap,
                    None => match &path.end {
                        PathEndpoint::Register => dff.input_cap,
                        PathEndpoint::Macro(_) => FemtoFarads::new(6.0),
                        _ => FemtoFarads::new(4.0),
                    },
                };
                let load = tech.wire_load.net_cap(stage.fanout)
                    + sink_cap * f64::from(stage.fanout.max(1));
                logic += spec.delay(load);
            }

            // Capture requirement.
            let setup = match &path.end {
                PathEndpoint::Register => dff.setup,
                PathEndpoint::Macro(name) => {
                    macro_access_time(design, id, &path.name, name, tech)?.1
                }
                PathEndpoint::Input | PathEndpoint::Output => Ns::ZERO,
            };

            let arrival = launch + logic + path.route_delay;
            let slack = period - CLOCK_UNCERTAINTY - setup - arrival;
            paths.push(PathTiming {
                module: module.name.clone(),
                path: path.name.clone(),
                start: path.start.clone(),
                end: path.end.clone(),
                launch,
                logic,
                route: path.route_delay,
                setup,
                arrival,
                slack,
            });
        }
    }

    paths.sort_by(|a, b| {
        a.slack
            .value()
            .partial_cmp(&b.slack.value())
            .expect("slacks are finite")
    });
    Ok(TimingReport::new(clock, paths))
}

/// Computes the maximum clock frequency the design supports: the
/// frequency at which the worst path has exactly zero slack.
///
/// # Errors
///
/// Same conditions as [`analyze`]. Returns `None` inside `Ok` if the
/// design declares no timing paths.
pub fn max_frequency(design: &Design, tech: &Tech) -> Result<Option<Mhz>, StaError> {
    // Path delay does not depend on the clock, so one analysis at any
    // frequency yields the critical delay.
    let report = analyze(design, tech, Mhz::new(100.0))?;
    Ok(report.critical().map(|crit| {
        let min_period = crit.arrival + crit.setup + CLOCK_UNCERTAINTY;
        min_period.frequency()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_netlist::module::{MacroInst, MemoryRole, Module};
    use ggpu_netlist::timing::{LogicStage, TimingPath};
    use ggpu_tech::sram::SramConfig;

    fn design_with_paths() -> Design {
        let mut d = Design::new("t");
        let mut m = Module::new("m");
        m.macros.push(MacroInst::new(
            "big",
            SramConfig::dual(4096, 32),
            MemoryRole::CacheData,
            0.5,
        ));
        m.paths.push(TimingPath::new(
            "mem_read",
            PathEndpoint::Macro("big".into()),
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 4, 2),
        ));
        m.paths.push(TimingPath::new(
            "reg_reg",
            PathEndpoint::Register,
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 8, 2),
        ));
        let id = d.add_module(m);
        d.set_top(id);
        d
    }

    #[test]
    fn memory_path_dominates() {
        let d = design_with_paths();
        let report = analyze(&d, &Tech::l65(), Mhz::new(500.0)).unwrap();
        let crit = report.critical().unwrap();
        assert_eq!(crit.path, "mem_read");
        assert!(matches!(crit.start, PathEndpoint::Macro(_)));
    }

    #[test]
    fn fmax_matches_zero_slack() {
        let d = design_with_paths();
        let tech = Tech::l65();
        let fmax = max_frequency(&d, &tech).unwrap().unwrap();
        let at_fmax = analyze(&d, &tech, fmax).unwrap();
        assert!(at_fmax.critical().unwrap().slack.value().abs() < 1e-9);
        // Slightly faster clock must violate.
        let pushed = analyze(&d, &tech, Mhz::new(fmax.value() * 1.01)).unwrap();
        assert!(pushed.critical().unwrap().slack.value() < 0.0);
    }

    #[test]
    fn route_delay_reduces_slack() {
        let mut d = design_with_paths();
        let tech = Tech::l65();
        let before = analyze(&d, &tech, Mhz::new(500.0)).unwrap();
        let s_before = before.critical().unwrap().slack;
        let top = d.top();
        d.module_mut(top).paths[0].route_delay = Ns::new(0.3);
        let after = analyze(&d, &tech, Mhz::new(500.0)).unwrap();
        let s_after = after.critical().unwrap().slack;
        assert!((s_before - s_after).value() > 0.29);
    }

    #[test]
    fn missing_macro_is_reported() {
        let mut d = Design::new("t");
        let mut m = Module::new("m");
        m.paths.push(TimingPath::new(
            "bad",
            PathEndpoint::Macro("ghost".into()),
            PathEndpoint::Register,
            vec![],
        ));
        let id = d.add_module(m);
        d.set_top(id);
        let err = analyze(&d, &Tech::l65(), Mhz::new(500.0)).unwrap_err();
        assert!(matches!(err, StaError::MacroNotFound { .. }));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn empty_design_has_no_fmax() {
        let mut d = Design::new("t");
        let id = d.add_module(Module::new("empty"));
        d.set_top(id);
        assert!(max_frequency(&d, &Tech::l65()).unwrap().is_none());
    }

    #[test]
    fn deeper_logic_is_slower() {
        let tech = Tech::l65();
        let mut d = Design::new("t");
        let mut m = Module::new("m");
        m.paths.push(TimingPath::new(
            "short",
            PathEndpoint::Register,
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 3, 2),
        ));
        m.paths.push(TimingPath::new(
            "long",
            PathEndpoint::Register,
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 12, 2),
        ));
        let id = d.add_module(m);
        d.set_top(id);
        let report = analyze(&d, &tech, Mhz::new(500.0)).unwrap();
        assert_eq!(report.critical().unwrap().path, "long");
    }
}
