//! Timing report structures.

use ggpu_netlist::timing::PathEndpoint;
use ggpu_tech::units::{Mhz, Ns};
use std::fmt;

/// Timing of one representative path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathTiming {
    /// Module owning the path.
    pub module: String,
    /// Path name within the module.
    pub path: String,
    /// Launch endpoint.
    pub start: PathEndpoint,
    /// Capture endpoint.
    pub end: PathEndpoint,
    /// Launch delay (clock-to-Q or macro access time).
    pub launch: Ns,
    /// Combinational logic delay.
    pub logic: Ns,
    /// Annotated route delay (zero pre-layout).
    pub route: Ns,
    /// Capture setup requirement.
    pub setup: Ns,
    /// Total arrival time (launch + logic + route).
    pub arrival: Ns,
    /// Slack against the analysis clock.
    pub slack: Ns,
}

impl PathTiming {
    /// `true` if the path launches from a memory macro — the condition
    /// GPUPlanner's map checks to decide between memory division and
    /// pipeline insertion.
    pub fn is_memory_launched(&self) -> bool {
        matches!(self.start, PathEndpoint::Macro(_))
    }

    /// `true` if this path violates timing (negative slack).
    pub fn is_violating(&self) -> bool {
        self.slack.value() < 0.0
    }
}

impl fmt::Display for PathTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}::{} [{} -> {}] arrival {:.3} (launch {:.3} + logic {:.3} + route {:.3}), slack {:.3}",
            self.module, self.path, self.start, self.end, self.arrival, self.launch,
            self.logic, self.route, self.slack
        )
    }
}

/// A full timing report: every analyzed path, sorted by ascending
/// slack.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    clock: Mhz,
    paths: Vec<PathTiming>,
}

impl TimingReport {
    /// Builds a report from pre-sorted paths (ascending slack).
    pub(crate) fn new(clock: Mhz, paths: Vec<PathTiming>) -> Self {
        Self { clock, paths }
    }

    /// The clock the analysis ran at.
    pub fn clock(&self) -> Mhz {
        self.clock
    }

    /// All paths, worst slack first.
    pub fn paths(&self) -> &[PathTiming] {
        &self.paths
    }

    /// The critical (worst-slack) path, if any paths exist.
    pub fn critical(&self) -> Option<&PathTiming> {
        self.paths.first()
    }

    /// All timing-violating paths, worst first.
    pub fn violations(&self) -> impl Iterator<Item = &PathTiming> {
        self.paths.iter().filter(|p| p.is_violating())
    }

    /// `true` if every path meets timing.
    pub fn meets_timing(&self) -> bool {
        self.paths.iter().all(|p| !p.is_violating())
    }

    /// Worst negative slack, or zero if timing is met.
    pub fn wns(&self) -> Ns {
        self.critical()
            .map(|c| c.slack.min(Ns::ZERO))
            .unwrap_or(Ns::ZERO)
    }

    /// Total negative slack across all violating paths.
    pub fn tns(&self) -> Ns {
        self.violations().map(|p| p.slack).sum()
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "timing @ {:.0}: {} paths, wns {:.3}, tns {:.3}",
            self.clock,
            self.paths.len(),
            self.wns(),
            self.tns()
        )?;
        for p in self.paths.iter().take(5) {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(name: &str, slack: f64) -> PathTiming {
        PathTiming {
            module: "m".into(),
            path: name.into(),
            start: PathEndpoint::Register,
            end: PathEndpoint::Register,
            launch: Ns::new(0.1),
            logic: Ns::new(0.5),
            route: Ns::ZERO,
            setup: Ns::new(0.045),
            arrival: Ns::new(0.6),
            slack: Ns::new(slack),
        }
    }

    #[test]
    fn report_queries() {
        let r = TimingReport::new(
            Mhz::new(500.0),
            vec![path("worst", -0.2), path("bad", -0.1), path("ok", 0.3)],
        );
        assert_eq!(r.critical().unwrap().path, "worst");
        assert_eq!(r.violations().count(), 2);
        assert!(!r.meets_timing());
        assert!((r.wns().value() + 0.2).abs() < 1e-12);
        assert!((r.tns().value() + 0.3).abs() < 1e-12);
    }

    #[test]
    fn clean_report_meets_timing() {
        let r = TimingReport::new(Mhz::new(500.0), vec![path("ok", 0.1)]);
        assert!(r.meets_timing());
        assert_eq!(r.wns(), Ns::ZERO);
        assert_eq!(r.tns(), Ns::ZERO);
    }

    #[test]
    fn empty_report() {
        let r = TimingReport::new(Mhz::new(500.0), vec![]);
        assert!(r.critical().is_none());
        assert!(r.meets_timing());
    }

    #[test]
    fn memory_launch_detection() {
        let mut p = path("m", 0.0);
        assert!(!p.is_memory_launched());
        p.start = PathEndpoint::Macro("ram".into());
        assert!(p.is_memory_launched());
    }

    #[test]
    fn display_contains_summary() {
        let r = TimingReport::new(Mhz::new(500.0), vec![path("x", -0.1)]);
        let s = r.to_string();
        assert!(s.contains("wns"));
        assert!(s.contains("m::x"));
    }
}
