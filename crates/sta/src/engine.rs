//! Incremental STA engine.
//!
//! [`IncrementalSta`] caches the clock-independent timing of each
//! module ([`crate::analysis::UnclockedPath`]) in a content-addressed
//! table keyed by the pair *(module structural fingerprint, technology
//! fingerprint)*. Because the key is derived from the module's
//! contents, invalidation is automatic: any transform that edits a
//! module (memory division, pipeline insertion, route annotation)
//! changes its fingerprint and the stale entry is simply never looked
//! up again. Entries are clock-independent, so an `analyze` at a new
//! clock is a pure cache hit — only slack is re-derived, with the exact
//! floating-point expression the full engine uses.
//!
//! The table is sharded 16 ways, each shard behind its own `RwLock`,
//! so `GGPU_THREADS` design-space-exploration workers probing mostly
//! warm entries take read locks on distinct shards instead of
//! serializing on one global mutex.
//!
//! # Bit-identity
//!
//! The engine is a pure memoization of [`crate::analysis::analyze`] /
//! [`crate::analysis::max_frequency`]: per-module results are assembled
//! in arena order before the final slack sort, slack arithmetic is the
//! shared [`crate::analysis::UnclockedPath::at_period`], and critical
//! selection uses the same strict-less comparison as the report sort.
//! Property tests in the planner crate assert byte-identical reports
//! and plans between this engine and the full recompute.

use crate::analysis::{
    fmax_of_critical, select_critical, slack_order, time_module, StaError, UnclockedPath,
    FMAX_PROBE,
};
use crate::report::{PathTiming, TimingReport};
use ggpu_netlist::{Design, ModuleId};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Number of independent lock domains in the timed-module table. A
/// power of two so the shard index is a mask of the key's low bits.
const SHARDS: usize = 16;

/// Counters describing the engine's cache behaviour. All counters are
/// cumulative and monotone over the engine's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Module timings served from the content-addressed table.
    pub module_hits: u64,
    /// Module timings computed (and inserted) on demand.
    pub module_misses: u64,
    /// `analyze` / `analyze_delta` calls.
    pub analyze_calls: u64,
    /// `max_frequency` calls.
    pub fmax_calls: u64,
    /// Modules that an `analyze_delta` caller declared clean but which
    /// missed the cache anyway — nonzero means a transform mutated a
    /// module without reporting it dirty (harmless for correctness,
    /// since content addressing recomputes it, but worth surfacing).
    pub undeclared_dirty: u64,
}

impl EngineStats {
    /// Hit rate over module lookups, in `0.0..=1.0`; zero when no
    /// lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.module_hits + self.module_misses;
        if total == 0 {
            0.0
        } else {
            self.module_hits as f64 / total as f64
        }
    }
}

/// Content-addressed, sharded cache of per-module clock-independent
/// timing results.
///
/// See the [module documentation](crate::engine) for the caching
/// scheme and identity guarantees.
#[derive(Debug)]
pub struct IncrementalSta {
    shards: [RwLock<HashMap<u64, Arc<Vec<UnclockedPath>>>>; SHARDS],
    module_hits: AtomicU64,
    module_misses: AtomicU64,
    analyze_calls: AtomicU64,
    fmax_calls: AtomicU64,
    undeclared_dirty: AtomicU64,
}

impl Default for IncrementalSta {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalSta {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            module_hits: AtomicU64::new(0),
            module_misses: AtomicU64::new(0),
            analyze_calls: AtomicU64::new(0),
            fmax_calls: AtomicU64::new(0),
            undeclared_dirty: AtomicU64::new(0),
        }
    }

    /// Cache key for one module under one technology. The tech
    /// fingerprint is hoisted out by the public entry points (one tech
    /// hash per query, not one per module).
    fn key(design: &Design, id: ModuleId, tech_fp: u64) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        design.module_fingerprint(id).hash(&mut h);
        tech_fp.hash(&mut h);
        h.finish()
    }

    /// Looks up (or computes and inserts) the clock-independent timing
    /// of module `id`. Returns whether the lookup hit alongside the
    /// result so `analyze_delta` can validate its dirty set.
    fn timed_module(
        &self,
        design: &Design,
        id: ModuleId,
        tech: &Tech,
        tech_fp: u64,
    ) -> Result<(Arc<Vec<UnclockedPath>>, bool), StaError> {
        let key = Self::key(design, id, tech_fp);
        let shard = &self.shards[(key as usize) & (SHARDS - 1)];
        if let Some(hit) = shard
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.module_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(hit), true));
        }
        // Compute outside the lock; a racing duplicate compute is
        // benign (results are content-derived and identical).
        let timed = Arc::new(time_module(design, id, tech)?);
        self.module_misses.fetch_add(1, Ordering::Relaxed);
        let mut w = shard.write().unwrap_or_else(PoisonError::into_inner);
        let entry = w.entry(key).or_insert_with(|| Arc::clone(&timed));
        Ok((Arc::clone(entry), false))
    }

    /// Full analysis through the cache: byte-identical to
    /// [`crate::analyze`], but each module whose content was timed
    /// before (under this technology) is a table lookup.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::analyze`].
    pub fn analyze(
        &self,
        design: &Design,
        tech: &Tech,
        clock: Mhz,
    ) -> Result<TimingReport, StaError> {
        self.analyze_calls.fetch_add(1, Ordering::Relaxed);
        self.assemble(design, tech, clock, None)
    }

    /// Incremental analysis after a transform: `dirty` names the
    /// modules the caller just mutated. Content addressing makes the
    /// dirty set *advisory* — correctness never depends on it — but the
    /// engine uses it to validate transform instrumentation: a module
    /// not in `dirty` that nevertheless misses the cache bumps
    /// [`EngineStats::undeclared_dirty`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::analyze`].
    pub fn analyze_delta(
        &self,
        design: &Design,
        tech: &Tech,
        clock: Mhz,
        dirty: &[ModuleId],
    ) -> Result<TimingReport, StaError> {
        self.analyze_calls.fetch_add(1, Ordering::Relaxed);
        self.assemble(design, tech, clock, Some(dirty))
    }

    /// Shared assembly: per-module results in arena order, slack
    /// derived per path, then one global sort — the exact pipeline of
    /// the full engine, so tie ordering matches.
    fn assemble(
        &self,
        design: &Design,
        tech: &Tech,
        clock: Mhz,
        dirty: Option<&[ModuleId]>,
    ) -> Result<TimingReport, StaError> {
        let period = clock.period();
        let tech_fp = tech.structural_fingerprint();
        let mut paths = Vec::new();
        for id in design.module_ids() {
            let (timed, hit) = self.timed_module(design, id, tech, tech_fp)?;
            if let Some(dirty) = dirty {
                if !hit && !dirty.contains(&id) {
                    self.undeclared_dirty.fetch_add(1, Ordering::Relaxed);
                }
            }
            paths.extend(timed.iter().map(|up| up.at_period(period)));
        }
        paths.sort_by(slack_order);
        Ok(TimingReport::new(clock, paths))
    }

    /// Maximum clock frequency through the cache: top-1 selection over
    /// cached clock-independent paths, byte-identical to
    /// [`crate::max_frequency`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::max_frequency`].
    pub fn max_frequency(&self, design: &Design, tech: &Tech) -> Result<Option<Mhz>, StaError> {
        self.fmax_calls.fetch_add(1, Ordering::Relaxed);
        let period = FMAX_PROBE.period();
        let tech_fp = tech.structural_fingerprint();
        let mut crit: Option<PathTiming> = None;
        for id in design.module_ids() {
            let (timed, _) = self.timed_module(design, id, tech, tech_fp)?;
            let module_crit = select_critical(timed.iter().map(|up| up.at_period(period)));
            if let Some(p) = module_crit {
                let better = match &crit {
                    None => true,
                    Some(c) => slack_order(&p, c).is_lt(),
                };
                if better {
                    crit = Some(p);
                }
            }
        }
        Ok(crit.as_ref().map(fmax_of_critical))
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            module_hits: self.module_hits.load(Ordering::Relaxed),
            module_misses: self.module_misses.load(Ordering::Relaxed),
            analyze_calls: self.analyze_calls.load(Ordering::Relaxed),
            fmax_calls: self.fmax_calls.load(Ordering::Relaxed),
            undeclared_dirty: self.undeclared_dirty.load(Ordering::Relaxed),
        }
    }

    /// Number of cached module timings across all shards.
    pub fn cached_modules(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, max_frequency};
    use ggpu_netlist::module::{MacroInst, MemoryRole, Module};
    use ggpu_netlist::timing::{LogicStage, PathEndpoint, TimingPath};
    use ggpu_tech::sram::SramConfig;
    use ggpu_tech::stdcell::CellClass;
    use ggpu_tech::units::Ns;

    fn demo_design() -> Design {
        let mut d = Design::new("demo");
        let mut pe = Module::new("pe");
        pe.macros.push(MacroInst::new(
            "rf",
            SramConfig::dual(1024, 32),
            MemoryRole::RegisterFile,
            0.7,
        ));
        pe.paths.push(TimingPath::new(
            "rf_read",
            PathEndpoint::Macro("rf".into()),
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 5, 2),
        ));
        pe.paths.push(TimingPath::new(
            "alu",
            PathEndpoint::Register,
            PathEndpoint::Register,
            LogicStage::chain(CellClass::FullAdder, 8, 2),
        ));
        let pe_id = d.add_module(pe);
        let mut cu = Module::new("cu");
        cu.children.push(ggpu_netlist::module::Instance {
            name: "pe0".into(),
            module: pe_id,
        });
        cu.paths.push(TimingPath::new(
            "sched",
            PathEndpoint::Register,
            PathEndpoint::Register,
            LogicStage::chain(CellClass::Nand2, 10, 3),
        ));
        let cu_id = d.add_module(cu);
        d.set_top(cu_id);
        d
    }

    #[test]
    fn engine_matches_full_analyze_bit_for_bit() {
        let d = demo_design();
        let tech = Tech::l65();
        let engine = IncrementalSta::new();
        for mhz in [333.0, 590.0, 667.0, 804.0] {
            let clock = Mhz::new(mhz);
            let full = analyze(&d, &tech, clock).unwrap();
            let inc = engine.analyze(&d, &tech, clock).unwrap();
            assert_eq!(full, inc, "reports diverge at {mhz} MHz");
            for (a, b) in full.paths().iter().zip(inc.paths()) {
                assert_eq!(a.slack.value().to_bits(), b.slack.value().to_bits());
            }
        }
    }

    #[test]
    fn engine_matches_full_fmax_bit_for_bit() {
        let d = demo_design();
        let tech = Tech::l65();
        let engine = IncrementalSta::new();
        let full = max_frequency(&d, &tech).unwrap().unwrap();
        let inc = engine.max_frequency(&d, &tech).unwrap().unwrap();
        assert_eq!(full.value().to_bits(), inc.value().to_bits());
    }

    #[test]
    fn second_analysis_is_all_hits() {
        let d = demo_design();
        let tech = Tech::l65();
        let engine = IncrementalSta::new();
        engine.analyze(&d, &tech, Mhz::new(500.0)).unwrap();
        let after_first = engine.stats();
        assert_eq!(after_first.module_misses, 2);
        assert_eq!(after_first.module_hits, 0);
        // Different clock: still a pure hit — entries are
        // clock-independent.
        engine.analyze(&d, &tech, Mhz::new(667.0)).unwrap();
        let after_second = engine.stats();
        assert_eq!(after_second.module_misses, 2);
        assert_eq!(after_second.module_hits, 2);
        assert_eq!(engine.cached_modules(), 2);
    }

    #[test]
    fn mutation_invalidates_only_touched_module() {
        let mut d = demo_design();
        let tech = Tech::l65();
        let engine = IncrementalSta::new();
        engine.analyze(&d, &tech, Mhz::new(500.0)).unwrap();
        let top = d.top();
        d.module_mut(top).paths[0].route_delay = Ns::new(0.2);
        let report = engine
            .analyze_delta(&d, &tech, Mhz::new(500.0), &[top])
            .unwrap();
        let full = analyze(&d, &tech, Mhz::new(500.0)).unwrap();
        assert_eq!(report, full);
        let stats = engine.stats();
        // pe hit, cu (mutated) missed; dirty set was accurate.
        assert_eq!(stats.module_misses, 3);
        assert_eq!(stats.module_hits, 1);
        assert_eq!(stats.undeclared_dirty, 0);
    }

    #[test]
    fn undeclared_mutation_is_counted_not_wrong() {
        let mut d = demo_design();
        let tech = Tech::l65();
        let engine = IncrementalSta::new();
        engine.analyze(&d, &tech, Mhz::new(500.0)).unwrap();
        let top = d.top();
        d.module_mut(top).paths[0].route_delay = Ns::new(0.2);
        // Caller claims nothing is dirty; content addressing still
        // recomputes the mutated module and the result stays exact.
        let report = engine
            .analyze_delta(&d, &tech, Mhz::new(500.0), &[])
            .unwrap();
        let full = analyze(&d, &tech, Mhz::new(500.0)).unwrap();
        assert_eq!(report, full);
        assert_eq!(engine.stats().undeclared_dirty, 1);
    }

    #[test]
    fn identical_module_content_shares_entries_across_designs() {
        let tech = Tech::l65();
        let engine = IncrementalSta::new();
        let d1 = demo_design();
        engine.analyze(&d1, &tech, Mhz::new(500.0)).unwrap();
        // Same structure, different design name (the flow renames
        // optimized designs): every module must hit.
        let mut d2 = demo_design();
        d2.set_name("demo_opt");
        engine.analyze(&d2, &tech, Mhz::new(500.0)).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.module_misses, 2);
        assert_eq!(stats.module_hits, 2);
    }

    #[test]
    fn errors_are_propagated_not_cached() {
        let mut d = Design::new("bad");
        let mut m = Module::new("m");
        m.paths.push(TimingPath::new(
            "ghost_read",
            PathEndpoint::Macro("ghost".into()),
            PathEndpoint::Register,
            vec![],
        ));
        let id = d.add_module(m);
        d.set_top(id);
        let engine = IncrementalSta::new();
        let tech = Tech::l65();
        assert!(engine.analyze(&d, &tech, Mhz::new(500.0)).is_err());
        // Fix the module; the repaired content is a fresh key and must
        // succeed.
        d.module_mut(id).macros.push(MacroInst::new(
            "ghost",
            SramConfig::dual(256, 32),
            MemoryRole::ScratchRam,
            0.5,
        ));
        assert!(engine.analyze(&d, &tech, Mhz::new(500.0)).is_ok());
    }

    #[test]
    fn hit_rate_reporting() {
        let stats = EngineStats {
            module_hits: 3,
            module_misses: 1,
            ..Default::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(EngineStats::default().hit_rate(), 0.0);
    }
}
