//! Acceptance fuzz: no injected fault can panic the simulator.
//! Random (domain, coordinates, cycle, bits, protection) tuples —
//! including wildly out-of-range coordinates — must always yield a
//! normal result (`Ok`) or a typed `SimError`, never a panic.

use ggpu_fault::Workload;
use ggpu_kernels::bench;
use ggpu_prop::{cases, Rng};
use ggpu_simt::{
    FaultPlan, FaultSite, HardenedOptions, Injection, Protection, SimtConfig, WatchdogConfig,
};

fn random_site(rng: &mut Rng) -> FaultSite {
    // Coordinates sampled over a range far wider than any live
    // machine so vacancy paths get heavy coverage.
    let cu = rng.u32_in(0, 15);
    let slot = rng.u32_in(0, 31);
    let lane = rng.u32_in(0, 127);
    match rng.u32_in(0, 4) {
        0 => FaultSite::Register {
            cu,
            slot,
            lane,
            reg: (rng.u32_in(0, 63)) as u8,
        },
        1 => FaultSite::LocalWord {
            cu,
            word: rng.u32_in(0, (1 << 14) - 1),
        },
        2 => FaultSite::GlobalWord {
            word: rng.u32_in(0, (1 << 21) - 1),
        },
        3 => FaultSite::Pc { cu, slot, lane },
        _ => FaultSite::ExecMask { cu, slot, lane },
    }
}

fn random_protection(rng: &mut Rng) -> Protection {
    match rng.u32_in(0, 2) {
        0 => Protection::None,
        1 => Protection::Parity,
        _ => Protection::SecDed,
    }
}

#[test]
fn random_injections_never_panic() {
    let copy = bench::all()[1];
    let w = Workload::from_bench(&copy, 64).expect("prepare");
    cases(64, |rng| {
        let n_inj = rng.usize_in(1, 4);
        let injections: Vec<Injection> = (0..n_inj)
            .map(|i| Injection {
                cycle: rng.u64_in(0, 4_999),
                site: random_site(rng),
                flips: (0..rng.usize_in(0, 3))
                    .map(|_| rng.u32_in(0, 39) as u8)
                    .collect(),
                codeword_flips: rng.u32_in(0, 4),
                protection: random_protection(rng),
                label: format!("fuzz{i}"),
            })
            .collect();
        let opts = HardenedOptions {
            plan: FaultPlan::new(injections),
            watchdog: Some(WatchdogConfig {
                interval: 512,
                patience: 1,
            }),
        };
        let mut gpu = w.fresh_gpu(SimtConfig::with_cus(1)).expect("stage");
        // Ok and typed Err are both acceptable; a panic fails the test.
        let _ = gpu.launch_hardened(w.kernel(), w.launch(), &opts);
    });
}
