//! Kill-point resume property: a campaign whose checkpoint journal is
//! cut at *any* byte offset — simulating `kill -9` (or power loss)
//! mid-write — resumes to a report byte-identical to an uninterrupted
//! run, and never re-runs a trial whose record survived whole.

use ggpu_fault::{run_campaign, CampaignConfig, MacroMap, Rng, Workload};
use ggpu_kernels::bench;
use ggpu_netlist::EccPolicy;
use ggpu_rtl::{generate, GgpuConfig};
use ggpu_tech::sram::EccScheme;
use std::path::PathBuf;

fn fixture() -> (Workload, MacroMap) {
    let design = generate(&GgpuConfig::with_cus(1).expect("cfg")).expect("generate");
    let map =
        MacroMap::from_design(&design, &EccPolicy::uniform(EccScheme::Parity)).expect("macro map");
    let copy = bench::all()[1];
    let w = Workload::from_bench(&copy, 256).expect("prepare");
    (w, map)
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ggpu_resume_prop_{}_{tag}.txt", std::process::id()))
}

#[test]
fn resume_from_any_truncation_offset_is_byte_identical() {
    let (w, map) = fixture();
    let mut cfg = CampaignConfig::new(0x5EED, 24);
    cfg.threads = 2;
    let uninterrupted = run_campaign(&w, &map, &cfg).expect("baseline").to_json();

    // One complete checkpointed run to obtain the full journal bytes.
    let path = scratch("full");
    let _ = std::fs::remove_file(&path);
    cfg.checkpoint = Some(path.clone());
    let full = run_campaign(&w, &map, &cfg).expect("checkpointed");
    assert_eq!(full.to_json(), uninterrupted);
    let journal = std::fs::read(&path).expect("journal bytes");
    assert!(journal.len() > 64, "journal holds header + 24 records");

    // Randomized kill points across the whole byte range: inside the
    // header, on line boundaries, mid-record. Each truncated file must
    // resume to the same bytes.
    let mut rng = Rng::for_trial(0xDEAD_BEEF, 0);
    let mut offsets: Vec<usize> = (0..24)
        .map(|_| (rng.next_u64() % journal.len() as u64) as usize)
        .collect();
    offsets.push(0);
    offsets.push(journal.len() - 1);
    for off in offsets {
        std::fs::write(&path, &journal[..off]).expect("truncate");
        let resumed = run_campaign(&w, &map, &cfg)
            .unwrap_or_else(|e| panic!("resume from offset {off} failed: {e}"))
            .to_json();
        assert_eq!(resumed, uninterrupted, "offset {off} diverged");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_skips_recorded_trials() {
    // A journal holding a sentinel record for trial 0 proves resumed
    // campaigns trust surviving records instead of re-running them:
    // the sentinel's (impossible) outcome flows into the report.
    let (w, map) = fixture();
    let path = scratch("skip");
    let _ = std::fs::remove_file(&path);
    let mut cfg = CampaignConfig::new(0x5EED, 4);
    cfg.threads = 1;
    cfg.checkpoint = Some(path.clone());
    let baseline = run_campaign(&w, &map, &cfg).expect("baseline");

    let text = std::fs::read_to_string(&path).expect("read");
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    // Replace trial 0's record with a sentinel marked `hang`.
    let idx = lines
        .iter()
        .position(|l| l.starts_with("t 0 "))
        .expect("trial 0 recorded");
    lines[idx] = "t 0 0 1 hang".to_string();
    std::fs::write(&path, format!("{}\n", lines.join("\n"))).expect("rewrite");

    let resumed = run_campaign(&w, &map, &cfg).expect("resumed");
    assert_eq!(
        resumed.counts.hang,
        baseline.counts.hang + 1,
        "sentinel record was honored, not re-simulated"
    );
    let _ = std::fs::remove_file(&path);
}
