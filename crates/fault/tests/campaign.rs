//! Campaign-level guarantees: zero-injection bit-identity on every
//! shipped kernel, seed determinism of the serialized report across
//! thread counts, and checkpoint/resume equivalence.

use ggpu_fault::{run_campaign, CampaignConfig, MacroMap, Workload};
use ggpu_kernels::bench;
use ggpu_netlist::EccPolicy;
use ggpu_rtl::{generate, GgpuConfig};
use ggpu_simt::{FaultPlan, HardenedOptions, SimtConfig, WatchdogConfig};
use ggpu_tech::sram::EccScheme;

/// The eight shipped kernels (Table III seven plus the LRAM-tiled
/// mat_mul extension) at CI-sized grids.
fn all_workloads() -> Vec<Workload> {
    let mut v: Vec<Workload> = bench::all()
        .iter()
        .map(|b| Workload::from_bench(b, 128).expect("prepare"))
        .collect();
    v.push(Workload::from_bench(&bench::mat_mul_local(), 128).expect("prepare local"));
    v
}

/// Hard guarantee: a hardened launch with an empty plan (watchdog ON)
/// is bit-identical to the un-instrumented simulator — same RunStats,
/// same full memory image — for all 8 shipped kernels.
#[test]
fn zero_injection_campaign_is_bit_identical_on_all_kernels() {
    let config = SimtConfig::with_cus(2);
    for w in all_workloads() {
        let mut plain = w.fresh_gpu(config).expect("stage");
        let base = plain.launch(w.kernel(), w.launch()).expect("plain run");

        let mut hardened = w.fresh_gpu(config).expect("stage");
        let opts = HardenedOptions {
            plan: FaultPlan::empty(),
            watchdog: Some(WatchdogConfig::default()),
        };
        let run = hardened
            .launch_hardened(w.kernel(), w.launch(), &opts)
            .expect("hardened run");

        assert_eq!(base, run.stats, "{}: stats diverged", w.name);
        assert!(run.log.events.is_empty(), "{}: spurious events", w.name);
        let words = w.memory_words();
        let img_a = plain.read_words(0, words).expect("image");
        let img_b = hardened.read_words(0, words).expect("image");
        assert_eq!(img_a, img_b, "{}: memory image diverged", w.name);
    }
}

fn campaign_fixture() -> (Workload, MacroMap) {
    let design = generate(&GgpuConfig::with_cus(1).expect("cfg")).expect("generate");
    let map =
        MacroMap::from_design(&design, &EccPolicy::uniform(EccScheme::Parity)).expect("macro map");
    let copy = bench::all()[1];
    let w = Workload::from_bench(&copy, 256).expect("prepare");
    (w, map)
}

/// Identical seed + config ⇒ byte-identical campaign JSON, regardless
/// of worker-thread count.
#[test]
fn seed_determines_report_bytes_across_thread_counts() {
    let (w, map) = campaign_fixture();
    let mut cfg = CampaignConfig::new(0xCAFE, 32);
    cfg.threads = 1;
    let a = run_campaign(&w, &map, &cfg).expect("run 1t").to_json();
    cfg.threads = 4;
    let b = run_campaign(&w, &map, &cfg).expect("run 4t").to_json();
    assert_eq!(a, b);

    let mut other = CampaignConfig::new(0xCAFF, 32);
    other.threads = 4;
    let c = run_campaign(&w, &map, &other).expect("run").to_json();
    assert_ne!(a, c, "different seeds must explore different faults");
}

/// A campaign interrupted mid-way and resumed from its checkpoint
/// produces the same bytes as an uninterrupted run.
#[test]
fn checkpoint_resume_is_byte_identical() {
    let (w, map) = campaign_fixture();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("ggpu_fault_ckpt_{}.txt", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let mut cfg = CampaignConfig::new(0xBEEF, 24);
    cfg.threads = 2;
    let uninterrupted = run_campaign(&w, &map, &cfg).expect("baseline").to_json();

    // Full checkpointed run, then truncate to simulate an interruption
    // after the first 8 recorded trials.
    cfg.checkpoint = Some(path.clone());
    let full = run_campaign(&w, &map, &cfg)
        .expect("checkpointed")
        .to_json();
    assert_eq!(full, uninterrupted);

    let text = std::fs::read_to_string(&path).expect("read ckpt");
    let keep: Vec<&str> = text.lines().take(1 + 8).collect();
    std::fs::write(&path, format!("{}\n", keep.join("\n"))).expect("truncate");

    let resumed = run_campaign(&w, &map, &cfg).expect("resumed").to_json();
    assert_eq!(resumed, uninterrupted);

    // A mismatched campaign must refuse the checkpoint.
    let mut wrong = cfg.clone();
    wrong.seed = 1;
    assert!(run_campaign(&w, &map, &wrong).is_err());

    let _ = std::fs::remove_file(&path);
}

/// The campaign actually exercises the taxonomy: with an unprotected
/// design enough trials produce at least one non-masked outcome, and
/// outcome totals always equal the trial count.
#[test]
fn outcomes_sum_to_trials() {
    let design = generate(&GgpuConfig::with_cus(1).expect("cfg")).expect("generate");
    let map = MacroMap::from_design(&design, &EccPolicy::unprotected()).expect("map");
    let copy = bench::all()[1];
    let w = Workload::from_bench(&copy, 256).expect("prepare");
    let cfg = CampaignConfig::new(11, 40);
    let report = run_campaign(&w, &map, &cfg).expect("run");
    assert_eq!(report.counts.total(), 40);
    let per_macro: u32 = report.macros.iter().map(|m| m.counts.total()).sum();
    assert_eq!(per_macro, 40, "every trial attributes to one macro");
    assert!(report.golden_cycles > 0);
}
