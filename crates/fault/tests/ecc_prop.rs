//! Property suite for the SEC-DED / parity codecs: for every word
//! width the SRAM compiler accepts (2–144 data bits), single-bit
//! upsets are corrected 100 % of the time and double-bit upsets are
//! detected 100 % of the time.

use ggpu_fault::ecc::{parity_encode, parity_ok, secded_decode, secded_encode, Decode};
use ggpu_prop::Rng;

fn random_word(rng: &mut Rng, k: usize) -> Vec<bool> {
    (0..k).map(|_| rng.next_u64() & 1 == 1).collect()
}

/// Every width from 2 to 144; exhaustive over flip positions, random
/// over data words.
fn widths() -> impl Iterator<Item = usize> {
    2..=144usize
}

#[test]
fn secded_corrects_every_single_bit_flip() {
    let mut rng = Rng::seeded(0x5ec_ded);
    for k in widths() {
        let data = random_word(&mut rng, k);
        let code = secded_encode(&data);
        for flip in 0..code.len() {
            let mut received = code.clone();
            received[flip] = !received[flip];
            let (got, verdict) = secded_decode(&mut received);
            assert_eq!(verdict, Decode::Corrected, "width {k} flip {flip}");
            assert_eq!(got, data, "width {k} flip {flip}");
        }
    }
}

#[test]
fn secded_detects_every_double_bit_flip() {
    let mut rng = Rng::seeded(0xdead_2b17);
    for k in widths() {
        let data = random_word(&mut rng, k);
        let code = secded_encode(&data);
        let n = code.len();
        // Exhaustive over all pairs up to 40-bit codewords, randomly
        // sampled pairs beyond (the code is linear, so coverage of the
        // pair space is representative; exhaustive small widths pin
        // the structure).
        let pairs: Vec<(usize, usize)> = if n <= 40 {
            (0..n)
                .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
                .collect()
        } else {
            (0..256)
                .map(|_| {
                    let a = rng.usize_in(0, n - 1);
                    let mut b = rng.usize_in(0, n - 1);
                    while b == a {
                        b = rng.usize_in(0, n - 1);
                    }
                    (a.min(b), a.max(b))
                })
                .collect()
        };
        for (a, b) in pairs {
            let mut received = code.clone();
            received[a] = !received[a];
            received[b] = !received[b];
            let (_, verdict) = secded_decode(&mut received);
            assert_eq!(verdict, Decode::Uncorrectable, "width {k} flips {a},{b}");
        }
    }
}

#[test]
fn parity_detects_odd_and_misses_even_flips() {
    let mut rng = Rng::seeded(0x0dd);
    for k in widths() {
        let data = random_word(&mut rng, k);
        let code = parity_encode(&data);
        assert!(parity_ok(&code), "clean width {k}");
        for flip in 0..code.len() {
            let mut received = code.clone();
            received[flip] = !received[flip];
            assert!(!parity_ok(&received), "width {k} single flip {flip}");
            // A second flip anywhere restores even parity: missed.
            let other = (flip + 1) % received.len();
            received[other] = !received[other];
            assert!(parity_ok(&received), "width {k} double flip");
        }
    }
}

#[test]
fn clean_decode_roundtrips_every_width() {
    let mut rng = Rng::seeded(0xc1ea);
    for k in widths() {
        let data = random_word(&mut rng, k);
        let mut code = secded_encode(&data);
        let (got, verdict) = secded_decode(&mut code);
        assert_eq!(verdict, Decode::Clean);
        assert_eq!(got, data);
    }
}
