//! Deterministic pseudo-random numbers for campaign trial derivation.
//!
//! The same splitmix64 generator as `ggpu-prop`'s test harness, kept
//! local so the campaign's determinism contract (`seed` ⇒ byte-identical
//! report) depends only on this crate. A dev-test cross-checks the two
//! implementations bit-for-bit.

/// splitmix64: tiny, fast, and statistically strong enough to scatter
/// injection sites; cryptographic quality is irrelevant here.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            // Avoid the all-zero orbit start without losing
            // determinism (same whitening as ggpu-prop).
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// A per-trial generator: mixes the campaign seed with the trial
    /// index so trial `i`'s stream is independent of how many trials
    /// ran before it (required for checkpoint/resume determinism).
    pub fn for_trial(seed: u64, trial: u64) -> Self {
        let mut r = Self::seeded(seed ^ trial.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Burn one output so adjacent trial seeds decorrelate.
        let _ = r.next_u64();
        r
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound` (`bound` > 0).
    pub fn u64_in(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is < 2^-32 for every bound used here (all far
        // below 2^32); irrelevant for fault sampling.
        self.next_u64() % bound
    }

    /// Uniform in `0..bound` (`bound` > 0).
    pub fn u32_in(&mut self, bound: u32) -> u32 {
        self.u64_in(u64::from(bound)) as u32
    }

    /// Uniform in `0..bound` (`bound` > 0).
    pub fn usize_in(&mut self, bound: usize) -> usize {
        self.u64_in(bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_prop_crate_stream() {
        let mut a = Rng::seeded(0xfeed_beef);
        let mut b = ggpu_prop::Rng::seeded(0xfeed_beef);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn trial_streams_differ() {
        let x = Rng::for_trial(7, 0).next_u64();
        let y = Rng::for_trial(7, 1).next_u64();
        assert_ne!(x, y);
        // And are reproducible.
        assert_eq!(Rng::for_trial(7, 0).next_u64(), x);
    }

    #[test]
    fn bounds_respected() {
        let mut r = Rng::seeded(1);
        for _ in 0..1000 {
            assert!(r.u64_in(7) < 7);
            assert!(r.u32_in(3) < 3);
            assert!(r.usize_in(10) < 10);
        }
    }
}
