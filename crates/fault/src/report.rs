//! Campaign and resilience reports with byte-stable JSON rendering.
//!
//! JSON is hand-rolled (the workspace is dependency-free) with fixed
//! field order and fixed-precision floats, so identical campaigns
//! serialize to identical bytes — the determinism contract tested in
//! `tests/campaign.rs`.

use crate::map::MacroMap;
use ggpu_tech::sram::EccScheme;
use std::fmt::Write as _;

use crate::campaign::Outcome;

/// Trial counts per classification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Architecturally/logically masked upsets.
    pub masked: u32,
    /// Silent data corruptions.
    pub sdc: u32,
    /// ECC-corrected, output correct.
    pub detected_corrected: u32,
    /// Detected-uncorrectable aborts.
    pub detected_uncorrectable: u32,
    /// Watchdog/cycle-limit hangs.
    pub hang: u32,
    /// Other typed simulator faults.
    pub crash: u32,
}

impl OutcomeCounts {
    /// Adds one trial.
    pub fn add(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Masked => self.masked += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::DetectedCorrected => self.detected_corrected += 1,
            Outcome::DetectedUncorrectable => self.detected_uncorrectable += 1,
            Outcome::Hang => self.hang += 1,
            Outcome::Crash => self.crash += 1,
        }
    }

    /// Total trials counted.
    pub fn total(&self) -> u32 {
        self.masked
            + self.sdc
            + self.detected_corrected
            + self.detected_uncorrectable
            + self.hang
            + self.crash
    }

    /// Architectural vulnerability factor: the fraction of upsets with
    /// a user-visible consequence (SDC, detected-uncorrectable abort,
    /// hang or crash). Corrected and masked upsets are benign.
    pub fn avf(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        f64::from(self.sdc + self.detected_uncorrectable + self.hang + self.crash)
            / f64::from(total)
    }

    fn json(&self) -> String {
        format!(
            "{{\"masked\": {}, \"sdc\": {}, \"detected_corrected\": {}, \"detected_uncorrectable\": {}, \"hang\": {}, \"crash\": {}}}",
            self.masked,
            self.sdc,
            self.detected_corrected,
            self.detected_uncorrectable,
            self.hang,
            self.crash
        )
    }
}

/// Per-macro campaign attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroAvf {
    /// Hierarchical macro instance path.
    pub path: String,
    /// Architectural role name.
    pub role: String,
    /// Protection scheme the policy assigned.
    pub scheme: EccScheme,
    /// Capacity-weighted share of all upsets (static exposure).
    pub exposure: f64,
    /// Trials attributed to this macro.
    pub counts: OutcomeCounts,
}

/// The full campaign result.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Kernel name.
    pub kernel: String,
    /// Grid size.
    pub n: u32,
    /// Master seed.
    pub seed: u64,
    /// Trials run.
    pub trials: u32,
    /// Machine size.
    pub compute_units: u32,
    /// Fault-free run length (the injection window).
    pub golden_cycles: u64,
    /// Outcome totals.
    pub counts: OutcomeCounts,
    /// Per-macro attribution, design-traversal order.
    pub macros: Vec<MacroAvf>,
}

impl CampaignReport {
    /// Overall architectural vulnerability factor.
    pub fn avf(&self) -> f64 {
        self.counts.avf()
    }

    /// Byte-stable JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"kernel\": \"{}\",", self.kernel);
        let _ = writeln!(out, "  \"n\": {},", self.n);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"trials\": {},", self.trials);
        let _ = writeln!(out, "  \"compute_units\": {},", self.compute_units);
        let _ = writeln!(out, "  \"golden_cycles\": {},", self.golden_cycles);
        let _ = writeln!(out, "  \"avf\": {:.6},", self.avf());
        let _ = writeln!(out, "  \"outcomes\": {},", self.counts.json());
        let _ = writeln!(out, "  \"macros\": [");
        for (i, m) in self.macros.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"path\": \"{}\", \"role\": \"{}\", \"ecc\": \"{}\", \"exposure\": {:.6}, \"injections\": {}, \"avf\": {:.6}, \"outcomes\": {}}}{}",
                m.path,
                m.role,
                m.scheme,
                m.exposure,
                m.counts.total(),
                m.counts.avf(),
                m.counts.json(),
                if i + 1 < self.macros.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// One macro's row in the static resilience report.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceRow {
    /// Hierarchical macro instance path.
    pub path: String,
    /// Architectural role name.
    pub role: String,
    /// Protection scheme.
    pub scheme: EccScheme,
    /// Words stored.
    pub words: u32,
    /// Data bits per word.
    pub data_bits: u32,
    /// Check bits per word under the scheme.
    pub check_bits: u32,
    /// Capacity-weighted exposure.
    pub exposure: f64,
}

impl ResilienceRow {
    /// Storage overhead of the check columns, percent of data bits.
    pub fn overhead_pct(&self) -> f64 {
        if self.data_bits == 0 {
            return 0.0;
        }
        100.0 * f64::from(self.check_bits) / f64::from(self.data_bits)
    }
}

/// Static (no-simulation) resilience summary of a design under an ECC
/// policy: what is protected, what each protection costs in stored
/// bits, and where the soft-error cross-section sits. The planner
/// attaches one per generated Table-I version.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Human-readable policy description.
    pub policy: String,
    /// Per-macro rows in design-traversal order.
    pub rows: Vec<ResilienceRow>,
}

impl ResilienceReport {
    /// Builds the report from a derived macro map.
    pub fn from_map(map: &MacroMap, policy: impl Into<String>) -> Self {
        let rows = map
            .sites()
            .iter()
            .enumerate()
            .map(|(i, s)| ResilienceRow {
                path: s.path.clone(),
                role: s.role.to_string(),
                scheme: s.scheme,
                words: s.words,
                data_bits: s.data_bits,
                check_bits: s.check_bits,
                exposure: map.exposure(i),
            })
            .collect();
        Self {
            policy: policy.into(),
            rows,
        }
    }

    /// Total data bits across all macros.
    pub fn data_bits_total(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| u64::from(r.words) * u64::from(r.data_bits))
            .sum()
    }

    /// Total stored bits (data + check) across all macros.
    pub fn stored_bits_total(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| u64::from(r.words) * u64::from(r.data_bits + r.check_bits))
            .sum()
    }

    /// Aggregate check-bit storage overhead, percent.
    pub fn overhead_pct(&self) -> f64 {
        let data = self.data_bits_total();
        if data == 0 {
            return 0.0;
        }
        100.0 * (self.stored_bits_total() - data) as f64 / data as f64
    }

    /// Fraction of stored bits residing in macros with *no* protection
    /// — the headline number lint code N008 gates on.
    pub fn unprotected_fraction(&self) -> f64 {
        let total = self.stored_bits_total();
        if total == 0 {
            return 0.0;
        }
        let unprot: u64 = self
            .rows
            .iter()
            .filter(|r| r.scheme == EccScheme::None)
            .map(|r| u64::from(r.words) * u64::from(r.data_bits + r.check_bits))
            .sum();
        unprot as f64 / total as f64
    }

    /// Byte-stable JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"policy\": \"{}\",", self.policy);
        let _ = writeln!(out, "  \"data_bits\": {},", self.data_bits_total());
        let _ = writeln!(out, "  \"stored_bits\": {},", self.stored_bits_total());
        let _ = writeln!(out, "  \"overhead_pct\": {:.4},", self.overhead_pct());
        let _ = writeln!(
            out,
            "  \"unprotected_fraction\": {:.6},",
            self.unprotected_fraction()
        );
        let _ = writeln!(out, "  \"macros\": [");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"path\": \"{}\", \"role\": \"{}\", \"ecc\": \"{}\", \"words\": {}, \"data_bits\": {}, \"check_bits\": {}, \"exposure\": {:.6}}}{}",
                r.path,
                r.role,
                r.scheme,
                r.words,
                r.data_bits,
                r.check_bits,
                r.exposure,
                if i + 1 < self.rows.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_avf() {
        let mut c = OutcomeCounts::default();
        for o in [
            Outcome::Masked,
            Outcome::Masked,
            Outcome::Sdc,
            Outcome::Hang,
            Outcome::DetectedCorrected,
            Outcome::DetectedUncorrectable,
        ] {
            c.add(o);
        }
        assert_eq!(c.total(), 6);
        assert!((c.avf() - 3.0 / 6.0).abs() < 1e-12);
        assert!(c.json().contains("\"sdc\": 1"));
    }

    #[test]
    fn empty_counts_avf_is_zero() {
        assert_eq!(OutcomeCounts::default().avf(), 0.0);
    }
}
