//! Working parity and extended-Hamming SEC-DED codecs.
//!
//! `ggpu-tech` prices the check-bit *overhead* (`EccScheme::check_bits`)
//! and `ggpu-simt` applies the behavioural *decision* (`Protection`);
//! this module is the actual code: encode a data word into a stored
//! codeword, flip bits, decode, and observe exactly the guarantees the
//! behavioural model assumes. The property suite proves, for every
//! word width the SRAM compiler accepts, that SEC-DED corrects 100 %
//! of single-bit upsets and detects 100 % of double-bit upsets — the
//! justification for the simulator's `Protection` decision table.
//!
//! Codeword layout (extended Hamming): index 0 holds the overall
//! parity bit; indices 1.. are the classic Hamming code, with check
//! bits at the power-of-two positions and data bits filling the rest.

use ggpu_tech::sram::secded_check_bits;

/// What the SEC-DED decoder concluded about a received codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decode {
    /// No error detected.
    Clean,
    /// A single-bit error was corrected (data or check bit).
    Corrected,
    /// A double-bit error was detected; the data is not trustworthy
    /// and no correction was attempted.
    Uncorrectable,
}

/// Encodes `data` (LSB-first bits) into an extended-Hamming codeword.
///
/// The result has `data.len() + secded_check_bits(k) + 1` bits,
/// matching `EccScheme::SecDed.check_bits(k)` exactly.
///
/// # Panics
///
/// Panics if `data` is empty (no SRAM word is zero bits wide).
pub fn secded_encode(data: &[bool]) -> Vec<bool> {
    assert!(!data.is_empty(), "cannot encode a zero-bit word");
    let k = data.len();
    let r = secded_check_bits(k as u32) as usize;
    let n = k + r; // Hamming positions 1..=n
    let mut code = vec![false; n + 1]; // index 0 = overall parity

    // Place data bits at non-power-of-two positions.
    let mut di = 0;
    for (pos, slot) in code.iter_mut().enumerate().skip(1) {
        if !pos.is_power_of_two() {
            *slot = data[di];
            di += 1;
        }
    }
    debug_assert_eq!(di, k);

    // Each check bit at position 2^j covers positions with bit j set.
    for j in 0..r {
        let mask = 1usize << j;
        let parity = code
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(pos, _)| pos & mask != 0 && !pos.is_power_of_two())
            .fold(false, |acc, (_, &b)| acc ^ b);
        code[mask] = parity;
    }

    // Overall parity over the whole Hamming codeword.
    code[0] = code[1..].iter().fold(false, |acc, &b| acc ^ b);
    code
}

/// Decodes an extended-Hamming codeword in place, correcting a
/// single-bit error if present, and returns the recovered data bits
/// together with the decoder's verdict.
///
/// On [`Decode::Uncorrectable`] the returned data is the raw
/// (uncorrected) payload — callers must treat it as poisoned.
///
/// # Panics
///
/// Panics if `code` is shorter than 4 bits (the smallest extended
/// Hamming codeword, k = 1).
pub fn secded_decode(code: &mut [bool]) -> (Vec<bool>, Decode) {
    assert!(code.len() >= 4, "codeword too short");
    let n = code.len() - 1;

    // Syndrome: XOR of the positions of set bits.
    let syndrome = code
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, &b)| b)
        .fold(0usize, |acc, (pos, _)| acc ^ pos);
    let overall: bool = code.iter().fold(false, |acc, &b| acc ^ b);

    let verdict = match (syndrome, overall) {
        (0, false) => Decode::Clean,
        (0, true) => {
            // The overall parity bit itself flipped.
            code[0] = !code[0];
            Decode::Corrected
        }
        (s, true) if s <= n => {
            code[s] = !code[s];
            Decode::Corrected
        }
        // syndrome != 0 with even overall parity: two flips. (A
        // syndrome beyond n with odd parity is also only explicable
        // by multiple flips; flag it rather than corrupt.)
        _ => Decode::Uncorrectable,
    };

    let mut data = Vec::with_capacity(n);
    for (pos, &b) in code.iter().enumerate().skip(1) {
        if !pos.is_power_of_two() {
            data.push(b);
        }
    }
    (data, verdict)
}

/// Encodes `data` with a trailing even-parity bit.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn parity_encode(data: &[bool]) -> Vec<bool> {
    assert!(!data.is_empty(), "cannot encode a zero-bit word");
    let mut code = data.to_vec();
    code.push(data.iter().fold(false, |acc, &b| acc ^ b));
    code
}

/// `true` when the parity codeword checks out (an even number of
/// flips — including zero — slipped through; an odd number is caught).
pub fn parity_ok(code: &[bool]) -> bool {
    !code.iter().fold(false, |acc, &b| acc ^ b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_tech::sram::EccScheme;

    fn word(k: usize, seed: u64) -> Vec<bool> {
        let mut r = crate::rng::Rng::seeded(seed);
        (0..k).map(|_| r.next_u64() & 1 == 1).collect()
    }

    #[test]
    fn codeword_width_matches_tech_pricing() {
        for k in [2usize, 8, 21, 32, 33, 64, 100, 128, 144] {
            let data = word(k, k as u64);
            let code = secded_encode(&data);
            assert_eq!(
                code.len(),
                k + EccScheme::SecDed.check_bits(k as u32) as usize,
                "width {k}"
            );
            let par = parity_encode(&data);
            assert_eq!(
                par.len(),
                k + EccScheme::Parity.check_bits(k as u32) as usize
            );
        }
    }

    #[test]
    fn clean_roundtrip() {
        for k in 2..=64usize {
            let data = word(k, 99 + k as u64);
            let mut code = secded_encode(&data);
            let (got, v) = secded_decode(&mut code);
            assert_eq!(v, Decode::Clean);
            assert_eq!(got, data);
            assert!(parity_ok(&parity_encode(&data)));
        }
    }

    #[test]
    fn miscorrection_exists_for_triple_flips() {
        // SEC-DED is only a *double*-error-detecting code: some triple
        // flips alias a single-bit syndrome and mis-correct. Find one,
        // confirming the simulator's `MisCorrected` arm is honest.
        let data = word(8, 3);
        let mut seen_miscorrect = false;
        let mut code0 = secded_encode(&data);
        let n = code0.len();
        'outer: for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let mut code = code0.clone();
                    code[a] = !code[a];
                    code[b] = !code[b];
                    code[c] = !code[c];
                    let (got, v) = secded_decode(&mut code);
                    if v == Decode::Corrected && got != data {
                        seen_miscorrect = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(seen_miscorrect, "no aliasing triple found");
        // Keep code0 alive to silence the unused-mut lint path.
        let _ = secded_decode(&mut code0);
    }
}
