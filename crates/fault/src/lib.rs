// Same panic audit as ggpu-simt: campaign code must never panic on a
// fault path — every fallible operation surfaces a typed error.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Resilience analysis for the G-GPU: seeded single-event-upset (SEU)
//! campaigns over the SIMT performance simulator.
//!
//! The mechanism — bit-flips at architectural [`ggpu_simt::FaultSite`]s
//! guarded by per-word [`ggpu_simt::Protection`] — lives in
//! `ggpu-simt::fault` and `Gpu::launch_hardened`. This crate is the
//! policy layer:
//!
//! * [`ecc`] — working parity and extended-Hamming SEC-DED codecs,
//!   property-tested to the guarantees the behavioural model assumes;
//! * [`map`] — injection-site derivation from the design's actual SRAM
//!   macro instances, capacity-weighted, so design-space-exploration
//!   transforms (memory division, ECC insertion) measurably move each
//!   macro's exposure;
//! * [`workload`] — the benchmark kernels as repeatable launches with
//!   golden outputs;
//! * [`campaign`] — the deterministic, parallel, checkpoint/resumable
//!   Monte-Carlo runner with the standard outcome taxonomy
//!   (masked / SDC / detected-corrected / detected-uncorrectable /
//!   hang / crash);
//! * [`report`] — per-macro AVF campaign reports and the static
//!   [`ResilienceReport`] the planner attaches to generated versions,
//!   both with byte-stable JSON.
//!
//! # Example
//!
//! ```
//! use ggpu_fault::{CampaignConfig, MacroMap, Workload};
//! use ggpu_netlist::EccPolicy;
//! use ggpu_rtl::{generate, GgpuConfig};
//! use ggpu_tech::sram::EccScheme;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate(&GgpuConfig::with_cus(1)?)?;
//! let map = MacroMap::from_design(&design, &EccPolicy::uniform(EccScheme::SecDed))?;
//! let copy = ggpu_kernels::bench::all()[1];
//! let workload = Workload::from_bench(&copy, 256)?;
//! let report = ggpu_fault::run_campaign(&workload, &map, &CampaignConfig::new(7, 8))?;
//! assert_eq!(report.counts.total(), 8);
//! # Ok(())
//! # }
//! ```

pub mod campaign;
pub mod ecc;
pub mod map;
pub mod report;
pub mod rng;
pub mod workload;

pub use campaign::{run_campaign, CampaignConfig, CampaignError, Outcome, TrialRecord};
pub use map::{Domain, Geometry, MacroMap, MacroSite, MapError};
pub use report::{CampaignReport, MacroAvf, OutcomeCounts, ResilienceReport, ResilienceRow};
pub use rng::Rng;
pub use workload::{Workload, WorkloadError};
