//! The unit of work a campaign perturbs: one kernel, one input size,
//! one golden output.
//!
//! Mirrors `ggpu_kernels::bench`'s run recipe exactly (memory layout,
//! parameter order, workgroup sizing) so a zero-injection campaign run
//! is bit-identical to the benchmark harness's own launches. Runs
//! execute on whatever [`SimtConfig::backend`] resolves to — the SoA
//! fast path by default — and every golden/trial comparison in this
//! module is backend-independent by the equivalence suite's
//! bit-identity guarantee.

use ggpu_kernels::bench::{Bench, Kind};
use ggpu_kernels::layout::{GPU_A, GPU_B, GPU_MEMORY_WORDS, GPU_OUT};
use ggpu_simt::{Gpu, Kernel, KernelVerifyError, Launch, RunStats, SimError, SimtConfig};

/// Errors preparing or golden-running a workload.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The kernel failed the static pre-flight verifier.
    Verify(KernelVerifyError),
    /// The grid size is invalid for this kernel (e.g. `mat_mul_local`
    /// requires full wavefronts).
    BadSize(String),
    /// The fault-free reference run itself faulted.
    Golden(SimError),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Verify(e) => write!(f, "kernel verification: {e}"),
            WorkloadError::BadSize(m) => write!(f, "bad grid size: {m}"),
            WorkloadError::Golden(e) => write!(f, "golden run: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A prepared, repeatable kernel launch with its golden output.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Kernel name (Table III row label).
    pub name: &'static str,
    /// Grid size.
    pub n: u32,
    kernel: Kernel,
    launch: Launch,
    a: Vec<u32>,
    b: Vec<u32>,
    golden: Vec<u32>,
}

impl Workload {
    /// Prepares `bench` at grid size `n`: verifies the kernel once and
    /// computes inputs and the golden output.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] on verifier rejection or an invalid
    /// grid size.
    pub fn from_bench(bench: &Bench, n: u32) -> Result<Self, WorkloadError> {
        if bench.kind == Kind::MatMulLocal && !n.is_multiple_of(64) {
            return Err(WorkloadError::BadSize(format!(
                "mat_mul_local requires full wavefronts (n % 64 == 0), got {n}"
            )));
        }
        let kernel = Kernel::from_asm_verified(bench.name, bench.gpu_asm())
            .map_err(WorkloadError::Verify)?;
        let (a, b) = bench.inputs(n);
        let golden = bench.golden(n);
        let wg = n.min(256);
        let launch = Launch::new(n, wg, vec![n, GPU_A, GPU_B, GPU_OUT, bench.extra(n)]);
        Ok(Self {
            name: bench.name,
            n,
            kernel,
            launch,
            a,
            b,
            golden,
        })
    }

    /// The golden (fault-free) output words at `GPU_OUT`.
    pub fn golden(&self) -> &[u32] {
        &self.golden
    }

    /// The verified kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The launch descriptor.
    pub fn launch(&self) -> &Launch {
        &self.launch
    }

    /// Global-memory words every run is given (the benchmark layout).
    pub fn memory_words(&self) -> usize {
        GPU_MEMORY_WORDS
    }

    /// A fresh machine with inputs staged — every trial starts from
    /// this identical state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the inputs do not fit the memory image
    /// (impossible for the shipped layouts, but surfaced rather than
    /// assumed).
    pub fn fresh_gpu(&self, config: SimtConfig) -> Result<Gpu, SimError> {
        let mut gpu = Gpu::new(config, GPU_MEMORY_WORDS);
        gpu.write_words(GPU_A, &self.a)?;
        if !self.b.is_empty() {
            gpu.write_words(GPU_B, &self.b)?;
        }
        Ok(gpu)
    }

    /// Runs the workload fault-free and returns its stats — the
    /// campaign's reference for cycles and for output comparison.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Golden`] if the reference run faults
    /// or produces output differing from the golden model (which would
    /// mean the simulator itself is broken).
    pub fn run_golden(&self, config: SimtConfig) -> Result<RunStats, WorkloadError> {
        let mut gpu = self.fresh_gpu(config).map_err(WorkloadError::Golden)?;
        let stats = gpu
            .launch(&self.kernel, &self.launch)
            .map_err(WorkloadError::Golden)?;
        let out = gpu
            .read_words(GPU_OUT, self.golden.len())
            .map_err(WorkloadError::Golden)?;
        if out != self.golden {
            return Err(WorkloadError::Golden(SimError::BadLaunch(
                "golden run diverged from reference model".into(),
            )));
        }
        Ok(stats)
    }

    /// Reads the output region of a finished run for comparison
    /// against [`Workload::golden`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the output region is out of range.
    pub fn read_output(&self, gpu: &Gpu) -> Result<Vec<u32>, SimError> {
        gpu.read_words(GPU_OUT, self.golden.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_kernels::bench;

    #[test]
    fn golden_run_matches_bench_harness() {
        let copy = bench::all()[1];
        let w = Workload::from_bench(&copy, 256).unwrap();
        let stats = w.run_golden(SimtConfig::with_cus(2)).unwrap();
        let harness = copy.run_gpu(256, 2).unwrap();
        assert_eq!(stats, harness);
    }

    #[test]
    fn mat_mul_local_rejects_partial_wavefronts() {
        let b = bench::mat_mul_local();
        assert!(matches!(
            Workload::from_bench(&b, 65),
            Err(WorkloadError::BadSize(_))
        ));
    }
}
