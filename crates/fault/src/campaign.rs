//! Monte-Carlo SEU campaigns: many independent single-fault trials,
//! classified into the standard resilience taxonomy.
//!
//! # Determinism contract
//!
//! Trial `i`'s injection is a pure function of `(seed, i)` and the
//! macro map ([`crate::rng::Rng::for_trial`]), and the simulator is
//! deterministic, so a campaign's report is **byte-identical** across
//! thread counts, checkpoint/resume splits and runs — the property
//! suite asserts this on the serialized JSON.
//!
//! # Checkpointing
//!
//! With [`CampaignConfig::checkpoint`] set, every finished trial
//! appends one text line to the checkpoint journal (a
//! [`ggpu_wal::Journal`], the shared write-ahead primitive). A rerun
//! parses the file (validating seed/kernel/trial-count in the
//! header), skips the recorded trials and completes the rest; the
//! final report is identical to an uninterrupted run. A process
//! killed mid-append leaves a torn final line, which the journal
//! truncates away on open — that trial simply re-runs — so resume
//! after `kill -9` at *any* byte is byte-identical to an
//! uninterrupted campaign (`tests/resume_prop.rs`).

use crate::map::{Geometry, MacroMap};
use crate::report::{CampaignReport, MacroAvf, OutcomeCounts};
use crate::rng::Rng;
use crate::workload::{Workload, WorkloadError};
use ggpu_simt::{FaultPlan, HardenedOptions, InjectionOutcome, SimError, SimtConfig};
use ggpu_wal::{Journal, WalError, WalOp};
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How one fault trial ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The run completed with correct output and no correction event:
    /// the upset was architecturally or logically masked (includes
    /// vacant sites and lucky mis-corrections).
    Masked,
    /// The run completed but the output differs from the golden
    /// reference: silent data corruption.
    Sdc,
    /// ECC corrected the upset and the output is correct.
    DetectedCorrected,
    /// Parity/SEC-DED flagged an uncorrectable word; the run aborted
    /// with a typed `SimError::UncorrectableFault`.
    DetectedUncorrectable,
    /// The watchdog (or the hard cycle ceiling) flagged a hung run.
    Hang,
    /// The simulator aborted with any other typed fault (bad PC,
    /// memory fault, scheduler stall...).
    Crash,
}

impl Outcome {
    /// Stable machine-readable name (checkpoint / JSON vocabulary).
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
            Outcome::DetectedCorrected => "detected-corrected",
            Outcome::DetectedUncorrectable => "detected-uncorrectable",
            Outcome::Hang => "hang",
            Outcome::Crash => "crash",
        }
    }

    /// Parses [`Outcome::as_str`] output.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "masked" => Outcome::Masked,
            "sdc" => Outcome::Sdc,
            "detected-corrected" => Outcome::DetectedCorrected,
            "detected-uncorrectable" => Outcome::DetectedUncorrectable,
            "hang" => Outcome::Hang,
            "crash" => Outcome::Crash,
            _ => return None,
        })
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finished trial, sufficient to rebuild its report contribution
/// without re-simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialRecord {
    /// Trial index in `0..trials`.
    pub trial: u32,
    /// Index into the macro map of the macro hit.
    pub macro_idx: u32,
    /// Injection cycle.
    pub cycle: u64,
    /// Classification.
    pub outcome: Outcome,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; together with the trial index it fully determines
    /// every injection.
    pub seed: u64,
    /// Number of independent single-fault trials.
    pub trials: u32,
    /// The simulated machine. The default configuration leaves
    /// [`SimtConfig::backend`] on `Auto`, which resolves to the SoA
    /// fast path — fault semantics are bit-identical across backends
    /// (the simt equivalence suite pins this, injection plans and
    /// watchdog included), so campaigns get the fast engine without
    /// any behavioural difference; set `GGPU_ACCEL=scalar` to force
    /// the reference engine when bisecting.
    pub sim: SimtConfig,
    /// Livelock watchdog for every trial (and hang classification).
    pub watchdog: ggpu_simt::WatchdogConfig,
    /// Worker threads; `0` picks the host parallelism.
    pub threads: usize,
    /// Optional checkpoint file for resumable campaigns.
    pub checkpoint: Option<PathBuf>,
}

impl CampaignConfig {
    /// A campaign with default machine, watchdog and threading.
    pub fn new(seed: u64, trials: u32) -> Self {
        Self {
            seed,
            trials,
            sim: SimtConfig::default(),
            watchdog: ggpu_simt::WatchdogConfig::default(),
            threads: 0,
            checkpoint: None,
        }
    }

    fn worker_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Campaign-level failures (per-trial simulator faults are *outcomes*,
/// not errors).
#[derive(Debug)]
pub enum CampaignError {
    /// Preparing or golden-running the workload failed.
    Workload(WorkloadError),
    /// A trial could not even be set up (memory staging failed).
    Setup(SimError),
    /// Checkpoint I/O failed; the error carries the offending path
    /// and the operation that failed ([`WalError`]).
    Io(WalError),
    /// The checkpoint file does not match this campaign.
    Checkpoint(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Workload(e) => write!(f, "workload: {e}"),
            CampaignError::Setup(e) => write!(f, "trial setup: {e}"),
            CampaignError::Io(e) => write!(f, "checkpoint io: {e}"),
            CampaignError::Checkpoint(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io(e) => Some(e),
            CampaignError::Workload(e) => Some(e),
            CampaignError::Setup(e) => Some(e),
            CampaignError::Checkpoint(_) => None,
        }
    }
}

impl From<WorkloadError> for CampaignError {
    fn from(e: WorkloadError) -> Self {
        CampaignError::Workload(e)
    }
}

impl From<WalError> for CampaignError {
    /// A journal-open failure whose header was complete but foreign is
    /// a campaign mismatch (caller error), not an I/O failure.
    fn from(e: WalError) -> Self {
        if e.op == WalOp::Open && e.source.kind() == std::io::ErrorKind::InvalidData {
            return CampaignError::Checkpoint(e.source.to_string());
        }
        CampaignError::Io(e)
    }
}

/// Shared worker output: finished-trial results plus the checkpoint
/// journal (behind one lock so checkpoint lines are whole).
type TrialSink = (Vec<Result<TrialRecord, CampaignError>>, Option<Journal>);

/// Runs (or resumes) a fault-injection campaign.
///
/// # Errors
///
/// Returns [`CampaignError`] on workload preparation failure,
/// checkpoint corruption or I/O failure. Simulator faults *inside*
/// trials are classified, never propagated.
pub fn run_campaign(
    workload: &Workload,
    map: &MacroMap,
    cfg: &CampaignConfig,
) -> Result<CampaignReport, CampaignError> {
    let golden = workload.run_golden(cfg.sim)?;
    // Injections target [1, cycles): cycle 0 precedes dispatch (every
    // CU-resident site is vacant) and the final cycle post-dates the
    // last read.
    let cycle_hi = golden.cycles.max(2);
    let geom = Geometry::new(cfg.sim, workload.memory_words());

    let mut done: BTreeMap<u32, TrialRecord> = BTreeMap::new();
    let journal = match &cfg.checkpoint {
        Some(path) => {
            let (journal, lines, _) = Journal::open(path, &checkpoint_header(cfg, workload))?;
            for (no, line) in lines.iter().enumerate() {
                let rec = parse_record(line, no, cfg)?;
                done.insert(rec.trial, rec);
            }
            // Campaign trials are re-runnable at no cost beyond the
            // re-simulation, so the journal trades the per-append
            // fsync for campaign throughput: `kill -9` still loses
            // nothing (the OS keeps buffered writes), only a whole-
            // machine power failure can drop the buffered tail — and
            // the dropped trials simply re-run.
            Some(journal.with_sync(false))
        }
        None => None,
    };

    let pending: Vec<u32> = (0..cfg.trials).filter(|t| !done.contains_key(t)).collect();
    let sink: Mutex<TrialSink> = Mutex::new((Vec::with_capacity(pending.len()), journal));
    let next = AtomicUsize::new(0);
    let workers = cfg.worker_threads().min(pending.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&trial) = pending.get(i) else { break };
                let res = run_trial(workload, map, cfg, &geom, cycle_hi, trial);
                let mut guard = sink.lock().unwrap_or_else(|e| e.into_inner());
                if let (Ok(rec), Some(journal)) = (&res, guard.1.as_mut()) {
                    // Checkpoint write failures degrade to an
                    // un-checkpointed campaign rather than losing the
                    // computed trial.
                    let _ = journal.append(&format!(
                        "t {} {} {} {}",
                        rec.trial, rec.macro_idx, rec.cycle, rec.outcome
                    ));
                }
                guard.0.push(res);
            });
        }
    });

    let (results, _) = sink.into_inner().unwrap_or_else(|e| e.into_inner());
    for res in results {
        let rec = res?;
        done.insert(rec.trial, rec);
    }

    let records: Vec<TrialRecord> = done.into_values().collect();
    Ok(build_report(workload, map, cfg, golden.cycles, &records))
}

/// Runs one seeded trial. Pure in `(seed, trial)` given the map and
/// geometry.
fn run_trial(
    workload: &Workload,
    map: &MacroMap,
    cfg: &CampaignConfig,
    geom: &Geometry,
    cycle_hi: u64,
    trial: u32,
) -> Result<TrialRecord, CampaignError> {
    let mut rng = Rng::for_trial(cfg.seed, u64::from(trial));
    let (macro_idx, injection) = map.sample_injection(&mut rng, geom, 1, cycle_hi);
    let cycle = injection.cycle;
    let mut gpu = workload.fresh_gpu(cfg.sim).map_err(CampaignError::Setup)?;
    let opts = HardenedOptions {
        plan: FaultPlan::new(vec![injection]),
        watchdog: Some(cfg.watchdog),
    };
    let outcome = match gpu.launch_hardened(workload.kernel(), workload.launch(), &opts) {
        Err(SimError::UncorrectableFault(_)) => Outcome::DetectedUncorrectable,
        Err(SimError::Watchdog { .. }) | Err(SimError::CycleLimit { .. }) => Outcome::Hang,
        Err(_) => Outcome::Crash,
        Ok(run) => match workload.read_output(&gpu) {
            Err(_) => Outcome::Crash,
            Ok(out) if out != workload.golden() => Outcome::Sdc,
            Ok(_) if run.log.count(InjectionOutcome::Corrected) > 0 => Outcome::DetectedCorrected,
            Ok(_) => Outcome::Masked,
        },
    };
    Ok(TrialRecord {
        trial,
        macro_idx: macro_idx as u32,
        cycle,
        outcome,
    })
}

fn checkpoint_header(cfg: &CampaignConfig, workload: &Workload) -> String {
    format!(
        "ggpu-fault-checkpoint v1 seed={} kernel={} n={} trials={}",
        cfg.seed, workload.name, workload.n, cfg.trials
    )
}

/// Parses one complete journal record line. Torn tails never reach
/// this point (the journal repairs them on open), so a line that does
/// not parse is genuine corruption and errors.
fn parse_record(line: &str, no: usize, cfg: &CampaignConfig) -> Result<TrialRecord, CampaignError> {
    let mut f = line.split_ascii_whitespace();
    let rec = (|| {
        if f.next()? != "t" {
            return None;
        }
        let trial: u32 = f.next()?.parse().ok()?;
        let macro_idx: u32 = f.next()?.parse().ok()?;
        let cycle: u64 = f.next()?.parse().ok()?;
        let outcome = Outcome::parse(f.next()?)?;
        Some(TrialRecord {
            trial,
            macro_idx,
            cycle,
            outcome,
        })
    })();
    match rec {
        Some(r) if r.trial < cfg.trials => Ok(r),
        Some(r) => Err(CampaignError::Checkpoint(format!(
            "trial {} out of range (campaign has {})",
            r.trial, cfg.trials
        ))),
        None => Err(CampaignError::Checkpoint(format!(
            "unparseable line {}: {line:?}",
            no + 2
        ))),
    }
}

fn build_report(
    workload: &Workload,
    map: &MacroMap,
    cfg: &CampaignConfig,
    golden_cycles: u64,
    records: &[TrialRecord],
) -> CampaignReport {
    let mut totals = OutcomeCounts::default();
    let mut per_macro: Vec<OutcomeCounts> = vec![OutcomeCounts::default(); map.sites().len()];
    for rec in records {
        totals.add(rec.outcome);
        if let Some(c) = per_macro.get_mut(rec.macro_idx as usize) {
            c.add(rec.outcome);
        }
    }
    let macros = map
        .sites()
        .iter()
        .zip(per_macro)
        .enumerate()
        .map(|(i, (site, counts))| MacroAvf {
            path: site.path.clone(),
            role: site.role.to_string(),
            scheme: site.scheme,
            exposure: map.exposure(i),
            counts,
        })
        .collect();
    CampaignReport {
        kernel: workload.name.to_string(),
        n: workload.n,
        seed: cfg.seed,
        trials: cfg.trials,
        compute_units: cfg.sim.compute_units,
        golden_cycles,
        counts: totals,
        macros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_names_round_trip() {
        for o in [
            Outcome::Masked,
            Outcome::Sdc,
            Outcome::DetectedCorrected,
            Outcome::DetectedUncorrectable,
            Outcome::Hang,
            Outcome::Crash,
        ] {
            assert_eq!(Outcome::parse(o.as_str()), Some(o));
        }
        assert_eq!(Outcome::parse("nope"), None);
    }

    #[test]
    fn io_error_carries_path_and_operation() {
        // Pointing the checkpoint at a directory fails at journal
        // open; the error must name the offending path and the file
        // operation, not a bare message.
        let dir = std::env::temp_dir().join(format!("ggpu_fault_io_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = Journal::open(&dir, "hdr").unwrap_err();
        let err = CampaignError::from(wal);
        match &err {
            CampaignError::Io(e) => {
                assert_eq!(e.path, dir);
                assert!(matches!(e.op, WalOp::Read | WalOp::Create));
            }
            other => panic!("expected Io, got {other:?}"),
        }
        let text = err.to_string();
        assert!(text.contains("checkpoint io"), "{text}");
        assert!(text.contains(&dir.display().to_string()), "{text}");
        // `source()` exposes the WalError for callers that downcast.
        assert!(std::error::Error::source(&err).is_some());
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn foreign_header_maps_to_checkpoint_mismatch() {
        let path = std::env::temp_dir().join(format!("ggpu_fault_foreign_{}", std::process::id()));
        std::fs::write(&path, "some other campaign\n").unwrap();
        let wal = Journal::open(&path, "ggpu-fault-checkpoint v1 seed=1").unwrap_err();
        assert!(matches!(
            CampaignError::from(wal),
            CampaignError::Checkpoint(_)
        ));
        let _ = std::fs::remove_file(&path);
    }
}
