//! Monte-Carlo SEU campaigns: many independent single-fault trials,
//! classified into the standard resilience taxonomy.
//!
//! # Determinism contract
//!
//! Trial `i`'s injection is a pure function of `(seed, i)` and the
//! macro map ([`crate::rng::Rng::for_trial`]), and the simulator is
//! deterministic, so a campaign's report is **byte-identical** across
//! thread counts, checkpoint/resume splits and runs — the property
//! suite asserts this on the serialized JSON.
//!
//! # Checkpointing
//!
//! With [`CampaignConfig::checkpoint`] set, every finished trial
//! appends one text line to the checkpoint file. A rerun parses the
//! file (validating seed/kernel/trial-count in the header), skips the
//! recorded trials and completes the rest; the final report is
//! identical to an uninterrupted run.

use crate::map::{Geometry, MacroMap};
use crate::report::{CampaignReport, MacroAvf, OutcomeCounts};
use crate::rng::Rng;
use crate::workload::{Workload, WorkloadError};
use ggpu_simt::{FaultPlan, HardenedOptions, InjectionOutcome, SimError, SimtConfig};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How one fault trial ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The run completed with correct output and no correction event:
    /// the upset was architecturally or logically masked (includes
    /// vacant sites and lucky mis-corrections).
    Masked,
    /// The run completed but the output differs from the golden
    /// reference: silent data corruption.
    Sdc,
    /// ECC corrected the upset and the output is correct.
    DetectedCorrected,
    /// Parity/SEC-DED flagged an uncorrectable word; the run aborted
    /// with a typed `SimError::UncorrectableFault`.
    DetectedUncorrectable,
    /// The watchdog (or the hard cycle ceiling) flagged a hung run.
    Hang,
    /// The simulator aborted with any other typed fault (bad PC,
    /// memory fault, scheduler stall...).
    Crash,
}

impl Outcome {
    /// Stable machine-readable name (checkpoint / JSON vocabulary).
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
            Outcome::DetectedCorrected => "detected-corrected",
            Outcome::DetectedUncorrectable => "detected-uncorrectable",
            Outcome::Hang => "hang",
            Outcome::Crash => "crash",
        }
    }

    /// Parses [`Outcome::as_str`] output.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "masked" => Outcome::Masked,
            "sdc" => Outcome::Sdc,
            "detected-corrected" => Outcome::DetectedCorrected,
            "detected-uncorrectable" => Outcome::DetectedUncorrectable,
            "hang" => Outcome::Hang,
            "crash" => Outcome::Crash,
            _ => return None,
        })
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finished trial, sufficient to rebuild its report contribution
/// without re-simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialRecord {
    /// Trial index in `0..trials`.
    pub trial: u32,
    /// Index into the macro map of the macro hit.
    pub macro_idx: u32,
    /// Injection cycle.
    pub cycle: u64,
    /// Classification.
    pub outcome: Outcome,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; together with the trial index it fully determines
    /// every injection.
    pub seed: u64,
    /// Number of independent single-fault trials.
    pub trials: u32,
    /// The simulated machine. The default configuration leaves
    /// [`SimtConfig::backend`] on `Auto`, which resolves to the SoA
    /// fast path — fault semantics are bit-identical across backends
    /// (the simt equivalence suite pins this, injection plans and
    /// watchdog included), so campaigns get the fast engine without
    /// any behavioural difference; set `GGPU_ACCEL=scalar` to force
    /// the reference engine when bisecting.
    pub sim: SimtConfig,
    /// Livelock watchdog for every trial (and hang classification).
    pub watchdog: ggpu_simt::WatchdogConfig,
    /// Worker threads; `0` picks the host parallelism.
    pub threads: usize,
    /// Optional checkpoint file for resumable campaigns.
    pub checkpoint: Option<PathBuf>,
}

impl CampaignConfig {
    /// A campaign with default machine, watchdog and threading.
    pub fn new(seed: u64, trials: u32) -> Self {
        Self {
            seed,
            trials,
            sim: SimtConfig::default(),
            watchdog: ggpu_simt::WatchdogConfig::default(),
            threads: 0,
            checkpoint: None,
        }
    }

    fn worker_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Campaign-level failures (per-trial simulator faults are *outcomes*,
/// not errors).
#[derive(Debug)]
pub enum CampaignError {
    /// Preparing or golden-running the workload failed.
    Workload(WorkloadError),
    /// A trial could not even be set up (memory staging failed).
    Setup(SimError),
    /// Checkpoint I/O failed.
    Io(String),
    /// The checkpoint file does not match this campaign.
    Checkpoint(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Workload(e) => write!(f, "workload: {e}"),
            CampaignError::Setup(e) => write!(f, "trial setup: {e}"),
            CampaignError::Io(m) => write!(f, "checkpoint io: {m}"),
            CampaignError::Checkpoint(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<WorkloadError> for CampaignError {
    fn from(e: WorkloadError) -> Self {
        CampaignError::Workload(e)
    }
}

/// Shared worker output: finished-trial results plus the checkpoint
/// file (behind one lock so checkpoint lines are whole).
type TrialSink = (
    Vec<Result<TrialRecord, CampaignError>>,
    Option<std::fs::File>,
);

/// Runs (or resumes) a fault-injection campaign.
///
/// # Errors
///
/// Returns [`CampaignError`] on workload preparation failure,
/// checkpoint corruption or I/O failure. Simulator faults *inside*
/// trials are classified, never propagated.
pub fn run_campaign(
    workload: &Workload,
    map: &MacroMap,
    cfg: &CampaignConfig,
) -> Result<CampaignReport, CampaignError> {
    let golden = workload.run_golden(cfg.sim)?;
    // Injections target [1, cycles): cycle 0 precedes dispatch (every
    // CU-resident site is vacant) and the final cycle post-dates the
    // last read.
    let cycle_hi = golden.cycles.max(2);
    let geom = Geometry::new(cfg.sim, workload.memory_words());

    let mut done: BTreeMap<u32, TrialRecord> = BTreeMap::new();
    if let Some(path) = &cfg.checkpoint {
        if path.exists() {
            for rec in parse_checkpoint(path, cfg, workload)? {
                done.insert(rec.trial, rec);
            }
        } else {
            let header = checkpoint_header(cfg, workload);
            std::fs::write(path, header).map_err(|e| CampaignError::Io(e.to_string()))?;
        }
    }

    let pending: Vec<u32> = (0..cfg.trials).filter(|t| !done.contains_key(t)).collect();
    let sink: Mutex<TrialSink> = {
        let file = match &cfg.checkpoint {
            Some(path) => Some(
                OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(|e| CampaignError::Io(e.to_string()))?,
            ),
            None => None,
        };
        Mutex::new((Vec::with_capacity(pending.len()), file))
    };
    let next = AtomicUsize::new(0);
    let workers = cfg.worker_threads().min(pending.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&trial) = pending.get(i) else { break };
                let res = run_trial(workload, map, cfg, &geom, cycle_hi, trial);
                let mut guard = sink.lock().unwrap_or_else(|e| e.into_inner());
                if let (Ok(rec), Some(file)) = (&res, guard.1.as_mut()) {
                    // Checkpoint write failures degrade to an
                    // un-checkpointed campaign rather than losing the
                    // computed trial.
                    let _ = writeln!(
                        file,
                        "t {} {} {} {}",
                        rec.trial, rec.macro_idx, rec.cycle, rec.outcome
                    );
                }
                guard.0.push(res);
            });
        }
    });

    let (results, _) = sink.into_inner().unwrap_or_else(|e| e.into_inner());
    for res in results {
        let rec = res?;
        done.insert(rec.trial, rec);
    }

    let records: Vec<TrialRecord> = done.into_values().collect();
    Ok(build_report(workload, map, cfg, golden.cycles, &records))
}

/// Runs one seeded trial. Pure in `(seed, trial)` given the map and
/// geometry.
fn run_trial(
    workload: &Workload,
    map: &MacroMap,
    cfg: &CampaignConfig,
    geom: &Geometry,
    cycle_hi: u64,
    trial: u32,
) -> Result<TrialRecord, CampaignError> {
    let mut rng = Rng::for_trial(cfg.seed, u64::from(trial));
    let (macro_idx, injection) = map.sample_injection(&mut rng, geom, 1, cycle_hi);
    let cycle = injection.cycle;
    let mut gpu = workload.fresh_gpu(cfg.sim).map_err(CampaignError::Setup)?;
    let opts = HardenedOptions {
        plan: FaultPlan::new(vec![injection]),
        watchdog: Some(cfg.watchdog),
    };
    let outcome = match gpu.launch_hardened(workload.kernel(), workload.launch(), &opts) {
        Err(SimError::UncorrectableFault(_)) => Outcome::DetectedUncorrectable,
        Err(SimError::Watchdog { .. }) | Err(SimError::CycleLimit { .. }) => Outcome::Hang,
        Err(_) => Outcome::Crash,
        Ok(run) => match workload.read_output(&gpu) {
            Err(_) => Outcome::Crash,
            Ok(out) if out != workload.golden() => Outcome::Sdc,
            Ok(_) if run.log.count(InjectionOutcome::Corrected) > 0 => Outcome::DetectedCorrected,
            Ok(_) => Outcome::Masked,
        },
    };
    Ok(TrialRecord {
        trial,
        macro_idx: macro_idx as u32,
        cycle,
        outcome,
    })
}

fn checkpoint_header(cfg: &CampaignConfig, workload: &Workload) -> String {
    format!(
        "ggpu-fault-checkpoint v1 seed={} kernel={} n={} trials={}\n",
        cfg.seed, workload.name, workload.n, cfg.trials
    )
}

fn parse_checkpoint(
    path: &std::path::Path,
    cfg: &CampaignConfig,
    workload: &Workload,
) -> Result<Vec<TrialRecord>, CampaignError> {
    let text = std::fs::read_to_string(path).map_err(|e| CampaignError::Io(e.to_string()))?;
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    let expected = checkpoint_header(cfg, workload);
    if header != expected.trim_end() {
        return Err(CampaignError::Checkpoint(format!(
            "header {header:?} does not match campaign {:?}",
            expected.trim_end()
        )));
    }
    let mut out = Vec::new();
    for (no, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut f = line.split_ascii_whitespace();
        let rec = (|| {
            if f.next()? != "t" {
                return None;
            }
            let trial: u32 = f.next()?.parse().ok()?;
            let macro_idx: u32 = f.next()?.parse().ok()?;
            let cycle: u64 = f.next()?.parse().ok()?;
            let outcome = Outcome::parse(f.next()?)?;
            Some(TrialRecord {
                trial,
                macro_idx,
                cycle,
                outcome,
            })
        })();
        match rec {
            Some(r) if r.trial < cfg.trials => out.push(r),
            Some(r) => {
                return Err(CampaignError::Checkpoint(format!(
                    "trial {} out of range (campaign has {})",
                    r.trial, cfg.trials
                )))
            }
            None => {
                return Err(CampaignError::Checkpoint(format!(
                    "unparseable line {}: {line:?}",
                    no + 2
                )))
            }
        }
    }
    Ok(out)
}

fn build_report(
    workload: &Workload,
    map: &MacroMap,
    cfg: &CampaignConfig,
    golden_cycles: u64,
    records: &[TrialRecord],
) -> CampaignReport {
    let mut totals = OutcomeCounts::default();
    let mut per_macro: Vec<OutcomeCounts> = vec![OutcomeCounts::default(); map.sites().len()];
    for rec in records {
        totals.add(rec.outcome);
        if let Some(c) = per_macro.get_mut(rec.macro_idx as usize) {
            c.add(rec.outcome);
        }
    }
    let macros = map
        .sites()
        .iter()
        .zip(per_macro)
        .enumerate()
        .map(|(i, (site, counts))| MacroAvf {
            path: site.path.clone(),
            role: site.role.to_string(),
            scheme: site.scheme,
            exposure: map.exposure(i),
            counts,
        })
        .collect();
    CampaignReport {
        kernel: workload.name.to_string(),
        n: workload.n,
        seed: cfg.seed,
        trials: cfg.trials,
        compute_units: cfg.sim.compute_units,
        golden_cycles,
        counts: totals,
        macros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_names_round_trip() {
        for o in [
            Outcome::Masked,
            Outcome::Sdc,
            Outcome::DetectedCorrected,
            Outcome::DetectedUncorrectable,
            Outcome::Hang,
            Outcome::Crash,
        ] {
            assert_eq!(Outcome::parse(o.as_str()), Some(o));
        }
        assert_eq!(Outcome::parse("nope"), None);
    }
}
