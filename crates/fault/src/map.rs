//! Injection-site derivation from the design's actual SRAM macro map.
//!
//! This is what ties the resilience campaign to the *generated
//! hardware* rather than to an abstract machine: sites are drawn from
//! the netlist's macro instances (every hierarchical instance path is
//! a separate entry), weighted by each macro's stored capacity in
//! bits. Dividing a macro during design-space exploration therefore
//! measurably changes that macro's exposure — each division part holds
//! half the bits, so it soaks up half the upsets — and adding ECC
//! widens the stored word, adding check-bit columns that absorb a
//! proportional share of hits.

use crate::rng::Rng;
use ggpu_netlist::{Design, EccPolicy, MacroInst, MemoryRole};
use ggpu_simt::{FaultSite, Injection, Protection, SimtConfig, LOCAL_WORDS};
use ggpu_tech::sram::EccScheme;
use std::fmt;

/// Which simulator state a macro's upsets land in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Register-file banks → [`FaultSite::Register`].
    Register,
    /// LRAM scratchpads → [`FaultSite::LocalWord`].
    Local,
    /// Cache / runtime / FIFO storage → [`FaultSite::GlobalWord`]
    /// (the cache is write-back over global memory, so a data-array
    /// upset is architecturally a global-word upset).
    Global,
    /// Instruction storage → [`FaultSite::Pc`] (a CRAM upset
    /// manifests as a corrupted fetch address/stream).
    Pc,
    /// Scheduler bookkeeping → [`FaultSite::ExecMask`].
    ExecMask,
}

impl Domain {
    /// The architectural role's domain.
    pub fn of_role(role: MemoryRole) -> Self {
        match role {
            MemoryRole::RegisterFile => Domain::Register,
            MemoryRole::ScratchRam => Domain::Local,
            MemoryRole::InstructionRam => Domain::Pc,
            MemoryRole::SchedulerState => Domain::ExecMask,
            MemoryRole::CacheData
            | MemoryRole::CacheTag
            | MemoryRole::RuntimeMemory
            | MemoryRole::Fifo => Domain::Global,
            // `MemoryRole` is non-exhaustive; anything future lands in
            // the broadest domain.
            _ => Domain::Global,
        }
    }

    /// Short name matching `FaultSite::domain` vocabulary.
    pub fn as_str(self) -> &'static str {
        match self {
            Domain::Register => "register",
            Domain::Local => "lram",
            Domain::Global => "global",
            Domain::Pc => "pc",
            Domain::ExecMask => "exec-mask",
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One SRAM macro instance as an upset target.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroSite {
    /// Hierarchical instance path (design traversal order).
    pub path: String,
    /// Architectural role.
    pub role: MemoryRole,
    /// Protection scheme the policy assigns this macro.
    pub scheme: EccScheme,
    /// Simulator domain its upsets land in.
    pub domain: Domain,
    /// Words stored.
    pub words: u32,
    /// Data bits per word (the unprotected width).
    pub data_bits: u32,
    /// Check bits per word under `scheme`.
    pub check_bits: u32,
}

impl MacroSite {
    /// Total stored bits including check columns — the soft-error
    /// cross-section weight.
    pub fn capacity_bits(&self) -> u64 {
        u64::from(self.words) * u64::from(self.data_bits + self.check_bits)
    }

    /// The simulator-side protection decision model for this scheme.
    pub fn protection(&self) -> Protection {
        match self.scheme {
            EccScheme::None => Protection::None,
            EccScheme::Parity => Protection::Parity,
            EccScheme::SecDed => Protection::SecDed,
        }
    }
}

/// Building a map failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The design instantiates no memory macros — nothing to upset.
    NoMacros,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::NoMacros => f.write_str("design has no memory macros"),
        }
    }
}

impl std::error::Error for MapError {}

/// The capacity-weighted macro map a campaign samples from.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroMap {
    sites: Vec<MacroSite>,
    /// Exclusive prefix sums of `capacity_bits` (cum[i] = bits before
    /// site i); one extra entry holding the total.
    cum: Vec<u64>,
}

impl MacroMap {
    /// Derives the map from a design's macro instances under `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::NoMacros`] for a macro-free design.
    pub fn from_design(design: &Design, policy: &EccPolicy) -> Result<Self, MapError> {
        let sites: Vec<MacroSite> = design
            .all_macros()
            .map(|(path, m): (String, &MacroInst)| {
                let scheme = policy.scheme_for(m.role);
                MacroSite {
                    path,
                    role: m.role,
                    scheme,
                    domain: Domain::of_role(m.role),
                    words: m.config.words,
                    data_bits: m.config.bits,
                    check_bits: scheme.check_bits(m.config.bits),
                }
            })
            .collect();
        if sites.is_empty() {
            return Err(MapError::NoMacros);
        }
        let mut cum = Vec::with_capacity(sites.len() + 1);
        let mut total = 0u64;
        for s in &sites {
            cum.push(total);
            total += s.capacity_bits().max(1);
        }
        cum.push(total);
        Ok(Self { sites, cum })
    }

    /// The macro sites in design-traversal order.
    pub fn sites(&self) -> &[MacroSite] {
        &self.sites
    }

    /// Total stored bits across all macros (including check columns).
    pub fn total_bits(&self) -> u64 {
        *self.cum.last().unwrap_or(&0)
    }

    /// The fraction of all stored bits held by site `idx` — its
    /// soft-error exposure. Dividing a macro halves each part's
    /// exposure; adding ECC raises it slightly (more stored bits).
    pub fn exposure(&self, idx: usize) -> f64 {
        if idx >= self.sites.len() || self.total_bits() == 0 {
            return 0.0;
        }
        (self.cum[idx + 1] - self.cum[idx]) as f64 / self.total_bits() as f64
    }

    /// Summed exposure of every site whose path contains `needle` —
    /// handy for "all parts of rf_bank" queries across divisions.
    pub fn exposure_of(&self, needle: &str) -> f64 {
        self.sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.path.contains(needle))
            .map(|(i, _)| self.exposure(i))
            .sum()
    }

    /// Samples a macro index, capacity-weighted.
    pub fn sample_site(&self, rng: &mut Rng) -> usize {
        let total = self.total_bits();
        if total == 0 {
            return 0;
        }
        let r = rng.u64_in(total);
        // cum is monotone; partition_point finds the owning interval.
        self.cum.partition_point(|&c| c <= r).saturating_sub(1)
    }

    /// Samples one single-event upset: a macro (capacity-weighted), a
    /// stored bit within it (uniform), a live coordinate for its
    /// domain and a cycle uniform in `[cycle_lo, cycle_hi)`.
    ///
    /// A hit on a *check-bit column* (probability `check/(data+check)`
    /// per macro) perturbs no architectural word but still exercises
    /// the protection decision — represented as an empty `flips` list
    /// with `codeword_flips = 1`.
    ///
    /// Returns the sampled macro index alongside the injection so the
    /// campaign can attribute the trial.
    pub fn sample_injection(
        &self,
        rng: &mut Rng,
        geom: &Geometry,
        cycle_lo: u64,
        cycle_hi: u64,
    ) -> (usize, Injection) {
        let idx = self.sample_site(rng);
        let site_desc = &self.sites[idx.min(self.sites.len() - 1)];
        let cycle = if cycle_hi > cycle_lo {
            cycle_lo + rng.u64_in(cycle_hi - cycle_lo)
        } else {
            cycle_lo
        };
        let c = &geom.config;
        let cu = rng.u32_in(c.compute_units.max(1));
        let slot = rng.u32_in(c.max_wavefronts_per_cu.max(1));
        let lane = rng.u32_in(c.wavefront_size.max(1));
        let site = match site_desc.domain {
            Domain::Register => FaultSite::Register {
                cu,
                slot,
                lane,
                reg: rng.u32_in(32) as u8,
            },
            Domain::Local => FaultSite::LocalWord {
                cu,
                word: rng.u32_in(geom.local_words.max(1)),
            },
            Domain::Global => FaultSite::GlobalWord {
                word: rng.u32_in(geom.memory_words.max(1)),
            },
            Domain::Pc => FaultSite::Pc { cu, slot, lane },
            Domain::ExecMask => FaultSite::ExecMask { cu, slot, lane },
        };
        let stored = site_desc.data_bits + site_desc.check_bits;
        let col = rng.u32_in(stored.max(1));
        let flips = if col < site_desc.data_bits {
            // Architectural bit: map the data column onto the 32-bit
            // simulator word.
            vec![(col % 32) as u8]
        } else {
            // Check-bit column: no architectural change.
            Vec::new()
        };
        let injection = Injection {
            cycle,
            site,
            flips,
            codeword_flips: 1,
            protection: site_desc.protection(),
            label: site_desc.path.clone(),
        };
        (idx, injection)
    }
}

/// Machine geometry the sampler needs beyond the netlist.
#[derive(Debug, Clone, Copy)]
pub struct Geometry {
    /// The simulated machine.
    pub config: SimtConfig,
    /// Global-memory words of the run.
    pub memory_words: u32,
    /// LRAM words per CU.
    pub local_words: u32,
}

impl Geometry {
    /// Geometry for `config` with `memory_words` of global memory and
    /// the simulator's fixed LRAM size.
    pub fn new(config: SimtConfig, memory_words: usize) -> Self {
        Self {
            config,
            memory_words: u32::try_from(memory_words).unwrap_or(u32::MAX),
            local_words: LOCAL_WORDS as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_netlist::module::Module;
    use ggpu_netlist::CellGroup;
    use ggpu_tech::sram::SramConfig;
    use ggpu_tech::stdcell::CellClass;

    fn two_macro_design() -> Design {
        let mut d = Design::new("t");
        let m = Module::new("top")
            .with_group(CellGroup::new("g", CellClass::Inv, 1, 0.1))
            .with_macro(MacroInst::new(
                "rf",
                SramConfig::dual(512, 32),
                MemoryRole::RegisterFile,
                0.5,
            ))
            .with_macro(MacroInst::new(
                "lram",
                SramConfig::single(4096, 32),
                MemoryRole::ScratchRam,
                0.5,
            ));
        let id = d.add_module(m);
        d.set_top(id);
        d
    }

    #[test]
    fn exposure_is_capacity_weighted() {
        let d = two_macro_design();
        let map = MacroMap::from_design(&d, &EccPolicy::unprotected()).unwrap();
        assert_eq!(map.sites().len(), 2);
        let rf = 512u64 * 32;
        let lram = 4096u64 * 32;
        let total = (rf + lram) as f64;
        assert!((map.exposure(0) - rf as f64 / total).abs() < 1e-12);
        assert!((map.exposure_of("lram") - lram as f64 / total).abs() < 1e-12);
    }

    #[test]
    fn ecc_widens_exposure_denominator() {
        let d = two_macro_design();
        let plain = MacroMap::from_design(&d, &EccPolicy::unprotected()).unwrap();
        let prot = MacroMap::from_design(&d, &EccPolicy::uniform(EccScheme::SecDed)).unwrap();
        assert!(prot.total_bits() > plain.total_bits());
        // 32-bit words gain 7 check bits.
        assert_eq!(prot.sites()[0].check_bits, 7);
    }

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let d = two_macro_design();
        let map = MacroMap::from_design(&d, &EccPolicy::uniform(EccScheme::Parity)).unwrap();
        let geom = Geometry::new(SimtConfig::with_cus(2), 1 << 16);
        let mut a = Rng::seeded(5);
        let mut b = Rng::seeded(5);
        for _ in 0..200 {
            let (ia, inj_a) = map.sample_injection(&mut a, &geom, 1, 1000);
            let (ib, inj_b) = map.sample_injection(&mut b, &geom, 1, 1000);
            assert_eq!(ia, ib);
            assert_eq!(inj_a, inj_b);
            assert!(ia < map.sites().len());
            assert!((1..1000).contains(&inj_a.cycle));
            assert_eq!(inj_a.protection, Protection::Parity);
        }
    }

    #[test]
    fn empty_design_is_an_error() {
        let mut d = Design::new("e");
        let id = d.add_module(Module::new("m"));
        d.set_top(id);
        assert_eq!(
            MacroMap::from_design(&d, &EccPolicy::unprotected()),
            Err(MapError::NoMacros)
        );
    }

    #[test]
    fn domain_mapping_covers_roles() {
        assert_eq!(Domain::of_role(MemoryRole::RegisterFile), Domain::Register);
        assert_eq!(Domain::of_role(MemoryRole::ScratchRam), Domain::Local);
        assert_eq!(Domain::of_role(MemoryRole::CacheData), Domain::Global);
        assert_eq!(Domain::of_role(MemoryRole::CacheTag), Domain::Global);
        assert_eq!(Domain::of_role(MemoryRole::InstructionRam), Domain::Pc);
        assert_eq!(
            Domain::of_role(MemoryRole::SchedulerState),
            Domain::ExecMask
        );
        assert_eq!(Domain::Register.to_string(), "register");
    }
}
