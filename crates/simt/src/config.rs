//! Simulator configuration: machine geometry and timing parameters.

/// Which execution backend ([`crate::Accelerator`]) runs a launch.
///
/// Every backend simulates the identical architecture — outputs,
/// [`crate::RunStats`], memory image and fault semantics are
/// bit-identical — so this knob only trades host speed for engine
/// simplicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccelBackend {
    /// Pick automatically: the `GGPU_ACCEL` environment variable
    /// (`"scalar"` / `"soa"`) if set, otherwise the SoA fast path
    /// where the geometry allows it (`wavefront_size <= 64`), with a
    /// silent scalar fallback where it does not.
    #[default]
    Auto,
    /// The retained per-lane scalar reference engine (the oracle).
    Scalar,
    /// The data-oriented structure-of-arrays fast path. Explicitly
    /// selecting it on `wavefront_size > 64` fails the launch with
    /// [`crate::SimError::BadConfig`] instead of silently demoting.
    Soa,
}

/// How the local scratchpad (LRAM) serves a wavefront beat's lanes.
///
/// Mirrors the netlist side: `Banked { banks }` models the
/// word-interleaved banks a `BankMemory` transform creates (word `w`
/// lives in bank `w % banks`); lanes of one beat that touch *distinct
/// words* of the same bank serialize, costing extra beats, while
/// lanes reading the same word broadcast for free. `Ideal` is the
/// legacy infinite-port model — zero conflict cost, bit-identical
/// cycle counts to every pre-banking datasheet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LramModel {
    /// Every lane is served in its scheduled beat (legacy timing).
    #[default]
    Ideal,
    /// Word-interleaved banks with per-beat conflict serialization.
    Banked {
        /// Number of banks (≥ 1).
        banks: u32,
    },
}

impl LramModel {
    /// The bank count the conflict model arbitrates over (`None` for
    /// the ideal model).
    pub fn banks(&self) -> Option<u32> {
        match self {
            LramModel::Ideal => None,
            LramModel::Banked { banks } => Some(*banks),
        }
    }
}

/// Shared data-cache parameters (direct-mapped, write-back,
/// write-allocate, banked — the FGPU's central multi-port cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in KiB.
    pub size_kib: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Independently-ported banks (line index modulo banks).
    pub banks: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            size_kib: 32,
            line_bytes: 64,
            banks: 4,
            hit_latency: 6,
        }
    }
}

impl CacheConfig {
    /// Number of cache lines.
    pub fn lines(&self) -> u32 {
        self.size_kib * 1024 / self.line_bytes
    }
}

/// External-memory parameters (the AXI data interfaces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of parallel AXI data interfaces (paper: up to 4).
    pub interfaces: u32,
    /// Fixed access latency in cycles.
    pub latency: u32,
    /// Transfer bandwidth per interface, bytes per cycle.
    pub bytes_per_cycle: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            interfaces: 4,
            latency: 60,
            bytes_per_cycle: 4,
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimtConfig {
    /// Number of compute units.
    pub compute_units: u32,
    /// Processing elements per CU (FGPU: 8).
    pub pes_per_cu: u32,
    /// Work-items per wavefront (FGPU: 64).
    pub wavefront_size: u32,
    /// Resident wavefronts per CU (FGPU: 8, i.e. 512 work-items).
    pub max_wavefronts_per_cu: u32,
    /// Shared data cache.
    pub cache: CacheConfig,
    /// External memory.
    pub dram: DramConfig,
    /// Simple-ALU result latency (deep FGPU pipeline).
    pub alu_latency: u32,
    /// Multiplier latency.
    pub mul_latency: u32,
    /// Divider latency.
    pub div_latency: u32,
    /// Cycles of CU occupancy per *lane* of a divide/remainder: the
    /// FGPU's iterative divider is shared, so a wavefront's divides
    /// serialize lane by lane (this is why the paper's div_int kernel
    /// only reaches a 1.2x speed-up over the RISC-V).
    pub div_serial: u32,
    /// Local scratch (LRAM) access latency.
    pub local_latency: u32,
    /// Local scratch arbitration model (bank-conflict timing).
    pub lram: LramModel,
    /// Hard cycle ceiling; exceeded means a runaway kernel.
    pub max_cycles: u64,
    /// Execution backend (host-side engine choice; architecturally
    /// invisible).
    pub backend: AccelBackend,
}

impl SimtConfig {
    /// The paper's machine with the given CU count.
    ///
    /// # Panics
    ///
    /// Panics if `compute_units` is zero.
    pub fn with_cus(compute_units: u32) -> Self {
        assert!(compute_units > 0, "need at least one compute unit");
        Self {
            compute_units,
            ..Self::default()
        }
    }

    /// The same machine with an explicit execution backend.
    pub fn with_backend(mut self, backend: AccelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The same machine with an explicit LRAM arbitration model.
    pub fn with_lram(mut self, lram: LramModel) -> Self {
        self.lram = lram;
        self
    }

    /// Wavefronts needed for one full workgroup.
    pub fn wavefronts_per_group(&self, workgroup_size: u32) -> u32 {
        workgroup_size.div_ceil(self.wavefront_size)
    }

    /// Checks the geometry for structural validity. All fields are
    /// public, so a hand-built configuration can contain zero-sized
    /// extents that would divide by zero inside the memory system;
    /// the simulator rejects those with a typed error at launch
    /// instead of panicking mid-run.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.compute_units == 0 {
            return Err("zero compute units".into());
        }
        if self.pes_per_cu == 0 {
            return Err("zero processing elements per CU".into());
        }
        if self.wavefront_size == 0 {
            return Err("zero wavefront size".into());
        }
        if self.max_wavefronts_per_cu == 0 {
            return Err("zero resident wavefronts per CU".into());
        }
        if self.cache.line_bytes == 0 {
            return Err("zero cache line size".into());
        }
        if self.cache.lines() == 0 {
            return Err(format!(
                "cache of {} KiB holds no {}-byte lines",
                self.cache.size_kib, self.cache.line_bytes
            ));
        }
        if self.cache.banks == 0 {
            return Err("zero cache banks".into());
        }
        if self.dram.interfaces == 0 {
            return Err("zero DRAM interfaces".into());
        }
        if self.dram.bytes_per_cycle == 0 {
            return Err("zero DRAM bytes per cycle".into());
        }
        if self.lram.banks() == Some(0) {
            return Err("zero LRAM banks".into());
        }
        Ok(())
    }
}

impl Default for SimtConfig {
    fn default() -> Self {
        Self {
            compute_units: 1,
            pes_per_cu: 8,
            wavefront_size: 64,
            max_wavefronts_per_cu: 8,
            cache: CacheConfig::default(),
            dram: DramConfig::default(),
            alu_latency: 4,
            mul_latency: 6,
            div_latency: 18,
            div_serial: 36,
            local_latency: 3,
            lram: LramModel::default(),
            max_cycles: 400_000_000,
            backend: AccelBackend::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_fgpu() {
        let c = SimtConfig::default();
        assert_eq!(c.pes_per_cu, 8);
        assert_eq!(c.wavefront_size, 64);
        assert_eq!(c.max_wavefronts_per_cu * c.wavefront_size, 512);
        assert_eq!(c.dram.interfaces, 4);
    }

    #[test]
    fn cache_line_count() {
        assert_eq!(CacheConfig::default().lines(), 512);
    }

    #[test]
    fn wavefronts_per_group_rounds_up() {
        let c = SimtConfig::default();
        assert_eq!(c.wavefronts_per_group(512), 8);
        assert_eq!(c.wavefronts_per_group(65), 2);
        assert_eq!(c.wavefronts_per_group(1), 1);
    }

    #[test]
    #[should_panic(expected = "at least one compute unit")]
    fn zero_cus_panics() {
        let _ = SimtConfig::with_cus(0);
    }

    #[test]
    fn validate_catches_zero_extents() {
        assert!(SimtConfig::default().validate().is_ok());
        type Mutator = fn(&mut SimtConfig);
        let cases: Vec<(Mutator, &str)> = vec![
            (|c| c.compute_units = 0, "compute units"),
            (|c| c.pes_per_cu = 0, "processing elements"),
            (|c| c.wavefront_size = 0, "wavefront size"),
            (|c| c.max_wavefronts_per_cu = 0, "resident wavefronts"),
            (|c| c.cache.line_bytes = 0, "line size"),
            (|c| c.cache.size_kib = 0, "holds no"),
            (|c| c.cache.banks = 0, "cache banks"),
            (|c| c.dram.interfaces = 0, "DRAM interfaces"),
            (|c| c.dram.bytes_per_cycle = 0, "bytes per cycle"),
            (|c| c.lram = LramModel::Banked { banks: 0 }, "LRAM banks"),
        ];
        for (mutate, needle) in cases {
            let mut c = SimtConfig::default();
            mutate(&mut c);
            let err = c.validate().expect_err(needle);
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }
}
