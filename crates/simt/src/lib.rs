// Panic audit (robustness subsystem): non-test library code must not
// use `unwrap`/`expect` — every fallible path surfaces a typed
// `SimError`. Test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Cycle-level performance simulator of the G-GPU's SIMT execution.
//!
//! [`Gpu::launch`] runs an assembled [`Kernel`] over a work-item grid
//! and returns cycle-accurate-class [`RunStats`]: CU issue beats,
//! wavefront scheduling, multi-PC divergence, a shared banked
//! direct-mapped write-back cache and AXI bandwidth contention. This
//! is the substrate for the paper's Table III / Fig. 5 / Fig. 6
//! benchmark comparison.
//!
//! # Example
//!
//! ```
//! use ggpu_simt::{Gpu, Kernel, Launch, SimtConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut gpu = Gpu::new(SimtConfig::with_cus(2), 1 << 16);
//! gpu.write_words(0x100, &[41])?;
//! let kernel = Kernel::from_asm(
//!     "incr",
//!     "param r1, 0\nlw r2, r1, 0\naddi r2, r2, 1\nsw r1, r2, 4\nret",
//! )?;
//! let stats = gpu.launch(&kernel, &Launch::new(1, 1, vec![0x100]))?;
//! assert_eq!(gpu.read_words(0x104, 1)?[0], 42);
//! assert!(stats.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod accel;
pub mod config;
mod engine;
pub mod fault;
pub mod gpu;
pub mod memsys;
mod soa;
pub mod trace;

pub use accel::{Accelerator, LaunchRequest, ScalarAccelerator, SoaAccelerator};
pub use config::{AccelBackend, CacheConfig, DramConfig, LramModel, SimtConfig};
pub use fault::{
    FaultEvent, FaultLog, FaultPlan, FaultReport, FaultSite, HardenedOptions, HardenedRun,
    Injection, InjectionOutcome, Protection, WatchdogConfig,
};
pub use gpu::{Gpu, Kernel, KernelVerifyError, Launch, RunStats, SimError, LOCAL_WORDS};
pub use memsys::MemStats;
pub use trace::{ExecTrace, InstTrace};
