//! The pluggable execution-backend boundary of the SIMT simulator.
//!
//! [`Accelerator`] abstracts *how* a launch is executed — which wave
//! engine runs the lane loops — while the architectural contract
//! (outputs, [`RunStats`], memory image, fault semantics) is fixed:
//! every backend must be bit-identical. Two backends ship:
//!
//! * [`ScalarAccelerator`] — the retained per-lane reference engine,
//!   the validation oracle.
//! * [`SoaAccelerator`] — the data-oriented fast path
//!   (structure-of-arrays register file, bitmask issue, scratch
//!   arena; see [`crate::soa`]).
//!
//! Plain [`crate::Gpu::launch`] resolves a backend from
//! [`SimtConfig::backend`] (and the `GGPU_ACCEL` environment
//! override); [`crate::Gpu::launch_with`] runs an explicit backend,
//! which is how the equivalence suite and `simt_bench` drive both
//! engines over identical launches.

use crate::config::{AccelBackend, SimtConfig};
use crate::engine::{run_launch, ScalarWave};
use crate::gpu::{HardenState, RunStats, SimError, PARAM_SLOTS};
use crate::soa::{SoaWave, MAX_WF};
use crate::trace::ExecTrace;
use ggpu_isa::inst::Inst;

/// One fully-validated launch, ready for a backend to execute. Built
/// by [`crate::Gpu`] (geometry checks, parameter staging) and handed
/// to [`Accelerator::run`]; the fields stay crate-private so backends
/// outside this crate cannot bypass launch validation.
pub struct LaunchRequest<'a> {
    pub(crate) config: SimtConfig,
    pub(crate) program: &'a [Inst],
    pub(crate) params: [u32; PARAM_SLOTS],
    pub(crate) global_size: u32,
    pub(crate) workgroup_size: u32,
    pub(crate) memory: &'a mut [u32],
    /// Use the cycle-stepping reference driver instead of the
    /// event-driven time wheel (validation runs).
    pub(crate) reference: bool,
    /// Fault-injection / watchdog harness; `None` for plain runs.
    pub(crate) hard: Option<&'a mut HardenState>,
    /// Soundness-oracle trace sink; `None` for plain runs.
    pub(crate) trace: Option<&'a mut ExecTrace>,
}

impl LaunchRequest<'_> {
    /// The machine configuration of this launch.
    pub fn config(&self) -> &SimtConfig {
        &self.config
    }

    /// The instruction stream.
    pub fn program(&self) -> &[Inst] {
        self.program
    }

    /// `(global_size, workgroup_size)`.
    pub fn sizes(&self) -> (u32, u32) {
        (self.global_size, self.workgroup_size)
    }
}

/// An execution backend for the SIMT machine.
///
/// Implementations differ only in host performance; the simulated
/// architecture is identical, and the equivalence property suite holds
/// every backend to bit-identity with [`ScalarAccelerator`].
pub trait Accelerator {
    /// Stable backend name (reports, benchmark JSON).
    fn name(&self) -> &'static str;

    /// Executes one validated launch to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] exactly as [`crate::Gpu::launch`] does;
    /// backends with geometry limits reject unsupported
    /// configurations with [`SimError::BadConfig`].
    fn run(&self, req: LaunchRequest<'_>) -> Result<RunStats, SimError>;
}

/// The retained scalar reference engine (per-lane `Vec`s, scalar
/// loops): slow, simple, the oracle every other backend is measured
/// against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarAccelerator;

impl Accelerator for ScalarAccelerator {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn run(&self, req: LaunchRequest<'_>) -> Result<RunStats, SimError> {
        run_launch::<ScalarWave>(
            req.config,
            req.program,
            req.params,
            (req.global_size, req.workgroup_size),
            req.memory,
            req.reference,
            req.hard,
            req.trace,
        )
    }
}

/// The data-oriented fast path: structure-of-arrays register file,
/// 64-bit exec-mask issue, reusable scratch arena, batched memory
/// arbitration. Supports `wavefront_size <= 64` (one mask word).
#[derive(Debug, Clone, Copy, Default)]
pub struct SoaAccelerator;

impl Accelerator for SoaAccelerator {
    fn name(&self) -> &'static str {
        "soa"
    }

    fn run(&self, req: LaunchRequest<'_>) -> Result<RunStats, SimError> {
        if req.config.wavefront_size > MAX_WF {
            return Err(SimError::BadConfig(format!(
                "SoA backend supports wavefront_size <= {MAX_WF} (one exec-mask word), got {}",
                req.config.wavefront_size
            )));
        }
        run_launch::<SoaWave>(
            req.config,
            req.program,
            req.params,
            (req.global_size, req.workgroup_size),
            req.memory,
            req.reference,
            req.hard,
            req.trace,
        )
    }
}

/// Resolves a configured backend choice to a concrete engine.
///
/// [`AccelBackend::Auto`] honours the `GGPU_ACCEL` environment
/// variable (`"scalar"` / `"soa"`, unknown values ignored) and
/// otherwise picks the SoA fast path, falling back to the scalar
/// engine for geometries the mask word cannot cover. An *explicit*
/// [`AccelBackend::Soa`] on such a geometry is not silently demoted —
/// [`SoaAccelerator::run`] rejects it with [`SimError::BadConfig`].
pub(crate) fn resolve(backend: AccelBackend, wavefront_size: u32) -> &'static dyn Accelerator {
    const SCALAR: ScalarAccelerator = ScalarAccelerator;
    const SOA: SoaAccelerator = SoaAccelerator;
    let choice = match backend {
        AccelBackend::Scalar => AccelBackend::Scalar,
        AccelBackend::Soa => AccelBackend::Soa,
        AccelBackend::Auto => {
            if wavefront_size > MAX_WF {
                AccelBackend::Scalar
            } else {
                match std::env::var("GGPU_ACCEL").as_deref() {
                    Ok("scalar") => AccelBackend::Scalar,
                    _ => AccelBackend::Soa,
                }
            }
        }
    };
    match choice {
        AccelBackend::Scalar => &SCALAR,
        _ => &SOA,
    }
}
