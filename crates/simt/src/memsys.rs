//! Timing model of the shared memory system: banked direct-mapped
//! write-back cache in front of the AXI external-memory interfaces.
//!
//! The cache is *shared by all CUs* (the FGPU's central cache), which
//! is what produces the paper's 8-CU saturation effects: bank
//! conflicts and AXI bandwidth limits put a floor under memory-bound
//! kernels, and working sets from many concurrent workgroups evict
//! each other in the direct-mapped array.

use crate::config::{CacheConfig, DramConfig};

/// Counters accumulated by the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Cache lookups.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Line fills from external memory.
    pub fills: u64,
    /// Dirty-line writebacks to external memory.
    pub writebacks: u64,
}

impl MemStats {
    /// Miss ratio (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            (self.accesses - self.hits) as f64 / self.accesses as f64
        }
    }
}

/// The AXI external-memory side.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    iface_free: Vec<u64>,
    /// `interfaces - 1` when the interface count is a power of two —
    /// striping then avoids a hardware divide per transfer (streaming
    /// kernels issue one or two transfers per missed line).
    iface_mask: Option<usize>,
    /// Precomputed occupancy of a full cache-line transfer, the only
    /// size the cache ever requests.
    line_bytes: u32,
    line_occupancy: u64,
}

impl Dram {
    /// Creates the interface set.
    pub fn new(cfg: DramConfig) -> Self {
        Self {
            cfg,
            iface_free: vec![0; cfg.interfaces as usize],
            iface_mask: (cfg.interfaces as usize)
                .is_power_of_two()
                .then(|| cfg.interfaces as usize - 1),
            line_bytes: 0,
            line_occupancy: 0,
        }
    }

    /// Schedules a line transfer starting no earlier than `now`;
    /// returns the completion time. Lines are striped across
    /// interfaces by line address.
    pub fn transfer(&mut self, now: u64, line_addr: u64, bytes: u32) -> u64 {
        let iface = match self.iface_mask {
            Some(m) => (line_addr as usize) & m,
            None => (line_addr as usize) % self.iface_free.len(),
        };
        let start = now.max(self.iface_free[iface]);
        let occupancy = if bytes == self.line_bytes {
            self.line_occupancy
        } else {
            u64::from(bytes.div_ceil(self.cfg.bytes_per_cycle))
        };
        self.iface_free[iface] = start + occupancy;
        start + occupancy + u64::from(self.cfg.latency)
    }
}

/// Extra serialization beats a banked LRAM needs to serve one issue.
///
/// `words` holds the word index of every committed lane's access, in
/// ascending lane order (the architectural arbitration order). Lanes
/// are served in beats of `pes`; within a beat, each bank (word index
/// modulo `banks`) delivers its *distinct* words one cycle at a time
/// while same-word lanes broadcast for free, so a beat costs its worst
/// bank's degree. The conflict-free cost is one cycle per beat; the
/// returned extra is `degree - 1` summed over beats.
///
/// The per-beat/bank/degree arithmetic matches
/// [`crate::ExecTrace::record_access`] exactly — the trace oracle the
/// absint soundness suite judges `bank_conflict_degree` predictions
/// against — so predicted ≥ observed implies predicted ≥ charged.
pub(crate) fn lram_conflict_beats(words: &[u32], banks: u32, pes: usize) -> u64 {
    let banks = banks.max(1);
    let mut extra = 0u64;
    let mut per_bank: Vec<(u32, u32)> = Vec::new();
    for beat in words.chunks(pes.max(1)) {
        per_bank.clear();
        for &w in beat {
            let b = w % banks;
            if !per_bank.contains(&(b, w)) {
                per_bank.push((b, w));
            }
        }
        let mut worst = 1u32;
        for &(b, _) in &per_bank {
            let degree = per_bank.iter().filter(|&&(pb, _)| pb == b).count() as u32;
            worst = worst.max(degree);
        }
        extra += u64::from(worst - 1);
    }
    extra
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
}

/// The shared data cache.
#[derive(Debug, Clone)]
pub struct SharedCache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    bank_free: Vec<u64>,
    dram: Dram,
    stats: MemStats,
    /// Shift/mask address split, valid when `pow2` is set — the
    /// address split then runs on shifts/masks instead of three
    /// hardware divides per access, behind a *single* predicted
    /// branch (this is the hottest loop of the whole simulator; the
    /// default 64 B / 512-line / 4-bank geometry always takes the
    /// fast path).
    line_shift: u32,
    index_mask: usize,
    bank_mask: usize,
    pow2: bool,
}

impl SharedCache {
    /// Creates a cold cache in front of `dram`.
    pub fn new(cfg: CacheConfig, mut dram: Dram) -> Self {
        dram.line_bytes = cfg.line_bytes;
        dram.line_occupancy = u64::from(cfg.line_bytes.div_ceil(dram.cfg.bytes_per_cycle));
        let pow2 = cfg.line_bytes.is_power_of_two()
            && (cfg.lines() as usize).is_power_of_two()
            && (cfg.banks as usize).is_power_of_two();
        Self {
            lines: vec![Line::default(); cfg.lines() as usize],
            bank_free: vec![0; cfg.banks as usize],
            cfg,
            dram,
            stats: MemStats::default(),
            line_shift: cfg.line_bytes.trailing_zeros(),
            index_mask: (cfg.lines() as usize).wrapping_sub(1),
            bank_mask: (cfg.banks as usize).wrapping_sub(1),
            pow2,
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// The line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.cfg.line_bytes
    }

    /// Performs one line access (read or write) starting no earlier
    /// than `now`; returns when the data is available.
    ///
    /// The hit path is kept small and inlinable — on warmed working
    /// sets it is the single most-executed piece of code in the
    /// simulator — and the fill/writeback machinery lives in a cold
    /// out-of-line helper.
    #[inline]
    pub fn access(&mut self, now: u64, byte_addr: u64, is_write: bool) -> u64 {
        let (line_addr, index, bank);
        if self.pow2 {
            line_addr = byte_addr >> self.line_shift;
            index = (line_addr as usize) & self.index_mask;
            bank = index & self.bank_mask;
        } else {
            line_addr = byte_addr / u64::from(self.cfg.line_bytes);
            index = (line_addr as usize) % self.lines.len();
            bank = index % self.bank_free.len();
        }

        // One access per cycle per bank.
        let start = now.max(self.bank_free[bank]);
        self.bank_free[bank] = start + 1;
        self.stats.accesses += 1;

        let line = &mut self.lines[index];
        if line.valid && line.tag == line_addr {
            self.stats.hits += 1;
            if is_write {
                line.dirty = true;
            }
            return start + u64::from(self.cfg.hit_latency);
        }
        self.access_miss(start, line_addr, index, is_write)
    }

    /// Miss path: write back the victim if dirty, then fill.
    #[cold]
    fn access_miss(&mut self, start: u64, line_addr: u64, index: usize, is_write: bool) -> u64 {
        let line = self.lines[index];
        if line.valid && line.dirty {
            self.stats.writebacks += 1;
            let victim_addr = line.tag;
            // The writeback occupies an interface but the requester
            // does not wait for it.
            let _ = self.dram.transfer(start, victim_addr, self.cfg.line_bytes);
        }
        self.stats.fills += 1;
        let fill_done = self.dram.transfer(start, line_addr, self.cfg.line_bytes);
        let line = &mut self.lines[index];
        line.tag = line_addr;
        line.valid = true;
        line.dirty = is_write;
        fill_done + u64::from(self.cfg.hit_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> SharedCache {
        SharedCache::new(CacheConfig::default(), Dram::new(DramConfig::default()))
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = cache();
        let t1 = c.access(0, 0x1000, false);
        assert!(t1 > u64::from(CacheConfig::default().hit_latency));
        let t2 = c.access(t1, 0x1000, false);
        assert_eq!(t2, t1 + u64::from(CacheConfig::default().hit_latency));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().fills, 1);
    }

    #[test]
    fn same_line_words_share_a_line() {
        let mut c = cache();
        let _ = c.access(0, 0x1000, false);
        let _ = c.access(100, 0x103C, false); // same 64-byte line
        assert_eq!(c.stats().fills, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn conflicting_lines_evict_each_other() {
        let mut c = cache();
        let stride = u64::from(CacheConfig::default().size_kib) * 1024; // same index
        let _ = c.access(0, 0x0, false);
        let _ = c.access(1000, stride, false);
        let _ = c.access(2000, 0x0, false);
        assert_eq!(c.stats().fills, 3, "direct-mapped conflict misses");
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = cache();
        let stride = u64::from(CacheConfig::default().size_kib) * 1024;
        let _ = c.access(0, 0x0, true);
        let _ = c.access(1000, stride, false);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn bank_conflicts_serialize() {
        let mut c = cache();
        // Two accesses to the same bank at the same cycle: the second
        // starts one cycle later. Warm both lines first.
        let banks = u64::from(CacheConfig::default().banks);
        let line = u64::from(CacheConfig::default().line_bytes);
        let a = 0u64;
        let b = banks * line; // same bank, different index? no: index+banks -> same bank
        let t = c.access(0, a, false).max(c.access(0, b, false));
        let ha = c.access(t, a, false);
        let hb = c.access(t, b, false);
        assert_eq!(hb, ha + 1, "same-bank accesses serialize");
    }

    #[test]
    fn lram_conflict_beats_match_the_trace_oracle() {
        // Broadcast: every lane reads one word — zero extra beats.
        assert_eq!(lram_conflict_beats(&[5; 8], 4, 8), 0);
        // Unit stride over 8 banks, 8 lanes per beat: conflict-free.
        let unit: Vec<u32> = (0..16).collect();
        assert_eq!(lram_conflict_beats(&unit, 8, 8), 0);
        // Stride 8 over 8 banks: all 8 lanes of a beat hit bank 0 —
        // 7 extra beats per beat, 2 beats.
        let strided: Vec<u32> = (0..16).map(|i| i * 8).collect();
        assert_eq!(lram_conflict_beats(&strided, 8, 8), 14);
        // 4 banks, stride 1, 8 lanes per beat: each bank serves 2
        // distinct words — 1 extra beat per beat.
        assert_eq!(lram_conflict_beats(&unit, 4, 8), 2);
        // Fewer banks than beat width but same-word lanes broadcast.
        assert_eq!(lram_conflict_beats(&[0, 0, 1, 1], 2, 4), 0);
        assert_eq!(lram_conflict_beats(&[], 8, 8), 0);
    }

    #[test]
    fn dram_interfaces_stripe_and_queue() {
        let mut d = Dram::new(DramConfig::default());
        let t0 = d.transfer(0, 0, 64);
        let t1 = d.transfer(0, 1, 64);
        assert_eq!(t0, t1, "different interfaces run in parallel");
        let t2 = d.transfer(0, 4, 64); // interface 0 again
        assert!(t2 > t0, "same interface queues");
    }

    #[test]
    fn miss_ratio_math() {
        let mut c = cache();
        let _ = c.access(0, 0, false);
        let _ = c.access(10, 0, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(MemStats::default().miss_ratio(), 0.0);
    }
}

#[cfg(test)]
mod saturation_tests {
    use super::*;
    use crate::config::{CacheConfig, DramConfig};

    #[test]
    fn streaming_misses_are_bandwidth_bound() {
        // Stream 4096 distinct lines through the cache: total time is
        // set by the AXI transfer occupancy, not the request count.
        let dram_cfg = DramConfig::default();
        let mut c = SharedCache::new(CacheConfig::default(), Dram::new(dram_cfg));
        let line = u64::from(CacheConfig::default().line_bytes);
        let mut last = 0;
        for i in 0..4096u64 {
            last = last.max(c.access(0, i * line, false));
        }
        // Occupancy floor: lines * line_bytes / aggregate bytes-per-cycle.
        let floor = 4096 * u64::from(CacheConfig::default().line_bytes)
            / u64::from(dram_cfg.interfaces * dram_cfg.bytes_per_cycle);
        assert!(last >= floor, "{last} cycles vs floor {floor}");
        assert!(last < floor * 2, "should not be far above the floor");
    }

    #[test]
    fn bigger_cache_turns_conflicts_into_hits() {
        // A working set of 1024 lines revisited twice: with a 32 KiB
        // cache (512 lines) everything conflicts; 128 KiB holds it.
        let run = |size_kib: u32| {
            let cfg = CacheConfig {
                size_kib,
                ..CacheConfig::default()
            };
            let mut c = SharedCache::new(cfg, Dram::new(DramConfig::default()));
            let line = u64::from(cfg.line_bytes);
            for _pass in 0..2 {
                for i in 0..1024u64 {
                    let _ = c.access(u64::MAX / 2, i * line, false);
                }
            }
            c.stats().miss_ratio()
        };
        let small = run(32);
        let big = run(128);
        assert!(small > 0.9, "32 KiB thrashes: miss ratio {small}");
        assert!(big < 0.6, "128 KiB keeps the set: miss ratio {big}");
    }
}
