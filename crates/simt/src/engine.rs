//! The generic wavefront scheduler shared by every [`crate::Accelerator`]
//! backend.
//!
//! The scheduler (dispatch, round-robin issue selection, the
//! event-driven time wheel and the cycle-stepping reference driver,
//! fault-injection/watchdog harness hooks) is written once, generic
//! over a [`Wave`] engine that owns the per-wavefront architectural
//! state and the per-instruction lane loop. Two engines ship:
//!
//! * [`ScalarWave`] — the retained reference: per-lane `Vec`s, one
//!   scalar loop per instruction. Kept byte-for-byte equivalent to the
//!   pre-trait simulator and used as the validation oracle.
//! * [`crate::soa::SoaWave`] — the data-oriented fast path:
//!   structure-of-arrays register file, 64-bit `exec` bitmask, dense
//!   vectorizable lane loops and a reusable scratch arena.
//!
//! Both engines execute the *same* scheduler passes in the same order,
//! which is what makes their outputs, [`RunStats`], memory images and
//! fault semantics bit-identical (enforced by
//! `crates/simt/tests/prop_backend_equiv.rs`).

use crate::config::SimtConfig;
use crate::fault::{FaultEvent, FaultSite, Injection, InjectionOutcome, Protection};
use crate::gpu::{HardenState, RunStats, SimError, LOCAL_WORDS, PARAM_SLOTS};
use crate::memsys::{Dram, SharedCache};
use crate::trace::ExecTrace;
use ggpu_isa::inst::{AluOp, IdSource, Inst};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Read-only launch context threaded through every issue.
pub(crate) struct IssueEnv<'a> {
    pub config: SimtConfig,
    pub program: &'a [Inst],
    pub params: [u32; PARAM_SLOTS],
    pub global_size: u32,
    pub workgroup_size: u32,
    /// `log2(pes_per_cu)` when the PE count is a power of two: the
    /// per-issue occupancy `div_ceil` then compiles to a shift (this
    /// runs once per issued instruction on both backends).
    pub pes_shift: Option<u32>,
}

/// What one wavefront issue did.
pub(crate) enum StepOut {
    /// The wavefront had no active lane left (e.g. after an exec-mask
    /// upset) and retired without issuing.
    Retired,
    /// One vector instruction was issued.
    Issued {
        /// The instruction, for shared latency/occupancy accounting.
        inst: Inst,
        /// Number of lanes that executed it.
        lane_count: u32,
        /// Earliest cycle the memory system can deliver the results.
        mem_ready: u64,
        /// Extra LRAM beats serializing bank conflicts (local
        /// accesses under [`crate::LramModel::Banked`]; zero
        /// otherwise). Computed inside the lane loop because the
        /// accessed words are lost once the step commits (`lwl` may
        /// overwrite its own address register).
        local_beats: u64,
    },
}

/// One wavefront's architectural state and lane-execution engine.
///
/// The contract every implementation must honour for bit-identity:
/// lanes are visited in ascending index order wherever the visit has
/// an observable side effect (memory writes, cache-port arbitration,
/// fault surfacing), and per-lane semantics match [`ScalarWave`]'s
/// scalar loops exactly.
pub(crate) trait Wave: Sized {
    /// Reusable per-scheduler scratch (lane lists, operand staging,
    /// touched-line buffers). One instance lives in the [`Sched`] and
    /// is lent to every issue, so the steady-state instruction loop
    /// performs no heap allocation.
    type Scratch: Default;

    /// A fresh wavefront covering `items` lanes.
    fn new(wf_size: u32, group_id: u32, first_global: u32, first_local: u32, items: u32) -> Self;
    /// Reinitializes a recycled wavefront in place (the dispatch
    /// arena): afterwards the wave must be indistinguishable from
    /// [`Wave::new`] with the same arguments.
    fn reinit(&mut self, group_id: u32, first_global: u32, first_local: u32, items: u32);

    fn done(&self) -> bool;
    fn at_barrier(&self) -> bool;
    fn ready_at(&self) -> u64;
    fn set_ready_at(&mut self, t: u64);
    fn group_id(&self) -> u32;

    /// Executes one vector instruction (select min active PC, fetch,
    /// run every active lane at that PC) and updates PCs, masks and
    /// barrier/done flags.
    fn step(
        &mut self,
        env: &IssueEnv<'_>,
        memory: &mut [u32],
        local_mem: &mut [u32],
        cache: &mut SharedCache,
        now: u64,
        scratch: &mut Self::Scratch,
    ) -> Result<StepOut, SimError>;

    /// Read-only replay of the *next* issue's lane selection,
    /// recording per-lane addresses, store values and branch outcomes
    /// into `trace`. Called immediately before [`Wave::step`] with the
    /// same arguments' pre-state, so what it records is exactly what
    /// the step is about to do — including accesses the step will
    /// fault on. Must not mutate any architectural or lazy engine
    /// state (the step that follows must be unaffected).
    fn observe(
        &self,
        env: &IssueEnv<'_>,
        memory_words: usize,
        local_words: usize,
        trace: &mut ExecTrace,
    );

    /// Advances every active lane past a released barrier.
    fn release_from_barrier(&mut self, now: u64);

    /// Hashes all architectural state the watchdog watches.
    fn fingerprint(&self, h: &mut DefaultHasher);

    /// `true` when `lane` exists in this wavefront's geometry.
    fn has_lane(&self, lane: u32) -> bool;
    /// Mutable view of one lane's architectural register, if resolvable.
    fn reg_slot(&mut self, lane: u32, reg: u8) -> Option<&mut u32>;
    /// Mutable view of one lane's PC, if resolvable.
    fn pc_slot(&mut self, lane: u32) -> Option<&mut u32>;
    /// Toggles one lane's execution-mask bit (the caller has checked
    /// [`Wave::has_lane`]).
    fn toggle_exec(&mut self, lane: u32);
}

/// One compute unit: resident wavefronts, scratchpad, issue stage.
/// Retired wavefronts are recycled through `pool`, so steady-state
/// dispatch performs no allocation either.
pub(crate) struct ComputeUnit<W> {
    pub wavefronts: Vec<W>,
    pool: Vec<W>,
    pub local_mem: Vec<u32>,
    pub busy_until: u64,
    pub rr_cursor: usize,
    /// Dispatch can only newly succeed after a retirement freed a
    /// slot (or on the very first pass), so the compaction/dispatch
    /// block is skipped until then. Behaviour-neutral: between a
    /// failed dispatch attempt and the next retirement no wavefront
    /// retires, so the skipped compactions are provably no-ops.
    dispatch_hint: bool,
    /// Cached liveness/readiness summary of the resident list, valid
    /// while `!dirty`. Wavefront state only changes through issue,
    /// dispatch or fault injection — each sets `dirty` — so between
    /// mutations both the pass loop and the event scan can serve an
    /// idle CU from these two words instead of rescanning its
    /// wavefront list. At 8 CUs only ~1-2 CUs issue per pass, which
    /// makes this the difference between O(total waves) and
    /// O(issuing waves) per pass.
    cached_live: bool,
    /// `min(ready_at)` over live non-barrier wavefronts (`u64::MAX`
    /// when none is issuable); paired with `cached_live` above.
    cached_ready: u64,
    dirty: bool,
}

/// Outcome of one scheduler pass (one simulated cycle's worth of
/// dispatch/issue work), used by the event-driven driver to decide
/// how far time can jump.
struct PassOutcome {
    /// Some CU held live wavefronts at pass time (pre-issue), i.e.
    /// the run is not finished.
    any_alive: bool,
    /// A wavefront retired during this pass, freeing a slot: dispatch
    /// may newly succeed next cycle.
    became_done: bool,
    /// A workgroup was dispatched during this pass.
    dispatched: bool,
}

/// One in-flight kernel run: machine state plus scheduling queues,
/// shared by the event-driven scheduler and the cycle-stepping
/// reference so both execute byte-for-byte identical passes.
pub(crate) struct Sched<'a, W: Wave> {
    env: IssueEnv<'a>,
    memory: &'a mut [u32],
    cache: SharedCache,
    cus: Vec<ComputeUnit<W>>,
    total_groups: u32,
    next_group: u32,
    stats: RunStats,
    scratch: W::Scratch,
    /// Fault-injection / watchdog harness; `None` for plain runs.
    hard: Option<&'a mut HardenState>,
    /// Soundness-oracle trace sink; `None` for plain runs.
    trace: Option<&'a mut ExecTrace>,
}

/// Builds and runs one launch on wave engine `W`, under either the
/// event-driven driver or the cycle-stepping reference driver.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_launch<W: Wave>(
    config: SimtConfig,
    program: &[Inst],
    params: [u32; PARAM_SLOTS],
    (global_size, workgroup_size): (u32, u32),
    memory: &mut [u32],
    reference: bool,
    hard: Option<&mut HardenState>,
    trace: Option<&mut ExecTrace>,
) -> Result<RunStats, SimError> {
    let total_groups = global_size.div_ceil(workgroup_size);
    let sched = Sched::<W> {
        env: IssueEnv {
            config,
            program,
            params,
            global_size,
            workgroup_size,
            pes_shift: config
                .pes_per_cu
                .is_power_of_two()
                .then(|| config.pes_per_cu.trailing_zeros()),
        },
        memory,
        cache: SharedCache::new(config.cache, Dram::new(config.dram)),
        cus: (0..config.compute_units)
            .map(|_| ComputeUnit {
                wavefronts: Vec::new(),
                pool: Vec::new(),
                local_mem: vec![0; LOCAL_WORDS],
                busy_until: 0,
                rr_cursor: 0,
                dispatch_hint: true,
                cached_live: false,
                cached_ready: u64::MAX,
                dirty: true,
            })
            .collect(),
        total_groups,
        next_group: 0,
        stats: RunStats {
            workgroups: u64::from(total_groups),
            ..RunStats::default()
        },
        scratch: W::Scratch::default(),
        hard,
        trace,
    };
    if reference {
        sched.run_cycle_reference()
    } else {
        sched.run_event_driven()
    }
}

impl<'a, W: Wave> Sched<'a, W> {
    /// Event-driven driver: the time wheel. Runs a pass, then jumps
    /// `now` directly to the next event, accounting the skipped idle
    /// cycles arithmetically.
    fn run_event_driven(mut self) -> Result<RunStats, SimError> {
        let mut now: u64 = 0;
        loop {
            if now > self.env.config.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: self.env.config.max_cycles,
                });
            }
            self.harness_tick(now)?;
            let pass = self.pass(now)?;
            if !pass.any_alive && self.next_group >= self.total_groups {
                break;
            }
            now = self.advance(now, &pass)?;
        }
        self.stats.cycles = now;
        self.stats.mem = self.cache.stats();
        Ok(self.stats)
    }

    /// Cycle-stepping reference driver: visits every simulated cycle.
    fn run_cycle_reference(mut self) -> Result<RunStats, SimError> {
        let mut now: u64 = 0;
        loop {
            if now > self.env.config.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: self.env.config.max_cycles,
                });
            }
            self.harness_tick(now)?;
            let pass = self.pass(now)?;
            if !pass.any_alive && self.next_group >= self.total_groups {
                break;
            }
            now += 1;
        }
        self.stats.cycles = now;
        self.stats.mem = self.cache.stats();
        Ok(self.stats)
    }

    /// Finds the earliest simulated time after `now` at which any CU
    /// can change state, accounts the skipped idle cycles, and returns
    /// the new `now`.
    ///
    /// The next event for every CU holding live wavefronts is
    /// `max(busy_until, min ready_at over issuable wavefronts)`; a
    /// wavefront retirement (or dispatch) with workgroups still queued
    /// re-opens dispatch at `now + 1`; once no live wavefront remains
    /// anywhere, one final drain pass at `now + 1` reproduces the
    /// reference loop's trailing busy accounting and break timing.
    ///
    /// The idle accounting adds the busy/stall increments the
    /// reference loop would have made during the skipped cycles
    /// `now+1 ..= next-1`, in closed form: during that span no CU
    /// state changes, a CU counts as busy while `cycle < busy_until`,
    /// and as stalled for the rest of the span iff it holds live
    /// wavefronts. CUs untouched since the previous scan serve both
    /// answers from their cached summary, so each event step only
    /// rescans the one or two wavefront lists that actually changed.
    fn advance(&mut self, now: u64, pass: &PassOutcome) -> Result<u64, SimError> {
        let mut next = u64::MAX;
        for cu in self.cus.iter_mut() {
            if cu.dirty {
                // One fused pass over the resident list: liveness and
                // the earliest issuable readiness together.
                let mut any_live = false;
                let mut ready = u64::MAX;
                for w in &cu.wavefronts {
                    if w.done() {
                        continue;
                    }
                    any_live = true;
                    if !w.at_barrier() {
                        ready = ready.min(w.ready_at());
                    }
                }
                cu.cached_live = any_live;
                cu.cached_ready = ready;
                cu.dirty = false;
            }
            if !cu.cached_live {
                continue;
            }
            // A live CU always has an issuable (non-barrier) wavefront
            // with finite readiness: barrier release is immediate once
            // the whole group has arrived. An all-waiting CU would
            // otherwise stop the clock, so it is a typed scheduler
            // invariant violation rather than a silent `now + 1`
            // re-poll that spins to the cycle ceiling.
            if cu.cached_ready == u64::MAX {
                return Err(SimError::SchedulerStall { cycle: now });
            }
            next = next.min(cu.busy_until.max(cu.cached_ready));
        }
        if next == u64::MAX {
            next = now + 1; // final drain pass
        }
        if self.next_group < self.total_groups && (pass.became_done || pass.dispatched) {
            next = next.min(now + 1);
        }
        let next = next.max(now + 1);
        for cu in &self.cus {
            self.stats.busy_cycles += cu.busy_until.min(next).saturating_sub(now + 1);
            if cu.cached_live {
                self.stats.stall_cycles += next.saturating_sub(cu.busy_until.max(now + 1));
            }
        }
        Ok(next)
    }

    /// Fault-injection / watchdog hook, run before every scheduler
    /// pass. Exact no-op when no harness is attached; with an attached
    /// harness but an empty plan the only work is the (mutation-free)
    /// watchdog heartbeat, so architectural state and accounting are
    /// untouched — the zero-injection bit-identity guarantee.
    fn harness_tick(&mut self, now: u64) -> Result<(), SimError> {
        let Some(hard) = self.hard.take() else {
            return Ok(());
        };
        // `hard` is re-attached by the inner function for reuse on the
        // next pass; on error the run aborts and the owner (the
        // `launch_hardened` frame) still holds the log.
        self.harness_tick_inner(now, hard)
    }

    fn harness_tick_inner(&mut self, now: u64, hard: &'a mut HardenState) -> Result<(), SimError> {
        // Apply every injection that has come due. Between passes no
        // architectural state is read, so landing at the first pass at
        // or after the target cycle is bit-equivalent to landing at
        // the target cycle itself on the cycle-stepping machine.
        while hard
            .injections
            .get(hard.next_inj)
            .is_some_and(|inj| inj.cycle <= now)
        {
            let i = hard.next_inj;
            hard.next_inj += 1;
            let outcome =
                Self::apply_injection(&mut self.cus, self.memory, &hard.injections[i], now)?;
            hard.log.events.push(FaultEvent {
                cycle: now,
                label: hard.injections[i].label.clone(),
                outcome,
            });
        }

        // Retirement-progress watchdog: evaluated at the first pass at
        // or past each deadline, armed only when instructions were
        // issued since the previous check (pure memory stalls always
        // resolve — modelled latencies are finite — and must not trip
        // the heartbeat).
        if let Some(wd) = hard.watchdog {
            if now >= hard.wd_next {
                hard.wd_next = now + wd.interval.max(1);
                let instr = self.stats.vector_instructions;
                if instr > hard.wd_last_instr {
                    hard.wd_last_instr = instr;
                    let fp = self.arch_fingerprint();
                    if hard.wd_fp_valid && fp == hard.wd_last_fp {
                        hard.wd_streak += 1;
                        if hard.wd_streak >= wd.patience.max(1) {
                            self.hard = Some(hard);
                            return Err(SimError::Watchdog { cycle: now });
                        }
                    } else {
                        hard.wd_streak = 0;
                        hard.wd_last_fp = fp;
                        hard.wd_fp_valid = true;
                    }
                }
            }
        }
        self.hard = Some(hard);
        Ok(())
    }

    /// Hash of all architectural state the watchdog watches: PCs,
    /// activity masks, registers, IDs, barrier/done flags, LRAM and
    /// the dispatch position. Global memory is excluded for cost; a
    /// kernel making progress only through memory writes still changes
    /// registers (addresses, loop counters) every iteration.
    fn arch_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.next_group.hash(&mut h);
        for cu in &self.cus {
            cu.local_mem.hash(&mut h);
            cu.wavefronts.len().hash(&mut h);
            for wf in &cu.wavefronts {
                wf.fingerprint(&mut h);
            }
        }
        h.finish()
    }

    /// Applies one injection to the machine. Unresolvable coordinates
    /// (index out of range, retired slot) are [`InjectionOutcome::Vacant`];
    /// protection is decided by the total codeword flip count. This
    /// function cannot panic for any `(site, cycle, bits)` input.
    fn apply_injection(
        cus: &mut [ComputeUnit<W>],
        memory: &mut [u32],
        inj: &Injection,
        now: u64,
    ) -> Result<InjectionOutcome, SimError> {
        /// A resolved mutable view of the targeted state.
        enum Slot<'m, W: Wave> {
            Word(&'m mut u32),
            Mask(&'m mut W, u32),
        }
        fn wf_of<W: Wave>(cus: &mut [ComputeUnit<W>], cu: u32, slot: u32) -> Option<&mut W> {
            cus.get_mut(cu as usize)
                .and_then(|c| c.wavefronts.get_mut(slot as usize))
                .filter(|w| !w.done())
        }
        // Invalidate the targeted CU's cached pass summary: an upset
        // can change what the next scan would conclude (e.g. an
        // exec-mask flip feeding a retirement on the next issue).
        match inj.site {
            FaultSite::Register { cu, .. }
            | FaultSite::LocalWord { cu, .. }
            | FaultSite::Pc { cu, .. }
            | FaultSite::ExecMask { cu, .. } => {
                if let Some(c) = cus.get_mut(cu as usize) {
                    c.dirty = true;
                }
            }
            FaultSite::GlobalWord { .. } => {}
        }
        let slot: Option<Slot<'_, W>> = match inj.site {
            FaultSite::Register {
                cu,
                slot,
                lane,
                reg,
            } => wf_of(cus, cu, slot)
                .and_then(|w| w.reg_slot(lane, reg))
                .map(Slot::Word),
            FaultSite::LocalWord { cu, word } => cus
                .get_mut(cu as usize)
                .and_then(|c| c.local_mem.get_mut(word as usize))
                .map(Slot::Word),
            FaultSite::GlobalWord { word } => memory.get_mut(word as usize).map(Slot::Word),
            FaultSite::Pc { cu, slot, lane } => wf_of(cus, cu, slot)
                .and_then(|w| w.pc_slot(lane))
                .map(Slot::Word),
            FaultSite::ExecMask { cu, slot, lane } => wf_of(cus, cu, slot)
                .and_then(|w| w.has_lane(lane).then_some(w))
                .map(|w| Slot::Mask(w, lane)),
        };
        let Some(slot) = slot else {
            return Ok(InjectionOutcome::Vacant);
        };
        let apply = |slot: Slot<'_, W>| match slot {
            Slot::Word(w) => {
                for &b in &inj.flips {
                    *w ^= 1u32 << (b % 32);
                }
            }
            Slot::Mask(w, lane) => w.toggle_exec(lane),
        };
        let total = inj.codeword_flips.max(inj.flips.len() as u32);
        let detected = || {
            SimError::UncorrectableFault(crate::fault::FaultReport {
                cycle: now,
                label: inj.label.clone(),
                domain: inj.site.domain(),
                flips: total,
            })
        };
        match inj.protection {
            Protection::None => {
                apply(slot);
                Ok(InjectionOutcome::Applied)
            }
            _ if total == 0 => Ok(InjectionOutcome::Vacant),
            Protection::Parity => {
                if total % 2 == 1 {
                    // Odd flip count inverts the parity: detected, not
                    // correctable — surfaced as a typed error.
                    Err(detected())
                } else {
                    // Even flip counts cancel in the parity sum and
                    // land silently (potential SDC).
                    apply(slot);
                    Ok(InjectionOutcome::Applied)
                }
            }
            Protection::SecDed => match total {
                1 => Ok(InjectionOutcome::Corrected),
                t if t % 2 == 0 => Err(detected()),
                _ => {
                    // Odd >= 3: the decoder sees a plausible single-bit
                    // syndrome and "corrects" the wrong bit.
                    apply(slot);
                    Ok(InjectionOutcome::MisCorrected)
                }
            },
        }
    }

    /// Executes one scheduler pass at simulated time `now`: per CU in
    /// index order, workgroup dispatch, then (unless the issue stage
    /// is occupied) round-robin selection and issue of one vector
    /// instruction. This is exactly one iteration of the reference
    /// cycle loop; the event-driven driver calls it only at event
    /// times.
    fn pass(&mut self, now: u64) -> Result<PassOutcome, SimError> {
        self.stats.sched_iterations += 1;
        let mut out = PassOutcome {
            any_alive: false,
            became_done: false,
            dispatched: false,
        };
        for cu in self.cus.iter_mut() {
            let may_dispatch = cu.dispatch_hint && self.next_group < self.total_groups;
            let has_live;
            if !cu.dirty && !may_dispatch {
                // Nothing mutated this CU since its summary was
                // cached and no dispatch work is pending: answer the
                // liveness/busy/stall questions from the two cached
                // words and only fall through to wavefront selection
                // when an issue is guaranteed to happen.
                if cu.cached_live {
                    out.any_alive = true;
                }
                if cu.busy_until > now {
                    self.stats.busy_cycles += 1;
                    continue;
                }
                if !cu.cached_live {
                    continue;
                }
                if cu.cached_ready > now {
                    self.stats.stall_cycles += 1;
                    continue;
                }
                // `cached_ready <= now`: some live non-barrier
                // wavefront is ready, so the round-robin scan below
                // must find one.
                has_live = true;
            } else {
                // Dispatch whole workgroups into free wavefront slots.
                // Retired wavefronts are compacted once, *before* the slot
                // computation (not per dispatched group) — into the reuse
                // pool, preserving resident order — and the round-robin
                // cursor is re-clamped so compaction cannot leave it
                // pointing past the end of the list.
                if may_dispatch {
                    let mut i = 0;
                    while i < cu.wavefronts.len() {
                        if cu.wavefronts[i].done() {
                            let retired = cu.wavefronts.remove(i);
                            cu.pool.push(retired);
                        } else {
                            i += 1;
                        }
                    }
                    if cu.rr_cursor >= cu.wavefronts.len() {
                        cu.rr_cursor = 0;
                    }
                    while self.next_group < self.total_groups {
                        // All retired wavefronts were compacted into the
                        // pool above, so every resident wavefront is live.
                        let live = cu.wavefronts.len() as u32;
                        let free = self.env.config.max_wavefronts_per_cu - live;
                        let first_item = self.next_group * self.env.workgroup_size;
                        let items_in_group = self
                            .env
                            .workgroup_size
                            .min(self.env.global_size - first_item);
                        let needed = self.env.config.wavefronts_per_group(items_in_group);
                        if needed > free {
                            // Re-armed by the next retirement on this CU.
                            cu.dispatch_hint = false;
                            break;
                        }
                        for wf_idx in 0..needed {
                            let first_local = wf_idx * self.env.config.wavefront_size;
                            let items = self
                                .env
                                .config
                                .wavefront_size
                                .min(items_in_group - first_local);
                            let wave = match cu.pool.pop() {
                                Some(mut recycled) => {
                                    recycled.reinit(
                                        self.next_group,
                                        first_item + first_local,
                                        first_local,
                                        items,
                                    );
                                    recycled
                                }
                                None => W::new(
                                    self.env.config.wavefront_size,
                                    self.next_group,
                                    first_item + first_local,
                                    first_local,
                                    items,
                                ),
                            };
                            cu.wavefronts.push(wave);
                            self.stats.wavefronts += 1;
                        }
                        self.next_group += 1;
                        out.dispatched = true;
                        cu.dirty = true;
                    }
                }

                has_live = cu.wavefronts.iter().any(|w| !w.done());
                if has_live {
                    out.any_alive = true;
                }
                if cu.busy_until > now {
                    self.stats.busy_cycles += 1;
                    continue;
                }
            }
            // Round-robin wavefront selection (wrap by subtraction:
            // the resident count is not a power of two, so `%` here
            // is a hardware divide on the hottest scheduler path).
            // The scan doubles as the event scan: it records the
            // earliest readiness among the issuable wavefronts it did
            // *not* pick, so the post-issue summary can be completed
            // in O(1) instead of rescanning the list in `advance`.
            let n_wf = cu.wavefronts.len();
            let mut chosen = None;
            let mut min_other = u64::MAX;
            let mut idx = cu.rr_cursor;
            for _ in 0..n_wf {
                if idx >= n_wf {
                    idx -= n_wf;
                }
                let wf = &cu.wavefronts[idx];
                if !wf.done() && !wf.at_barrier() {
                    let r = wf.ready_at();
                    if chosen.is_none() && r <= now {
                        chosen = Some(idx);
                    } else {
                        min_other = min_other.min(r);
                    }
                }
                idx += 1;
            }
            let Some(idx) = chosen else {
                if has_live {
                    self.stats.stall_cycles += 1;
                }
                continue;
            };
            cu.rr_cursor = if idx + 1 >= n_wf { 0 } else { idx + 1 };

            let retired = Self::issue(
                &self.env,
                self.memory,
                &mut self.cache,
                cu,
                idx,
                now,
                min_other,
                &mut self.stats,
                &mut self.scratch,
                self.trace.as_deref_mut(),
            )?;
            if retired {
                cu.dispatch_hint = true;
                out.became_done = true;
            }
        }
        Ok(out)
    }

    /// Issues one vector instruction for wavefront `idx` of `cu`:
    /// delegates the lane loop to the wave engine, then performs the
    /// engine-independent beat/latency/occupancy accounting and
    /// barrier-release bookkeeping. Returns whether a wavefront
    /// retired (freeing a dispatch slot).
    ///
    /// `min_other` is the earliest readiness among the issuable
    /// wavefronts the selection scan did *not* pick: combined with the
    /// issued wavefront's new readiness it completes the CU's cached
    /// event summary without another list scan. Barrier arrivals and
    /// retirements can move other wavefronts (group release), so those
    /// paths fall back to marking the summary dirty.
    #[allow(clippy::too_many_arguments)]
    fn issue(
        env: &IssueEnv<'_>,
        memory: &mut [u32],
        cache: &mut SharedCache,
        cu: &mut ComputeUnit<W>,
        idx: usize,
        now: u64,
        min_other: u64,
        stats: &mut RunStats,
        scratch: &mut W::Scratch,
        trace: Option<&mut ExecTrace>,
    ) -> Result<bool, SimError> {
        if let Some(trace) = trace {
            cu.wavefronts[idx].observe(env, memory.len(), cu.local_mem.len(), trace);
        }
        let wf = &mut cu.wavefronts[idx];
        let (inst, lane_count, mem_ready, local_beats) =
            match wf.step(env, memory, &mut cu.local_mem, cache, now, scratch)? {
                StepOut::Retired => {
                    cu.dirty = true;
                    return Ok(true);
                }
                StepOut::Issued {
                    inst,
                    lane_count,
                    mem_ready,
                    local_beats,
                } => (inst, lane_count, mem_ready, local_beats),
            };
        stats.vector_instructions += 1;
        stats.lane_ops += u64::from(lane_count);

        let base_beats = u64::from(
            match env.pes_shift {
                Some(s) => (lane_count + (1 << s) - 1) >> s,
                None => lane_count.div_ceil(env.config.pes_per_cu),
            }
            .max(1),
        );
        // One decode for the whole timing model: occupancy beats
        // (divides serialize on the shared iterative divider) and
        // result latency together.
        let (beats, latency) = match inst {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => match op {
                AluOp::Mul => (base_beats, u64::from(env.config.mul_latency)),
                AluOp::Divu | AluOp::Remu => (
                    base_beats + u64::from(lane_count) * u64::from(env.config.div_serial),
                    u64::from(env.config.div_latency),
                ),
                _ => (base_beats, u64::from(env.config.alu_latency)),
            },
            // Memory latency is folded into `mem_ready`.
            Inst::Lw { .. } | Inst::Sw { .. } => (base_beats, 0),
            // Bank conflicts occupy the issue stage for extra beats:
            // the LRAM crossbar replays the beat until every bank has
            // delivered its distinct words.
            Inst::Lwl { .. } | Inst::Swl { .. } => (
                base_beats + local_beats,
                u64::from(env.config.local_latency),
            ),
            _ => (base_beats, u64::from(env.config.alu_latency)),
        };
        stats.lram_conflict_cycles += local_beats;
        let new_ready = (now + beats + latency).max(mem_ready);
        let wf = &mut cu.wavefronts[idx];
        wf.set_ready_at(new_ready);
        cu.busy_until = now + beats;
        let became_done = matches!(inst, Inst::Ret) && cu.wavefronts[idx].done();

        // Workgroup barrier release: once every live wavefront of the
        // group has arrived (or exited), advance the waiters. Checked
        // when a barrier is reached and when a wavefront retires —
        // both events can complete a group.
        if matches!(inst, Inst::Bar) || became_done {
            let group = cu.wavefronts[idx].group_id();
            Self::release_barrier_group(cu, group, now);
            cu.dirty = true;
        } else {
            // The only state change was the issued wavefront's new
            // readiness: the cached summary is exact again.
            cu.cached_ready = min_other.min(new_ready);
            cu.cached_live = true;
            cu.dirty = false;
        }
        Ok(became_done)
    }

    /// Advances every waiting wavefront of `group` past its barrier if
    /// no live wavefront of the group is still on its way there.
    fn release_barrier_group(cu: &mut ComputeUnit<W>, group: u32, now: u64) {
        let all_arrived = cu
            .wavefronts
            .iter()
            .filter(|w| !w.done() && w.group_id() == group)
            .all(|w| w.at_barrier());
        let any_waiting = cu
            .wavefronts
            .iter()
            .any(|w| !w.done() && w.group_id() == group && w.at_barrier());
        if all_arrived && any_waiting {
            for w in cu
                .wavefronts
                .iter_mut()
                .filter(|w| !w.done() && w.group_id() == group)
            {
                w.release_from_barrier(now);
            }
        }
    }
}

/// Shared `observe` tail used by both engines once they have resolved
/// the issuing PC and the ascending-ordered issue set: computes
/// per-lane addresses, store values and branch outcomes from a
/// register-read closure (`reg(ordinal, r)` reads register `r` of the
/// ordinal-th issuing lane) and records them into the trace. Only
/// memory and branch instructions leave observations.
#[allow(clippy::too_many_arguments)]
pub(crate) fn observe_issue(
    trace: &mut ExecTrace,
    env: &IssueEnv<'_>,
    pc: u32,
    lane_count: usize,
    contiguous: bool,
    memory_words: usize,
    local_words: usize,
    mut reg: impl FnMut(usize, ggpu_isa::inst::Reg) -> u32,
) {
    let Some(&inst) = env.program.get(pc as usize) else {
        return;
    };
    let pcu = pc as usize;
    let addr = |reg: &mut dyn FnMut(usize, ggpu_isa::inst::Reg) -> u32,
                l: usize,
                rs1: ggpu_isa::inst::Reg,
                imm: i16| reg(l, rs1).wrapping_add(imm as i32 as u32);
    match inst {
        Inst::Lw { rs1, imm, .. } => {
            let lanes: Vec<(u32, u32)> = (0..lane_count)
                .map(|l| (addr(&mut reg, l, rs1, imm), 0))
                .collect();
            trace.record_access(pcu, false, false, contiguous, &lanes, memory_words);
        }
        Inst::Sw { rs1, rs2, imm } => {
            let lanes: Vec<(u32, u32)> = (0..lane_count)
                .map(|l| (addr(&mut reg, l, rs1, imm), reg(l, rs2)))
                .collect();
            trace.record_access(pcu, false, true, contiguous, &lanes, memory_words);
        }
        Inst::Lwl { rs1, imm, .. } => {
            let lanes: Vec<(u32, u32)> = (0..lane_count)
                .map(|l| (addr(&mut reg, l, rs1, imm), 0))
                .collect();
            trace.record_access(pcu, true, false, contiguous, &lanes, local_words);
        }
        Inst::Swl { rs1, rs2, imm } => {
            let lanes: Vec<(u32, u32)> = (0..lane_count)
                .map(|l| (addr(&mut reg, l, rs1, imm), reg(l, rs2)))
                .collect();
            trace.record_access(pcu, true, true, contiguous, &lanes, local_words);
        }
        Inst::Branch { cond, rs1, rs2, .. } => {
            let mut any_taken = false;
            let mut any_not = false;
            for l in 0..lane_count {
                if cond.test(reg(l, rs1), reg(l, rs2)) {
                    any_taken = true;
                } else {
                    any_not = true;
                }
            }
            trace.record_branch(pcu, any_taken, any_not);
        }
        _ => {}
    }
}

/// The retained scalar reference engine: per-lane `Vec`s and scalar
/// loops, byte-for-byte the pre-trait simulator semantics. The only
/// behavioural-neutral change from the historical code is that the
/// per-instruction lane list and the per-access touched-line list live
/// in a reusable [`ScalarScratch`] instead of being allocated fresh
/// for every instruction.
pub(crate) struct ScalarWave {
    pcs: Vec<u32>,
    active: Vec<bool>,
    regs: Vec<u32>,
    global_ids: Vec<u32>,
    local_ids: Vec<u32>,
    group_id: u32,
    ready_at: u64,
    done: bool,
    at_barrier: bool,
}

/// Reusable buffers for the scalar engine's instruction loop.
#[derive(Default)]
pub(crate) struct ScalarScratch {
    /// Active lanes at the issuing PC.
    lanes: Vec<usize>,
    /// Cache lines already arbitrated for this instruction.
    touched_lines: Vec<u64>,
    /// LRAM word indices of this issue, in lane order (banked model).
    local_words: Vec<u32>,
}

impl ScalarWave {
    fn reg(&self, lane: usize, r: ggpu_isa::inst::Reg) -> u32 {
        self.regs[lane * 32 + r.index()]
    }

    fn min_active_pc(&self) -> Option<u32> {
        self.pcs
            .iter()
            .zip(&self.active)
            .filter(|(_, &a)| a)
            .map(|(&pc, _)| pc)
            .min()
    }
}

impl Wave for ScalarWave {
    type Scratch = ScalarScratch;

    fn new(wf_size: u32, group_id: u32, first_global: u32, first_local: u32, items: u32) -> Self {
        let n = wf_size as usize;
        let mut wave = Self {
            pcs: vec![0; n],
            active: vec![false; n],
            regs: vec![0; n * 32],
            global_ids: vec![0; n],
            local_ids: vec![0; n],
            group_id,
            ready_at: 0,
            done: items == 0,
            at_barrier: false,
        };
        for lane in 0..items as usize {
            wave.active[lane] = true;
            wave.global_ids[lane] = first_global + lane as u32;
            wave.local_ids[lane] = first_local + lane as u32;
        }
        wave
    }

    fn reinit(&mut self, group_id: u32, first_global: u32, first_local: u32, items: u32) {
        self.pcs.fill(0);
        self.active.fill(false);
        self.regs.fill(0);
        self.global_ids.fill(0);
        self.local_ids.fill(0);
        for lane in 0..items as usize {
            self.active[lane] = true;
            self.global_ids[lane] = first_global + lane as u32;
            self.local_ids[lane] = first_local + lane as u32;
        }
        self.group_id = group_id;
        self.ready_at = 0;
        self.done = items == 0;
        self.at_barrier = false;
    }

    fn done(&self) -> bool {
        self.done
    }

    fn at_barrier(&self) -> bool {
        self.at_barrier
    }

    fn ready_at(&self) -> u64 {
        self.ready_at
    }

    fn set_ready_at(&mut self, t: u64) {
        self.ready_at = t;
    }

    fn group_id(&self) -> u32 {
        self.group_id
    }

    fn step(
        &mut self,
        env: &IssueEnv<'_>,
        memory: &mut [u32],
        local_mem: &mut [u32],
        cache: &mut SharedCache,
        now: u64,
        scratch: &mut ScalarScratch,
    ) -> Result<StepOut, SimError> {
        let Some(pc) = self.min_active_pc() else {
            self.done = true;
            return Ok(StepOut::Retired);
        };
        let inst = *env
            .program
            .get(pc as usize)
            .ok_or(SimError::PcOutOfRange { pc })?;

        scratch.lanes.clear();
        scratch
            .lanes
            .extend((0..self.pcs.len()).filter(|&l| self.active[l] && self.pcs[l] == pc));
        let lanes = &scratch.lanes;
        let lane_count = lanes.len() as u32;
        let mut mem_ready: u64 = now;
        let mut local_beats: u64 = 0;

        match inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                for &l in lanes {
                    let v = op.apply(self.reg(l, rs1), self.reg(l, rs2));
                    self.regs[l * 32 + rd.index()] = v;
                    self.pcs[l] = pc + 1;
                }
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                for &l in lanes {
                    let v = op.apply(self.reg(l, rs1), imm as i32 as u32);
                    self.regs[l * 32 + rd.index()] = v;
                    self.pcs[l] = pc + 1;
                }
            }
            Inst::Lui { rd, imm } => {
                for &l in lanes {
                    self.regs[l * 32 + rd.index()] = u32::from(imm) << 16;
                    self.pcs[l] = pc + 1;
                }
            }
            Inst::ReadId { rd, src } => {
                for &l in lanes {
                    let v = match src {
                        IdSource::GlobalId => self.global_ids[l],
                        IdSource::LocalId => self.local_ids[l],
                        IdSource::GroupId => self.group_id,
                        IdSource::GroupSize => env.workgroup_size,
                        IdSource::GlobalSize => env.global_size,
                    };
                    self.regs[l * 32 + rd.index()] = v;
                    self.pcs[l] = pc + 1;
                }
            }
            Inst::Param { rd, idx: p } => {
                // `idx` is a free u8 in the encoding; a slot outside
                // the 8 RTM words is a typed error, not an index panic.
                let v = *env
                    .params
                    .get(p as usize)
                    .ok_or(SimError::ParamOutOfRange { pc, idx: p })?;
                for &l in lanes {
                    self.regs[l * 32 + rd.index()] = v;
                    self.pcs[l] = pc + 1;
                }
            }
            Inst::Lw { rd, rs1, imm } | Inst::Sw { rs1, rs2: rd, imm } => {
                let is_store = matches!(inst, Inst::Sw { .. });
                // Coalesce: unique lines accessed once, in first-touch
                // lane order (the arbitration order is architectural:
                // it decides bank/interface queueing).
                scratch.touched_lines.clear();
                for &l in lanes {
                    let addr = self.reg(l, rs1).wrapping_add(imm as i32 as u32);
                    if !addr.is_multiple_of(4) {
                        return Err(SimError::Unaligned { addr });
                    }
                    let widx = (addr / 4) as usize;
                    if widx >= memory.len() {
                        return Err(SimError::MemoryOutOfBounds { addr });
                    }
                    if is_store {
                        memory[widx] = self.reg(l, rd);
                    } else {
                        self.regs[l * 32 + rd.index()] = memory[widx];
                    }
                    let line = u64::from(addr) / u64::from(cache.line_bytes());
                    if !scratch.touched_lines.contains(&line) {
                        scratch.touched_lines.push(line);
                        let ready = cache.access(now, u64::from(addr), is_store);
                        mem_ready = mem_ready.max(ready);
                    }
                    self.pcs[l] = pc + 1;
                }
            }
            Inst::Lwl { rd, rs1, imm } | Inst::Swl { rs1, rs2: rd, imm } => {
                let is_store = matches!(inst, Inst::Swl { .. });
                let banked = env.config.lram.banks();
                scratch.local_words.clear();
                for &l in lanes {
                    let addr = self.reg(l, rs1).wrapping_add(imm as i32 as u32);
                    if !addr.is_multiple_of(4) {
                        return Err(SimError::Unaligned { addr });
                    }
                    let widx = (addr / 4) as usize;
                    if widx >= local_mem.len() {
                        return Err(SimError::LocalOutOfBounds { addr });
                    }
                    // Collected before the access commits: a `lwl`
                    // whose destination is its own address register
                    // destroys the address.
                    if banked.is_some() {
                        scratch.local_words.push(widx as u32);
                    }
                    if is_store {
                        local_mem[widx] = self.reg(l, rd);
                    } else {
                        self.regs[l * 32 + rd.index()] = local_mem[widx];
                    }
                    self.pcs[l] = pc + 1;
                }
                if let Some(banks) = banked {
                    local_beats = crate::memsys::lram_conflict_beats(
                        &scratch.local_words,
                        banks,
                        env.config.pes_per_cu as usize,
                    );
                }
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                for &l in lanes {
                    let taken = cond.test(self.reg(l, rs1), self.reg(l, rs2));
                    self.pcs[l] = if taken { target } else { pc + 1 };
                }
            }
            Inst::Jmp { target } => {
                for &l in lanes {
                    self.pcs[l] = target;
                }
            }
            Inst::Bar => {
                // All active lanes must arrive together (uniform
                // control flow at barriers, as on real SIMT machines).
                let active_count = self.active.iter().filter(|&&a| a).count();
                if lanes.len() != active_count {
                    return Err(SimError::DivergentBarrier { pc });
                }
                self.at_barrier = true;
                // PCs advance only on release.
            }
            Inst::Ret => {
                for &l in lanes {
                    self.active[l] = false;
                }
                if self.active.iter().all(|&a| !a) {
                    self.done = true;
                }
            }
        }
        Ok(StepOut::Issued {
            inst,
            lane_count,
            mem_ready,
            local_beats,
        })
    }

    fn observe(
        &self,
        env: &IssueEnv<'_>,
        memory_words: usize,
        local_words: usize,
        trace: &mut ExecTrace,
    ) {
        // Mirrors the selection at the top of `step`: min active PC,
        // then every active lane parked there, in ascending order.
        let Some(pc) = self.min_active_pc() else {
            return;
        };
        let lanes: Vec<usize> = (0..self.pcs.len())
            .filter(|&l| self.active[l] && self.pcs[l] == pc)
            .collect();
        let contiguous = lanes.iter().enumerate().all(|(i, &l)| i == l);
        observe_issue(
            trace,
            env,
            pc,
            lanes.len(),
            contiguous,
            memory_words,
            local_words,
            |i, r| self.reg(lanes[i], r),
        );
    }

    fn release_from_barrier(&mut self, now: u64) {
        self.at_barrier = false;
        for l in 0..self.pcs.len() {
            if self.active[l] {
                self.pcs[l] += 1;
            }
        }
        self.ready_at = self.ready_at.max(now + 1);
    }

    fn fingerprint(&self, h: &mut DefaultHasher) {
        self.pcs.hash(h);
        self.active.hash(h);
        self.regs.hash(h);
        self.global_ids.hash(h);
        self.local_ids.hash(h);
        self.group_id.hash(h);
        self.done.hash(h);
        self.at_barrier.hash(h);
    }

    fn has_lane(&self, lane: u32) -> bool {
        (lane as usize) < self.pcs.len()
    }

    fn reg_slot(&mut self, lane: u32, reg: u8) -> Option<&mut u32> {
        if !self.has_lane(lane) {
            return None;
        }
        self.regs
            .get_mut(lane as usize * 32 + usize::from(reg & 31))
    }

    fn pc_slot(&mut self, lane: u32) -> Option<&mut u32> {
        self.pcs.get_mut(lane as usize)
    }

    fn toggle_exec(&mut self, lane: u32) {
        if let Some(a) = self.active.get_mut(lane as usize) {
            *a = !*a;
        }
    }
}
