//! Concrete execution traces: the soundness oracle for the abstract
//! interpreter in `ggpu-lint`.
//!
//! When a trace is attached ([`crate::Gpu::launch_traced`]), the
//! scheduler calls the wave engine's read-only `observe` hook
//! immediately before every issue. The hook replays the engine's own
//! issue-set selection without mutating anything and records, per
//! program counter:
//!
//! * the address interval actually touched (all issued lanes, even
//!   lanes past the first faulting one — the abstract state must
//!   cover would-be accesses too);
//! * whether any lane was out of bounds or unaligned;
//! * whether a local store raced: two lanes of the *completing
//!   prefix* (the lanes the simulator architecturally commits before
//!   faulting, in ascending order) wrote different values to one
//!   word;
//! * whether a branch issue had mixed outcomes (lane divergence);
//! * the observed coalescing class, cache-line count and LRAM
//!   bank-conflict degree of each issue, under the geometry the trace
//!   was constructed with.
//!
//! The property suite (`tests/prop_absint_soundness.rs`) then checks
//! that every abstract prediction over-approximates these
//! observations, on both the scalar and the SoA backend — whose
//! traces must also be identical to each other.

/// Observed facts about one instruction (indexed by program counter).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InstTrace {
    /// Wavefront issues observed at this PC (memory and branch
    /// instructions only).
    pub issues: u64,
    /// Any memory access was observed here.
    pub any_access: bool,
    /// Lowest byte address any lane computed (valid iff `any_access`).
    pub min_addr: u32,
    /// Highest byte address any lane computed (valid iff `any_access`).
    pub max_addr: u32,
    /// Some lane's word index was past the memory bound.
    pub any_oob: bool,
    /// Some lane's address was not word-aligned.
    pub any_unaligned: bool,
    /// Two lanes of one completing issue wrote different values to
    /// the same local word.
    pub racy_write: bool,
    /// Some branch issue had both taken and not-taken lanes.
    pub divergent_branch: bool,
    /// Most distinct cache lines one issue touched (global accesses).
    pub max_lines: u32,
    /// Worst per-beat bank-conflict degree of one issue (local
    /// accesses): the most distinct words any single bank had to
    /// serve.
    pub max_bank_conflict: u32,
    /// Worst observed coalescing class over contiguous-prefix issues,
    /// as a rank matching `ggpu_lint::CoalescingClass::rank` (0
    /// broadcast, 1 unit-stride, 2 strided, 3 scattered).
    pub max_class_rank: u8,
}

/// A whole-launch execution trace with the memory-system geometry the
/// observations are judged under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecTrace {
    /// Cache line size in bytes (line counting).
    pub line_bytes: u32,
    /// LRAM bank count (conflict degree).
    pub lram_banks: u32,
    /// Lanes served per LRAM beat.
    pub pes: u32,
    /// Per-PC observations; grows on demand.
    pub insts: Vec<InstTrace>,
}

impl ExecTrace {
    /// An empty trace judged under the given geometry. Use the same
    /// values as the `AnalysisCtx` the predictions came from.
    pub fn new(line_bytes: u32, lram_banks: u32, pes: u32) -> Self {
        Self {
            line_bytes: line_bytes.max(1),
            lram_banks: lram_banks.max(1),
            pes: pes.max(1),
            insts: Vec::new(),
        }
    }

    /// The observation slot for `pc`, if anything was recorded there.
    pub fn at(&self, pc: usize) -> Option<&InstTrace> {
        self.insts.get(pc)
    }

    fn entry(&mut self, pc: usize) -> &mut InstTrace {
        if self.insts.len() <= pc {
            self.insts.resize(pc + 1, InstTrace::default());
        }
        // Just resized to cover `pc`; direct indexing would be
        // panic-safe but the lint forbids the idiom in lib code.
        match self.insts.get_mut(pc) {
            Some(e) => e,
            None => unreachable!(),
        }
    }

    /// Records one observed memory issue. `lanes` holds `(address,
    /// stored value)` pairs in ascending lane order for every issued
    /// lane (`value` is ignored for loads); `contiguous` says the
    /// issue mask was a `0..n` lane prefix; `bound_words` is the word
    /// count of the accessed memory.
    pub fn record_access(
        &mut self,
        pc: usize,
        local: bool,
        is_store: bool,
        contiguous: bool,
        lanes: &[(u32, u32)],
        bound_words: usize,
    ) {
        if lanes.is_empty() {
            return;
        }
        let line_bytes = u64::from(self.line_bytes);
        let banks = self.lram_banks;
        let pes = self.pes as usize;
        let t = self.entry(pc);
        t.issues += 1;

        // Address interval and fault flags cover every issued lane:
        // the abstract address must contain even the accesses the
        // fault at an earlier lane prevented.
        let mut completing = lanes.len();
        for (i, &(addr, _)) in lanes.iter().enumerate() {
            if t.any_access {
                t.min_addr = t.min_addr.min(addr);
                t.max_addr = t.max_addr.max(addr);
            } else {
                t.any_access = true;
                t.min_addr = addr;
                t.max_addr = addr;
            }
            let unaligned = addr % 4 != 0;
            let oob = (addr / 4) as usize >= bound_words;
            t.any_unaligned |= unaligned;
            t.any_oob |= oob;
            if (unaligned || oob) && i < completing {
                completing = i;
            }
        }
        // Everything below describes committed architectural effects
        // and cost, so it only covers the completing prefix: the
        // simulator visits lanes in ascending order and faults at the
        // first bad one.
        let done = &lanes[..completing];

        if local && is_store {
            // Race: two committed writes to one word with different
            // values. Same-value collisions are order-insensitive and
            // benign — exactly the K012 contract.
            let mut words: Vec<(u32, u32)> = Vec::with_capacity(done.len());
            for &(addr, value) in done {
                let w = addr / 4;
                match words.iter().find(|&&(pw, _)| pw == w) {
                    Some(&(_, pv)) => t.racy_write |= pv != value,
                    None => words.push((w, value)),
                }
            }
        }

        if local {
            // Bank conflicts: lanes are served in beats of `pes`; a
            // bank's degree per beat is the number of *distinct* words
            // it must deliver (same-word lanes broadcast in one read).
            for beat in done.chunks(pes.max(1)) {
                let mut per_bank: Vec<(u32, u32)> = Vec::with_capacity(beat.len());
                for &(addr, _) in beat {
                    let w = addr / 4;
                    let b = w % banks;
                    if !per_bank.contains(&(b, w)) {
                        per_bank.push((b, w));
                    }
                }
                for &(b, _) in &per_bank {
                    let degree = per_bank.iter().filter(|&&(pb, _)| pb == b).count() as u32;
                    t.max_bank_conflict = t.max_bank_conflict.max(degree);
                }
            }
        } else {
            // Cache lines: distinct lines over the committed lanes.
            let mut lines: Vec<u64> = Vec::with_capacity(done.len());
            for &(addr, _) in done {
                let line = u64::from(addr) / line_bytes;
                if !lines.contains(&line) {
                    lines.push(line);
                }
            }
            t.max_lines = t.max_lines.max(lines.len() as u32);
        }

        // Coalescing class of this issue — only meaningful when the
        // issue mask is a contiguous lane prefix (consecutive local
        // ids), which is what the lane-affine prediction describes.
        if contiguous {
            t.max_class_rank = t.max_class_rank.max(classify(lanes));
        }
    }

    /// Records one observed branch issue.
    pub fn record_branch(&mut self, pc: usize, any_taken: bool, any_not_taken: bool) {
        let t = self.entry(pc);
        t.issues += 1;
        t.divergent_branch |= any_taken && any_not_taken;
    }
}

/// Ranks one contiguous issue's address pattern: 0 broadcast, 1
/// unit-stride (±1 word), 2 strided (constant word multiple), 3
/// scattered. Matches `ggpu_lint::CoalescingClass::rank`.
fn classify(lanes: &[(u32, u32)]) -> u8 {
    if lanes.len() <= 1 {
        return 0;
    }
    let first = lanes[0].0;
    if lanes.iter().all(|&(a, _)| a == first) {
        return 0;
    }
    let d = lanes[1].0.wrapping_sub(lanes[0].0);
    let constant_stride = lanes.windows(2).all(|w| w[1].0.wrapping_sub(w[0].0) == d);
    if !constant_stride {
        return 3;
    }
    if d == 4 || d == 4u32.wrapping_neg() {
        1
    } else if d.is_multiple_of(4) {
        2
    } else {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_and_fault_flags_cover_all_lanes() {
        let mut t = ExecTrace::new(64, 8, 8);
        // Lane 1 is unaligned; lane 2's address must still widen the
        // interval even though the machine faults before it commits.
        t.record_access(3, false, false, true, &[(0, 0), (6, 0), (400, 0)], 64);
        let e = t.at(3).unwrap();
        assert!(e.any_unaligned);
        assert!(e.any_oob); // 400/4 = 100 >= 64
        assert_eq!((e.min_addr, e.max_addr), (0, 400));
        // Only lane 0 committed: one line.
        assert_eq!(e.max_lines, 1);
    }

    #[test]
    fn racy_write_needs_differing_values_in_completing_prefix() {
        let mut t = ExecTrace::new(64, 8, 8);
        // Same word, same value: benign.
        t.record_access(0, true, true, true, &[(8, 7), (8, 7)], 4096);
        assert!(!t.at(0).unwrap().racy_write);
        // Same word, different values: a race.
        t.record_access(1, true, true, true, &[(8, 7), (8, 9)], 4096);
        assert!(t.at(1).unwrap().racy_write);
        // The conflicting lane sits past a faulting lane: no race
        // (its store never architecturally happened).
        t.record_access(2, true, true, true, &[(8, 7), (2, 0), (8, 9)], 4096);
        let e = t.at(2).unwrap();
        assert!(!e.racy_write);
        assert!(e.any_unaligned);
    }

    #[test]
    fn bank_conflicts_count_distinct_words_per_bank() {
        let mut t = ExecTrace::new(64, 8, 2);
        // Broadcast: one word, many lanes — degree 1.
        t.record_access(0, true, false, true, &[(0, 0), (0, 0)], 4096);
        assert_eq!(t.at(0).unwrap().max_bank_conflict, 1);
        // Two words 8 banks apart in one beat (pes=2): both hit bank
        // 0 — degree 2.
        t.record_access(1, true, false, true, &[(0, 0), (32, 0)], 4096);
        assert_eq!(t.at(1).unwrap().max_bank_conflict, 2);
    }

    #[test]
    fn classifier_ranks_stride_patterns() {
        assert_eq!(classify(&[(100, 0)]), 0);
        assert_eq!(classify(&[(100, 0), (100, 0)]), 0);
        assert_eq!(classify(&[(0, 0), (4, 0), (8, 0)]), 1);
        assert_eq!(classify(&[(8, 0), (4, 0), (0, 0)]), 1);
        assert_eq!(classify(&[(0, 0), (32, 0), (64, 0)]), 2);
        assert_eq!(classify(&[(0, 0), (5, 0), (10, 0)]), 3);
        assert_eq!(classify(&[(0, 0), (4, 0), (12, 0)]), 3);
    }
}
