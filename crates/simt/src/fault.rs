//! Seeded single-event-upset (SEU) fault injection for the SIMT
//! simulator: the mechanism half of the resilience subsystem.
//!
//! This module defines *what* can be perturbed ([`FaultSite`]), *how*
//! a perturbation is guarded ([`Protection`], modelling per-word
//! parity / SEC-DED of the underlying SRAM macro) and *what came of
//! it ([`InjectionOutcome`] / [`FaultReport`]). The policy half —
//! deriving injection sites from a design's actual SRAM macro map,
//! Monte-Carlo campaigns, outcome classification and AVF — lives in
//! the `ggpu-fault` crate, which builds [`FaultPlan`]s and feeds them
//! to [`crate::Gpu::launch_hardened`].
//!
//! # Semantics
//!
//! * An [`Injection`] becomes effective at the first scheduler pass at
//!   or after its `cycle`. Between passes no architectural state is
//!   read, so this is bit-equivalent to flipping the bit at exactly
//!   `cycle` on a cycle-stepped machine.
//! * Protection is evaluated *at injection time*: the model assumes
//!   the corrupted word is read before it is next overwritten, which
//!   makes detection conservative (an over-approximation of a real
//!   scrubbing-free memory).
//! * A hardened run with an empty plan (and any watchdog setting) is
//!   bit-identical to [`crate::Gpu::launch`]: the harness acts only at
//!   pass times that already exist and mutates nothing.

use std::fmt;

/// A word-granular architectural location a fault can land in. Lane,
/// slot, word and register indices outside the running machine resolve
/// to [`InjectionOutcome::Vacant`] — out-of-range coordinates are
/// never an error, which is what makes random fuzzing over the full
/// index space panic-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A register of one lane of one resident wavefront slot
    /// (register-file SRAM banks).
    Register {
        /// Compute-unit index.
        cu: u32,
        /// Resident wavefront slot.
        slot: u32,
        /// Lane within the wavefront.
        lane: u32,
        /// Architectural register (taken modulo 32).
        reg: u8,
    },
    /// A word of one CU's local scratchpad (LRAM macro).
    LocalWord {
        /// Compute-unit index.
        cu: u32,
        /// Word index within the scratchpad.
        word: u32,
    },
    /// A word of global memory (data-cache / runtime-memory domain).
    GlobalWord {
        /// Word index within global memory.
        word: u32,
    },
    /// The program counter of one lane (instruction-fetch corruption
    /// approximating CRAM upsets).
    Pc {
        /// Compute-unit index.
        cu: u32,
        /// Resident wavefront slot.
        slot: u32,
        /// Lane within the wavefront.
        lane: u32,
    },
    /// The execution-mask bit of one lane (scheduler-state domain);
    /// the injection toggles the lane's active flag.
    ExecMask {
        /// Compute-unit index.
        cu: u32,
        /// Resident wavefront slot.
        slot: u32,
        /// Lane within the wavefront.
        lane: u32,
    },
}

impl FaultSite {
    /// Short architectural-domain name for reports.
    pub fn domain(&self) -> &'static str {
        match self {
            FaultSite::Register { .. } => "register",
            FaultSite::LocalWord { .. } => "lram",
            FaultSite::GlobalWord { .. } => "global",
            FaultSite::Pc { .. } => "pc",
            FaultSite::ExecMask { .. } => "exec-mask",
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::Register {
                cu,
                slot,
                lane,
                reg,
            } => {
                write!(f, "register cu{cu} slot{slot} lane{lane} r{reg}")
            }
            FaultSite::LocalWord { cu, word } => write!(f, "lram cu{cu} word{word}"),
            FaultSite::GlobalWord { word } => write!(f, "global word{word}"),
            FaultSite::Pc { cu, slot, lane } => write!(f, "pc cu{cu} slot{slot} lane{lane}"),
            FaultSite::ExecMask { cu, slot, lane } => {
                write!(f, "exec-mask cu{cu} slot{slot} lane{lane}")
            }
        }
    }
}

/// Per-word protection of the SRAM macro a fault lands in — the
/// behavioural model of the ECC columns `ggpu-tech`'s
/// `SramConfig::with_ecc` pays area for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Protection {
    /// Unprotected: every flip lands silently.
    #[default]
    None,
    /// Even parity: an odd number of flipped codeword bits is detected
    /// (uncorrectable); an even number lands silently.
    Parity,
    /// Extended-Hamming SEC-DED: one flipped codeword bit is corrected,
    /// an even number (&ge; 2) is detected uncorrectable, an odd number
    /// &ge; 3 mis-corrects and lands.
    SecDed,
}

/// One planned bit-flip event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Simulated cycle at (or after) which the flip lands.
    pub cycle: u64,
    /// The architectural word hit.
    pub site: FaultSite,
    /// Bit positions flipped within the 32-bit architectural word
    /// (taken modulo 32; ignored for [`FaultSite::ExecMask`], which
    /// toggles the lane's active flag).
    pub flips: Vec<u8>,
    /// Total flipped bits in the *stored codeword* (data + check
    /// bits). Drives the [`Protection`] decision; flips landing in
    /// check bits contribute here without appearing in `flips`.
    /// Clamped up to `flips.len()` if set lower.
    pub codeword_flips: u32,
    /// Protection of the macro backing the site.
    pub protection: Protection,
    /// Reporting label — the hierarchical path of the SRAM macro this
    /// site was derived from (or a synthetic name for flop domains).
    pub label: String,
}

impl Injection {
    /// A single-bit upset with protection derived later by the caller.
    pub fn single(cycle: u64, site: FaultSite, bit: u8, protection: Protection) -> Self {
        Self {
            cycle,
            site,
            flips: vec![bit],
            codeword_flips: 1,
            protection,
            label: String::new(),
        }
    }

    /// Sets the reporting label (builder-style).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// A deterministic, cycle-ordered set of injections for one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    injections: Vec<Injection>,
}

impl FaultPlan {
    /// An empty plan — a hardened run with this plan is bit-identical
    /// to a plain launch.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a plan, stably ordering injections by cycle (ties keep
    /// caller order, so identical inputs give identical runs).
    pub fn new(mut injections: Vec<Injection>) -> Self {
        injections.sort_by_key(|i| i.cycle);
        Self { injections }
    }

    /// Number of planned injections.
    pub fn len(&self) -> usize {
        self.injections.len()
    }

    /// `true` when no injections are planned.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// The planned injections in application order.
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }
}

/// Retirement-progress watchdog configuration.
///
/// Every `interval` cycles (evaluated at the first scheduler pass at
/// or past the deadline) the watchdog fingerprints the architectural
/// state — PCs, registers, masks, LRAM, dispatch position; global
/// memory is excluded for cost. The check only *arms* when vector
/// instructions were issued since the previous check, so long memory
/// stalls (which always resolve: modelled latencies are finite) can
/// never trip it. After `patience` consecutive armed checks with an
/// unchanged fingerprint the run aborts with `SimError::Watchdog` —
/// a spinning kernel is flagged in `(patience + 1) * interval` cycles
/// instead of running to `max_cycles`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Cycles between heartbeat checks.
    pub interval: u64,
    /// Consecutive no-progress checks tolerated before flagging.
    pub patience: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            interval: 2048,
            patience: 2,
        }
    }
}

impl WatchdogConfig {
    /// A watchdog sized for a per-stage cycle budget: a livelocked
    /// kernel is flagged within roughly `budget` simulated cycles
    /// (`(patience + 1) * interval <= budget` with the default
    /// patience), instead of the default fixed cadence. Used by the
    /// flow supervisor's campaign stage so its cycle budgets reuse the
    /// retirement-progress watchdog rather than growing a second hang
    /// detector.
    ///
    /// Budgets below the default interval clamp to a 64-cycle
    /// heartbeat so the watchdog can still arm.
    pub fn for_budget(budget: u64) -> Self {
        let patience = Self::default().patience;
        let interval = (budget / (u64::from(patience) + 1)).max(64);
        Self { interval, patience }
    }
}

/// Options for [`crate::Gpu::launch_hardened`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HardenedOptions {
    /// Bit-flips to inject.
    pub plan: FaultPlan,
    /// Livelock watchdog; `None` disables it.
    pub watchdog: Option<WatchdogConfig>,
}

/// What happened when one injection was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionOutcome {
    /// The site did not resolve to live state (index out of range or
    /// retired wavefront slot): architecturally masked by vacancy.
    Vacant,
    /// The flip landed in architectural state undetected.
    Applied,
    /// SEC-DED corrected the flip; no state changed.
    Corrected,
    /// Three or more codeword flips under SEC-DED: the decoder
    /// "corrected" the wrong bit and the corruption landed.
    MisCorrected,
}

impl fmt::Display for InjectionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InjectionOutcome::Vacant => "vacant",
            InjectionOutcome::Applied => "applied",
            InjectionOutcome::Corrected => "corrected",
            InjectionOutcome::MisCorrected => "mis-corrected",
        })
    }
}

/// One applied injection, as recorded in the [`FaultLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Pass cycle at which the injection took effect.
    pub cycle: u64,
    /// The injection's reporting label.
    pub label: String,
    /// What happened.
    pub outcome: InjectionOutcome,
}

/// Journal of every injection applied during a hardened run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultLog {
    /// Applied injections in application order.
    pub events: Vec<FaultEvent>,
}

impl FaultLog {
    /// Events with the given outcome.
    pub fn count(&self, outcome: InjectionOutcome) -> usize {
        self.events.iter().filter(|e| e.outcome == outcome).count()
    }
}

/// Structured description of a detected-uncorrectable fault — the
/// payload of `SimError::UncorrectableFault`. A typed error, not a
/// panic and not silent data corruption: campaigns classify it as
/// `DetectedUncorrectable`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Pass cycle at which the fault was detected.
    pub cycle: u64,
    /// Reporting label of the injection (macro path).
    pub label: String,
    /// Architectural domain hit.
    pub domain: &'static str,
    /// Number of flipped codeword bits.
    pub flips: u32,
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "uncorrectable fault at cycle {} in {} ({}, {} flipped bits)",
            self.cycle,
            if self.label.is_empty() {
                "<unlabelled>"
            } else {
                &self.label
            },
            self.domain,
            self.flips
        )
    }
}

/// Result of a hardened run that ran to completion.
#[derive(Debug, Clone)]
pub struct HardenedRun {
    /// Architectural counters, bit-comparable to a plain launch.
    pub stats: crate::gpu::RunStats,
    /// Every injection applied, with its outcome.
    pub log: FaultLog,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_orders_by_cycle_stably() {
        let i = |cycle: u64, bit: u8| {
            Injection::single(
                cycle,
                FaultSite::GlobalWord { word: 0 },
                bit,
                Protection::None,
            )
        };
        let plan = FaultPlan::new(vec![i(30, 0), i(10, 1), i(30, 2), i(10, 3)]);
        let got: Vec<(u64, u8)> = plan
            .injections()
            .iter()
            .map(|j| (j.cycle, j.flips[0]))
            .collect();
        assert_eq!(got, vec![(10, 1), (10, 3), (30, 0), (30, 2)]);
    }

    #[test]
    fn display_formats() {
        let s = FaultSite::Register {
            cu: 1,
            slot: 2,
            lane: 3,
            reg: 4,
        };
        assert_eq!(s.to_string(), "register cu1 slot2 lane3 r4");
        assert_eq!(s.domain(), "register");
        assert_eq!(FaultSite::GlobalWord { word: 9 }.domain(), "global");
        let r = FaultReport {
            cycle: 7,
            label: "cu/rf_bank".into(),
            domain: "register",
            flips: 2,
        };
        assert!(r.to_string().contains("cycle 7"));
        assert!(r.to_string().contains("cu/rf_bank"));
        assert_eq!(InjectionOutcome::MisCorrected.to_string(), "mis-corrected");
    }

    #[test]
    fn log_counts() {
        let mut log = FaultLog::default();
        log.events.push(FaultEvent {
            cycle: 1,
            label: "a".into(),
            outcome: InjectionOutcome::Applied,
        });
        log.events.push(FaultEvent {
            cycle: 2,
            label: "b".into(),
            outcome: InjectionOutcome::Vacant,
        });
        assert_eq!(log.count(InjectionOutcome::Applied), 1);
        assert_eq!(log.count(InjectionOutcome::Corrected), 0);
    }

    #[test]
    fn watchdog_for_budget_bounds_detection_latency() {
        // Detection within (patience + 1) * interval <= budget.
        for budget in [1_000u64, 10_000, 1_000_000] {
            let w = WatchdogConfig::for_budget(budget);
            assert!(
                (u64::from(w.patience) + 1) * w.interval <= budget,
                "budget {budget}: interval {} patience {}",
                w.interval,
                w.patience
            );
        }
        // Tiny budgets clamp to a heartbeat the watchdog can arm at.
        assert_eq!(WatchdogConfig::for_budget(1).interval, 64);
    }
}
