//! The data-oriented SIMT wave engine: the `Soa` fast path behind
//! [`crate::Accelerator`].
//!
//! Layout and iteration strategy (vs. the scalar reference engine):
//!
//! * **Structure-of-arrays register file** — `regs[r * wf + lane]`
//!   keeps each architectural register's 64 lane values contiguous, so
//!   a vector instruction reads two cache-dense rows and writes one,
//!   instead of striding 32-word-apart per-lane register blocks.
//! * **64-bit `exec` bitmask** — the active set is one word;
//!   the issue set at the minimum PC is computed by bit iteration
//!   (`trailing_zeros`), never by collecting a `Vec<usize>` of lanes.
//! * **Uniform-PC fast path** — converged wavefronts (the common case)
//!   skip the min-PC scan entirely: a `uniform` hint says every active
//!   lane shares one PC, invalidated only by divergent branches and
//!   injected PC/exec-mask faults, re-established when a scan finds
//!   the issue set equal to the active set.
//! * **Dense-issue vector loops** — when the issue mask is a
//!   contiguous prefix (`issue & (issue + 1) == 0`), operand rows are
//!   staged into a reusable scratch arena and the ALU/branch work runs
//!   as a per-op specialized loop the compiler can autovectorize.
//! * **Batched memory-port arbitration** — global accesses compute the
//!   whole wavefront's addresses in one vectorized pass into the
//!   arena, then walk lanes in ascending order for the architectural
//!   part (alignment/bounds, store/load, touched-line dedupe, cache
//!   port arbitration) so the cache sees the *exact* access sequence
//!   the scalar reference generates.
//!
//! The scratch arena ([`SoaScratch`]) lives in the scheduler and is
//! reused across every instruction of a run: the steady-state
//! instruction loop performs zero heap allocations.
//!
//! Bit-identity with the scalar engine (outputs, `RunStats`, memory
//! image, fault semantics) is enforced by the equivalence property
//! suite; every lane visit with an observable side effect happens in
//! ascending lane order exactly as in the reference.

use crate::engine::{observe_issue, IssueEnv, StepOut, Wave};
use crate::gpu::SimError;
use crate::memsys::SharedCache;
use crate::trace::ExecTrace;
use ggpu_isa::inst::{AluOp, BranchCond, IdSource, Inst};
use std::collections::hash_map::DefaultHasher;
use std::hash::Hash;

/// Maximum wavefront size the bitmask engine supports (one `u64` of
/// execution mask).
pub(crate) const MAX_WF: u32 = 64;

/// One wavefront in structure-of-arrays layout.
pub(crate) struct SoaWave {
    /// Wavefront size (lanes), `<= 64`.
    wf: u32,
    /// Per-lane PCs (architectural even for inactive lanes: an
    /// injected exec-mask fault can reactivate a lane, which then
    /// resumes at its stored PC).
    pcs: Box<[u32]>,
    /// Active-lane bitmask, bit `l` = lane `l`.
    exec: u64,
    /// Register file, reg-major: `regs[r * wf + lane]`.
    regs: Box<[u32]>,
    /// Work-items actually populated at dispatch (`<= wf`).
    items: u32,
    first_global: u32,
    first_local: u32,
    group_id: u32,
    ready_at: u64,
    done: bool,
    at_barrier: bool,
    /// Hint: every active lane shares one PC. May be pessimistically
    /// `false` (the scan re-establishes it); must never be wrongly
    /// `true`.
    uniform: bool,
    /// The shared PC of every active lane while `uniform` holds. The
    /// stored `pcs` slots of *active* lanes are then allowed to go
    /// stale: converged execution advances this one word per
    /// instruction instead of refilling the PC row, and the row is
    /// materialized only at divergence points, `ret`, and the
    /// injection hooks that hand out raw PC views. Inactive lanes'
    /// stored PCs stay authoritative throughout (exec-mask revival).
    lazy_pc: u32,
}

/// Reusable staging arena for the SoA engine: operand rows, the
/// wavefront's batched addresses, and the touched-cache-line set.
pub(crate) struct SoaScratch {
    a: [u32; MAX_WF as usize],
    b: [u32; MAX_WF as usize],
    addr: [u32; MAX_WF as usize],
    lines: Vec<u64>,
    /// LRAM word indices of this issue, in lane order (banked model).
    local_words: Vec<u32>,
}

// `[u32; 64]` has no derived `Default` (std stops at 32); zeroed is
// the right initial state anyway.
impl Default for SoaScratch {
    fn default() -> Self {
        Self {
            a: [0; MAX_WF as usize],
            b: [0; MAX_WF as usize],
            addr: [0; MAX_WF as usize],
            lines: Vec::new(),
            local_words: Vec::new(),
        }
    }
}

/// Per-op specialized row loop: the `match` pins the operation so
/// `AluOp::apply` inlines to a single arm and the loop autovectorizes.
fn alu_rows(op: AluOp, out: &mut [u32], a: &[u32], b: &[u32]) {
    macro_rules! rows {
        ($op:expr) => {
            for i in 0..out.len() {
                out[i] = $op.apply(a[i], b[i]);
            }
        };
    }
    match op {
        AluOp::Add => rows!(AluOp::Add),
        AluOp::Sub => rows!(AluOp::Sub),
        AluOp::Mul => rows!(AluOp::Mul),
        AluOp::Divu => rows!(AluOp::Divu),
        AluOp::Remu => rows!(AluOp::Remu),
        AluOp::And => rows!(AluOp::And),
        AluOp::Or => rows!(AluOp::Or),
        AluOp::Xor => rows!(AluOp::Xor),
        AluOp::Sll => rows!(AluOp::Sll),
        AluOp::Srl => rows!(AluOp::Srl),
        AluOp::Sra => rows!(AluOp::Sra),
        AluOp::Slt => rows!(AluOp::Slt),
        AluOp::Sltu => rows!(AluOp::Sltu),
    }
}

/// Immediate-operand variant of [`alu_rows`].
fn alu_rows_imm(op: AluOp, out: &mut [u32], a: &[u32], imm: u32) {
    macro_rules! rows {
        ($op:expr) => {
            for i in 0..out.len() {
                out[i] = $op.apply(a[i], imm);
            }
        };
    }
    match op {
        AluOp::Add => rows!(AluOp::Add),
        AluOp::Sub => rows!(AluOp::Sub),
        AluOp::Mul => rows!(AluOp::Mul),
        AluOp::Divu => rows!(AluOp::Divu),
        AluOp::Remu => rows!(AluOp::Remu),
        AluOp::And => rows!(AluOp::And),
        AluOp::Or => rows!(AluOp::Or),
        AluOp::Xor => rows!(AluOp::Xor),
        AluOp::Sll => rows!(AluOp::Sll),
        AluOp::Srl => rows!(AluOp::Srl),
        AluOp::Sra => rows!(AluOp::Sra),
        AluOp::Slt => rows!(AluOp::Slt),
        AluOp::Sltu => rows!(AluOp::Sltu),
    }
}

/// Per-cond specialized branch loop over staged operand rows; returns
/// how many issued lanes took the branch.
fn branch_rows(
    cond: BranchCond,
    pcs: &mut [u32],
    a: &[u32],
    b: &[u32],
    target: u32,
    fall: u32,
) -> u32 {
    macro_rules! rows {
        ($cond:expr) => {{
            let mut taken = 0u32;
            for i in 0..pcs.len() {
                let t = $cond.test(a[i], b[i]);
                taken += u32::from(t);
                pcs[i] = if t { target } else { fall };
            }
            taken
        }};
    }
    match cond {
        BranchCond::Eq => rows!(BranchCond::Eq),
        BranchCond::Ne => rows!(BranchCond::Ne),
        BranchCond::Lt => rows!(BranchCond::Lt),
        BranchCond::Ge => rows!(BranchCond::Ge),
        BranchCond::Ltu => rows!(BranchCond::Ltu),
        BranchCond::Geu => rows!(BranchCond::Geu),
    }
}

/// Count-only variant of [`branch_rows`]: how many operand pairs take
/// the branch, without touching the PC row. Used by converged
/// wavefronts, whose agreeing outcomes never materialize PCs.
fn branch_count_rows(cond: BranchCond, a: &[u32], b: &[u32]) -> u32 {
    macro_rules! rows {
        ($cond:expr) => {{
            let mut taken = 0u32;
            for i in 0..a.len() {
                taken += u32::from($cond.test(a[i], b[i]));
            }
            taken
        }};
    }
    match cond {
        BranchCond::Eq => rows!(BranchCond::Eq),
        BranchCond::Ne => rows!(BranchCond::Ne),
        BranchCond::Lt => rows!(BranchCond::Lt),
        BranchCond::Ge => rows!(BranchCond::Ge),
        BranchCond::Ltu => rows!(BranchCond::Ltu),
        BranchCond::Geu => rows!(BranchCond::Geu),
    }
}

/// Disjoint `(out, a)` register-row views for the in-register ALU
/// loops; `rdo != r1`, both multiples of the row width, `n` at most
/// one row.
fn rows2(regs: &mut [u32], rdo: usize, r1: usize, n: usize) -> (&mut [u32], &[u32]) {
    if rdo > r1 {
        let (lo, hi) = regs.split_at_mut(rdo);
        (&mut hi[..n], &lo[r1..r1 + n])
    } else {
        let (lo, hi) = regs.split_at_mut(rdo + n);
        (&mut lo[rdo..], &hi[r1 - rdo - n..r1 - rdo])
    }
}

/// Disjoint `(out, a, b)` register-row views; `rdo` differs from both
/// source offsets (the sources may alias each other — shared borrows).
fn rows3(
    regs: &mut [u32],
    rdo: usize,
    r1: usize,
    r2: usize,
    n: usize,
) -> (&mut [u32], &[u32], &[u32]) {
    if rdo > r1 && rdo > r2 {
        let (lo, hi) = regs.split_at_mut(rdo);
        (&mut hi[..n], &lo[r1..r1 + n], &lo[r2..r2 + n])
    } else if rdo < r1 && rdo < r2 {
        let end = rdo + n;
        let (lo, hi) = regs.split_at_mut(end);
        (
            &mut lo[rdo..],
            &hi[r1 - end..r1 - end + n],
            &hi[r2 - end..r2 - end + n],
        )
    } else {
        // `rdo` strictly between the two source rows.
        let hi_src = r1.max(r2);
        let lo_src = r1.min(r2);
        let (lo, rest) = regs.split_at_mut(rdo);
        let (mid, hi) = rest.split_at_mut(hi_src - rdo);
        let lo_row = &lo[lo_src..lo_src + n];
        let hi_row = &hi[..n];
        let out = &mut mid[..n];
        if r1 < r2 {
            (out, lo_row, hi_row)
        } else {
            (out, hi_row, lo_row)
        }
    }
}

impl SoaWave {
    /// Active mask for `items` populated lanes.
    fn items_mask(items: u32) -> u64 {
        if items == 0 {
            0
        } else if items >= 64 {
            u64::MAX
        } else {
            (1u64 << items) - 1
        }
    }

    /// Writes `val` into the PC of every issued lane.
    fn set_issued_pcs(&mut self, issue: u64, dense_n: usize, val: u32) {
        if dense_n > 0 {
            self.pcs[..dense_n].fill(val);
        } else {
            let mut m = issue;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                self.pcs[l] = val;
            }
        }
    }

    /// Advances the issued lanes' PCs to `val`: a converged wavefront
    /// moves the one shared lazy PC, a diverged one writes the stored
    /// slots.
    fn advance_issued_pcs(&mut self, issue: u64, dense_n: usize, val: u32) {
        if self.uniform {
            self.lazy_pc = val;
        } else {
            self.set_issued_pcs(issue, dense_n, val);
        }
    }

    /// Writes the lazy shared PC back into every active lane's stored
    /// slot. Required before any raw `pcs` view escapes (injection
    /// hooks) and before deactivating lanes, whose stored PC then
    /// becomes authoritative.
    fn materialize_pcs(&mut self) {
        if self.uniform {
            let mut m = self.exec;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                self.pcs[l] = self.lazy_pc;
            }
        }
    }

    /// Writes `val` into the destination row for every issued lane and
    /// advances their PCs — the shape of every broadcast-result
    /// instruction (`lui`, `param`, uniform `ReadId` sources).
    fn broadcast(&mut self, issue: u64, dense_n: usize, rd_off: usize, val: u32, next_pc: u32) {
        if dense_n > 0 {
            self.regs[rd_off..rd_off + dense_n].fill(val);
        } else {
            let mut m = issue;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                self.regs[rd_off + l] = val;
            }
        }
        self.advance_issued_pcs(issue, dense_n, next_pc);
    }
}

impl Wave for SoaWave {
    type Scratch = SoaScratch;

    fn new(wf_size: u32, group_id: u32, first_global: u32, first_local: u32, items: u32) -> Self {
        let n = wf_size as usize;
        Self {
            wf: wf_size,
            pcs: vec![0; n].into_boxed_slice(),
            exec: Self::items_mask(items),
            regs: vec![0; n * 32].into_boxed_slice(),
            items,
            first_global,
            first_local,
            group_id,
            ready_at: 0,
            done: items == 0,
            at_barrier: false,
            uniform: true,
            lazy_pc: 0,
        }
    }

    fn reinit(&mut self, group_id: u32, first_global: u32, first_local: u32, items: u32) {
        self.pcs.fill(0);
        self.exec = Self::items_mask(items);
        self.regs.fill(0);
        self.items = items;
        self.first_global = first_global;
        self.first_local = first_local;
        self.group_id = group_id;
        self.ready_at = 0;
        self.done = items == 0;
        self.at_barrier = false;
        self.uniform = true;
        self.lazy_pc = 0;
    }

    fn done(&self) -> bool {
        self.done
    }

    fn at_barrier(&self) -> bool {
        self.at_barrier
    }

    fn ready_at(&self) -> u64 {
        self.ready_at
    }

    fn set_ready_at(&mut self, t: u64) {
        self.ready_at = t;
    }

    fn group_id(&self) -> u32 {
        self.group_id
    }

    fn step(
        &mut self,
        env: &IssueEnv<'_>,
        memory: &mut [u32],
        local_mem: &mut [u32],
        cache: &mut SharedCache,
        now: u64,
        scratch: &mut SoaScratch,
    ) -> Result<StepOut, SimError> {
        let exec = self.exec;
        if exec == 0 {
            self.done = true;
            return Ok(StepOut::Retired);
        }
        // Issue-set selection: uniform hint short-circuits the min-PC
        // scan for converged wavefronts (whose shared PC is the lazy
        // word — the stored row may be stale).
        let (pc, issue) = if self.uniform {
            (self.lazy_pc, exec)
        } else {
            let mut pc = u32::MAX;
            let mut issue = 0u64;
            let mut m = exec;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                let p = self.pcs[l];
                if p < pc {
                    pc = p;
                    issue = 1u64 << l;
                } else if p == pc {
                    issue |= 1u64 << l;
                }
            }
            if issue == exec {
                // Reconverged: every active lane is at the min PC
                // (their stored slots all hold it, so marking them
                // lazily shared is consistent).
                self.uniform = true;
                self.lazy_pc = pc;
            }
            (pc, issue)
        };
        let inst = *env
            .program
            .get(pc as usize)
            .ok_or(SimError::PcOutOfRange { pc })?;

        let lane_count = issue.count_ones();
        // Contiguous-prefix issue masks get the vector loops; `dense_n`
        // doubles as the flag (0 = bit-iterate).
        let dense_n = if (issue & issue.wrapping_add(1)) == 0 {
            lane_count as usize
        } else {
            0
        };
        let wf = self.wf as usize;
        let next_pc = pc + 1;
        let mut mem_ready: u64 = now;
        let mut local_beats: u64 = 0;

        match inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                let (r1, r2, rdo) = (rs1.index() * wf, rs2.index() * wf, rd.index() * wf);
                if dense_n > 0 {
                    let n = dense_n;
                    if rdo != r1 && rdo != r2 {
                        // Alias-free common case: operate straight on
                        // the register rows, no staging copies.
                        let (out, a, b) = rows3(&mut self.regs, rdo, r1, r2, n);
                        alu_rows(op, out, a, b);
                    } else {
                        // `rd` aliases a source: stage the operands.
                        scratch.a[..n].copy_from_slice(&self.regs[r1..r1 + n]);
                        scratch.b[..n].copy_from_slice(&self.regs[r2..r2 + n]);
                        alu_rows(
                            op,
                            &mut self.regs[rdo..rdo + n],
                            &scratch.a[..n],
                            &scratch.b[..n],
                        );
                    }
                } else {
                    let mut m = issue;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        self.regs[rdo + l] = op.apply(self.regs[r1 + l], self.regs[r2 + l]);
                    }
                }
                self.advance_issued_pcs(issue, dense_n, next_pc);
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let (r1, rdo) = (rs1.index() * wf, rd.index() * wf);
                let imm = imm as i32 as u32;
                if dense_n > 0 {
                    let n = dense_n;
                    if rdo != r1 {
                        let (out, a) = rows2(&mut self.regs, rdo, r1, n);
                        alu_rows_imm(op, out, a, imm);
                    } else {
                        scratch.a[..n].copy_from_slice(&self.regs[r1..r1 + n]);
                        alu_rows_imm(op, &mut self.regs[rdo..rdo + n], &scratch.a[..n], imm);
                    }
                } else {
                    let mut m = issue;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        self.regs[rdo + l] = op.apply(self.regs[r1 + l], imm);
                    }
                }
                self.advance_issued_pcs(issue, dense_n, next_pc);
            }
            Inst::Lui { rd, imm } => {
                self.broadcast(
                    issue,
                    dense_n,
                    rd.index() * wf,
                    u32::from(imm) << 16,
                    next_pc,
                );
            }
            Inst::ReadId { rd, src } => {
                let rdo = rd.index() * wf;
                match src {
                    IdSource::GroupId => {
                        self.broadcast(issue, dense_n, rdo, self.group_id, next_pc)
                    }
                    IdSource::GroupSize => {
                        self.broadcast(issue, dense_n, rdo, env.workgroup_size, next_pc)
                    }
                    IdSource::GlobalSize => {
                        self.broadcast(issue, dense_n, rdo, env.global_size, next_pc)
                    }
                    IdSource::GlobalId | IdSource::LocalId => {
                        // Lanes beyond `items` were never populated at
                        // dispatch and read id 0 (they can only execute
                        // after an injected exec-mask reactivation; the
                        // scalar reference leaves their id words zero).
                        let first = if matches!(src, IdSource::GlobalId) {
                            self.first_global
                        } else {
                            self.first_local
                        };
                        let items = self.items;
                        if dense_n > 0 {
                            let out = &mut self.regs[rdo..rdo + dense_n];
                            for (l, slot) in out.iter_mut().enumerate() {
                                let l = l as u32;
                                *slot = if l < items { first + l } else { 0 };
                            }
                        } else {
                            let mut m = issue;
                            while m != 0 {
                                let l = m.trailing_zeros();
                                m &= m - 1;
                                self.regs[rdo + l as usize] = if l < items { first + l } else { 0 };
                            }
                        }
                        self.advance_issued_pcs(issue, dense_n, next_pc);
                    }
                }
            }
            Inst::Param { rd, idx: p } => {
                let v = *env
                    .params
                    .get(p as usize)
                    .ok_or(SimError::ParamOutOfRange { pc, idx: p })?;
                self.broadcast(issue, dense_n, rd.index() * wf, v, next_pc);
            }
            Inst::Lw { rd, rs1, imm } | Inst::Sw { rs1, rs2: rd, imm } => {
                let is_store = matches!(inst, Inst::Sw { .. });
                let (base, vro) = (rs1.index() * wf, rd.index() * wf);
                let off = imm as i32 as u32;
                let line_bytes = u64::from(cache.line_bytes());
                let line_of = |addr: u32| {
                    // Power-of-two line sizes (the default geometry)
                    // take a shift instead of a per-lane divide.
                    if line_bytes.is_power_of_two() {
                        u64::from(addr) >> line_bytes.trailing_zeros()
                    } else {
                        u64::from(addr) / line_bytes
                    }
                };
                scratch.lines.clear();
                if dense_n > 0 {
                    let n = dense_n;
                    // Batched arbitration: one vectorizable pass
                    // computes the wavefront's addresses *and* the
                    // reductions every fast path keys on — OR of the
                    // low alignment bits, the maximum address for the
                    // bounds check, and XOR accumulators against the
                    // stride-4 and broadcast shapes.
                    let base_addr = self.regs[base].wrapping_add(off);
                    let mut misalign = 0u32;
                    let mut max_addr = 0u32;
                    let mut not_stride = 0u32;
                    let mut not_same = 0u32;
                    let mut expected = base_addr;
                    for (slot, r) in scratch.addr[..n].iter_mut().zip(&self.regs[base..base + n]) {
                        let a = r.wrapping_add(off);
                        *slot = a;
                        misalign |= a & 3;
                        max_addr = max_addr.max(a);
                        not_stride |= a ^ expected;
                        not_same |= a ^ base_addr;
                        expected = expected.wrapping_add(4);
                    }
                    let mem_top = (memory.len() as u64 * 4).min(u64::from(u32::MAX)) as u32;
                    let all_ok = misalign == 0 && max_addr < mem_top;
                    // Perfectly coalesced wavefronts (lane `l` at
                    // `base + 4l`, the dominant pattern of the shipped
                    // kernels) collapse to a bulk copy plus one cache
                    // access per consecutive line — the ascending
                    // first-touch order the scalar reference produces.
                    // (The overflow guard keeps the line enumeration's
                    // no-wrap assumption honest.)
                    let coalesced = all_ok
                        && not_stride == 0
                        && base_addr.checked_add(4 * (n as u32 - 1)).is_some();
                    if coalesced {
                        let widx = (base_addr / 4) as usize;
                        if is_store {
                            memory[widx..widx + n].copy_from_slice(&self.regs[vro..vro + n]);
                        } else {
                            self.regs[vro..vro + n].copy_from_slice(&memory[widx..widx + n]);
                        }
                        let last = line_of(base_addr + 4 * (n as u32 - 1));
                        for line in line_of(base_addr)..=last {
                            let ready = cache.access(now, line * line_bytes, is_store);
                            mem_ready = mem_ready.max(ready);
                        }
                        self.advance_issued_pcs(issue, dense_n, next_pc);
                    } else if all_ok && not_same == 0 {
                        // Broadcast access (every lane at one address —
                        // the uniform-pointer loads of the shipped
                        // kernels): one line touch; a store is hit by
                        // every lane in order, so the last lane wins.
                        let widx = (base_addr / 4) as usize;
                        if is_store {
                            memory[widx] = self.regs[vro + n - 1];
                        } else {
                            let val = memory[widx];
                            self.regs[vro..vro + n].fill(val);
                        }
                        mem_ready =
                            mem_ready.max(cache.access(now, u64::from(base_addr), is_store));
                        self.advance_issued_pcs(issue, dense_n, next_pc);
                    } else if all_ok {
                        // No lane faults: walk lanes in ascending order
                        // for the architectural effects, exactly as the
                        // scalar reference does (cache-port arbitration
                        // order is observable in the stats), with the
                        // per-lane checks hoisted.
                        for l in 0..n {
                            let addr = scratch.addr[l];
                            let widx = (addr / 4) as usize;
                            if is_store {
                                memory[widx] = self.regs[vro + l];
                            } else {
                                self.regs[vro + l] = memory[widx];
                            }
                            let line = line_of(addr);
                            // Coalesced runs touch the same line as the
                            // previous lane; full dedupe on change only.
                            if scratch.lines.last() != Some(&line) && !scratch.lines.contains(&line)
                            {
                                scratch.lines.push(line);
                                let ready = cache.access(now, u64::from(addr), is_store);
                                mem_ready = mem_ready.max(ready);
                            }
                        }
                        self.advance_issued_pcs(issue, dense_n, next_pc);
                    } else {
                        // Some lane faults: replay in ascending lane
                        // order with per-lane checks so the partial
                        // stores, cache traffic and the faulting
                        // address match the scalar reference exactly.
                        for l in 0..n {
                            let addr = scratch.addr[l];
                            if !addr.is_multiple_of(4) {
                                return Err(SimError::Unaligned { addr });
                            }
                            let widx = (addr / 4) as usize;
                            if widx >= memory.len() {
                                return Err(SimError::MemoryOutOfBounds { addr });
                            }
                            if is_store {
                                memory[widx] = self.regs[vro + l];
                            } else {
                                self.regs[vro + l] = memory[widx];
                            }
                            let line = line_of(addr);
                            if !scratch.lines.contains(&line) {
                                scratch.lines.push(line);
                                let ready = cache.access(now, u64::from(addr), is_store);
                                mem_ready = mem_ready.max(ready);
                            }
                            self.pcs[l] = next_pc;
                        }
                    }
                } else {
                    let mut m = issue;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let addr = self.regs[base + l].wrapping_add(off);
                        if !addr.is_multiple_of(4) {
                            return Err(SimError::Unaligned { addr });
                        }
                        let widx = (addr / 4) as usize;
                        if widx >= memory.len() {
                            return Err(SimError::MemoryOutOfBounds { addr });
                        }
                        if is_store {
                            memory[widx] = self.regs[vro + l];
                        } else {
                            self.regs[vro + l] = memory[widx];
                        }
                        let line = line_of(addr);
                        if !scratch.lines.contains(&line) {
                            scratch.lines.push(line);
                            let ready = cache.access(now, u64::from(addr), is_store);
                            mem_ready = mem_ready.max(ready);
                        }
                    }
                    self.advance_issued_pcs(issue, dense_n, next_pc);
                }
            }
            Inst::Lwl { rd, rs1, imm } | Inst::Swl { rs1, rs2: rd, imm } => {
                let is_store = matches!(inst, Inst::Swl { .. });
                let (base, vro) = (rs1.index() * wf, rd.index() * wf);
                let off = imm as i32 as u32;
                let banked = env.config.lram.banks();
                scratch.local_words.clear();
                let handled = if dense_n > 0 {
                    // Dense issue: one pass computes the address row
                    // and the shape reductions; the stride-4 and
                    // broadcast shapes collapse to bulk copies (no
                    // cache model on the local scratchpad — only the
                    // copy and the checks).
                    let n = dense_n;
                    let base_addr = self.regs[base].wrapping_add(off);
                    let mut misalign = 0u32;
                    let mut max_addr = 0u32;
                    let mut not_stride = 0u32;
                    let mut not_same = 0u32;
                    let mut expected = base_addr;
                    for r in &self.regs[base..base + n] {
                        let a = r.wrapping_add(off);
                        misalign |= a & 3;
                        max_addr = max_addr.max(a);
                        not_stride |= a ^ expected;
                        not_same |= a ^ base_addr;
                        expected = expected.wrapping_add(4);
                    }
                    let top = (local_mem.len() as u64 * 4).min(u64::from(u32::MAX)) as u32;
                    let all_ok = misalign == 0 && max_addr < top;
                    if all_ok
                        && not_stride == 0
                        && base_addr.checked_add(4 * (n as u32 - 1)).is_some()
                    {
                        let widx = (base_addr / 4) as usize;
                        if is_store {
                            local_mem[widx..widx + n].copy_from_slice(&self.regs[vro..vro + n]);
                        } else {
                            self.regs[vro..vro + n].copy_from_slice(&local_mem[widx..widx + n]);
                        }
                        if banked.is_some() {
                            // Lane `l` at word `widx + l`, the exact
                            // ascending sequence the reference collects.
                            scratch
                                .local_words
                                .extend((0..n as u32).map(|l| widx as u32 + l));
                        }
                        self.advance_issued_pcs(issue, dense_n, next_pc);
                        true
                    } else if all_ok && not_same == 0 {
                        // Broadcast: every lane touches one word; the
                        // reference stores in ascending lane order, so
                        // the last lane wins.
                        let widx = (base_addr / 4) as usize;
                        if is_store {
                            local_mem[widx] = self.regs[vro + n - 1];
                        } else {
                            let val = local_mem[widx];
                            self.regs[vro..vro + n].fill(val);
                        }
                        if banked.is_some() {
                            scratch.local_words.extend((0..n).map(|_| widx as u32));
                        }
                        self.advance_issued_pcs(issue, dense_n, next_pc);
                        true
                    } else {
                        false
                    }
                } else {
                    false
                };
                if !handled {
                    let mut m = issue;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let addr = self.regs[base + l].wrapping_add(off);
                        if !addr.is_multiple_of(4) {
                            return Err(SimError::Unaligned { addr });
                        }
                        let widx = (addr / 4) as usize;
                        if widx >= local_mem.len() {
                            return Err(SimError::LocalOutOfBounds { addr });
                        }
                        // Collected before the access commits: a `lwl`
                        // whose destination is its own address register
                        // destroys the address.
                        if banked.is_some() {
                            scratch.local_words.push(widx as u32);
                        }
                        if is_store {
                            local_mem[widx] = self.regs[vro + l];
                        } else {
                            self.regs[vro + l] = local_mem[widx];
                        }
                    }
                    self.advance_issued_pcs(issue, dense_n, next_pc);
                }
                if let Some(banks) = banked {
                    local_beats = crate::memsys::lram_conflict_beats(
                        &scratch.local_words,
                        banks,
                        env.config.pes_per_cu as usize,
                    );
                }
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let (r1, r2) = (rs1.index() * wf, rs2.index() * wf);
                if self.uniform {
                    // Converged: count the outcomes first, without
                    // touching the PC row. Agreement (the common case)
                    // moves only the shared lazy PC; a split outcome
                    // materializes per-lane targets and diverges.
                    let taken = if dense_n > 0 {
                        branch_count_rows(
                            cond,
                            &self.regs[r1..r1 + dense_n],
                            &self.regs[r2..r2 + dense_n],
                        )
                    } else {
                        let mut taken = 0u32;
                        let mut m = issue;
                        while m != 0 {
                            let l = m.trailing_zeros() as usize;
                            m &= m - 1;
                            taken += u32::from(cond.test(self.regs[r1 + l], self.regs[r2 + l]));
                        }
                        taken
                    };
                    if taken == 0 {
                        self.lazy_pc = next_pc;
                    } else if taken == lane_count {
                        self.lazy_pc = target;
                    } else {
                        self.uniform = false;
                        if dense_n > 0 {
                            let n = dense_n;
                            branch_rows(
                                cond,
                                &mut self.pcs[..n],
                                &self.regs[r1..r1 + n],
                                &self.regs[r2..r2 + n],
                                target,
                                next_pc,
                            );
                        } else {
                            let mut m = issue;
                            while m != 0 {
                                let l = m.trailing_zeros() as usize;
                                m &= m - 1;
                                let t = cond.test(self.regs[r1 + l], self.regs[r2 + l]);
                                self.pcs[l] = if t { target } else { next_pc };
                            }
                        }
                    }
                } else if dense_n > 0 {
                    // `pcs` and `regs` are distinct fields: the operand
                    // rows are read in place, no staging needed.
                    let n = dense_n;
                    branch_rows(
                        cond,
                        &mut self.pcs[..n],
                        &self.regs[r1..r1 + n],
                        &self.regs[r2..r2 + n],
                        target,
                        next_pc,
                    );
                } else {
                    let mut m = issue;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let t = cond.test(self.regs[r1 + l], self.regs[r2 + l]);
                        self.pcs[l] = if t { target } else { next_pc };
                    }
                }
            }
            Inst::Jmp { target } => {
                self.advance_issued_pcs(issue, dense_n, target);
            }
            Inst::Bar => {
                // All active lanes must arrive together (uniform
                // control flow at barriers, as on real SIMT machines).
                if issue != exec {
                    return Err(SimError::DivergentBarrier { pc });
                }
                self.at_barrier = true;
                // PCs advance only on release.
            }
            Inst::Ret => {
                // A retiring lane's stored PC becomes authoritative
                // (exec-mask revival resumes there): flush the lazy
                // shared PC into the issued slots before deactivating.
                if self.uniform {
                    self.set_issued_pcs(issue, dense_n, pc);
                }
                self.exec &= !issue;
                if self.exec == 0 {
                    self.done = true;
                }
            }
        }
        Ok(StepOut::Issued {
            inst,
            lane_count,
            mem_ready,
            local_beats,
        })
    }

    fn observe(
        &self,
        env: &IssueEnv<'_>,
        memory_words: usize,
        local_words: usize,
        trace: &mut ExecTrace,
    ) {
        if self.exec == 0 {
            return;
        }
        // Mirrors the issue-set selection at the top of `step`, but
        // strictly read-only: a reconvergence scan result is *not*
        // cached back into the `uniform`/`lazy_pc` hint here — the
        // step that follows will redo the scan and cache it itself.
        let (pc, issue) = if self.uniform {
            (self.lazy_pc, self.exec)
        } else {
            let mut pc = u32::MAX;
            let mut issue = 0u64;
            let mut m = self.exec;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                let p = self.pcs[l];
                if p < pc {
                    pc = p;
                    issue = 1u64 << l;
                } else if p == pc {
                    issue |= 1u64 << l;
                }
            }
            (pc, issue)
        };
        let contiguous = (issue & issue.wrapping_add(1)) == 0;
        // Ascending-ordered issue lane list, matching the side-effect
        // visit order of the lane loops in `step`.
        let mut lanes: Vec<usize> = Vec::with_capacity(issue.count_ones() as usize);
        let mut m = issue;
        while m != 0 {
            lanes.push(m.trailing_zeros() as usize);
            m &= m - 1;
        }
        let wf = self.wf as usize;
        observe_issue(
            trace,
            env,
            pc,
            lanes.len(),
            contiguous,
            memory_words,
            local_words,
            |i, r| self.regs[r.index() * wf + lanes[i]],
        );
    }

    fn release_from_barrier(&mut self, now: u64) {
        self.at_barrier = false;
        if self.uniform {
            self.lazy_pc += 1;
        } else {
            let mut m = self.exec;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                self.pcs[l] += 1;
            }
        }
        self.ready_at = self.ready_at.max(now + 1);
    }

    fn fingerprint(&self, h: &mut DefaultHasher) {
        // Hash the *architectural* PC of every lane — the stored slot,
        // or the shared lazy PC for active lanes of a converged wave —
        // through one code shape, so two architecturally identical
        // states hash identically regardless of which representation
        // they happen to be in (the watchdog compares hashes across
        // checks, and the scalar reference sees state equality).
        self.pcs.len().hash(h);
        for (l, &p) in self.pcs.iter().enumerate() {
            let arch = if self.uniform && (self.exec >> l) & 1 == 1 {
                self.lazy_pc
            } else {
                p
            };
            arch.hash(h);
        }
        self.exec.hash(h);
        self.regs.hash(h);
        self.items.hash(h);
        self.first_global.hash(h);
        self.first_local.hash(h);
        self.group_id.hash(h);
        self.done.hash(h);
        self.at_barrier.hash(h);
    }

    fn has_lane(&self, lane: u32) -> bool {
        lane < self.wf
    }

    fn reg_slot(&mut self, lane: u32, reg: u8) -> Option<&mut u32> {
        if !self.has_lane(lane) {
            return None;
        }
        self.regs
            .get_mut(usize::from(reg & 31) * self.wf as usize + lane as usize)
    }

    fn pc_slot(&mut self, lane: u32) -> Option<&mut u32> {
        // A raw PC view escapes: flush the lazy shared PC into the
        // stored row first, then drop the convergence hint (the caller
        // may rewrite the slot arbitrarily; pessimistic is always
        // safe).
        self.materialize_pcs();
        self.uniform = false;
        self.pcs.get_mut(lane as usize)
    }

    fn toggle_exec(&mut self, lane: u32) {
        // Materialize before the mask changes: a deactivated lane's
        // stored PC becomes authoritative, and a reactivated lane
        // resumes at its stored PC, which need not match the
        // convergent front.
        self.materialize_pcs();
        self.exec ^= 1u64 << lane;
        self.uniform = false;
    }
}
