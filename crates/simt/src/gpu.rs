//! The cycle-level SIMT machine.
//!
//! Execution model (following the FGPU): work-items are grouped into
//! wavefronts of 64, wavefronts into workgroups; workgroups are
//! dispatched to CUs with free wavefront slots; each CU issues one
//! vector instruction per ready wavefront, occupying its 8 PEs for
//! `active_lanes / 8` beats. Divergence uses multi-PC lockstep: every
//! work-item keeps its own PC, and the wavefront executes the minimum
//! active PC each issue — arbitrary control flow is supported and the
//! serialization cost of divergence emerges naturally.

use crate::accel::{resolve, Accelerator, LaunchRequest, ScalarAccelerator};
use crate::config::SimtConfig;
use crate::fault::{
    FaultLog, FaultReport, HardenedOptions, HardenedRun, Injection, WatchdogConfig,
};
use crate::memsys::MemStats;
use crate::trace::ExecTrace;
use ggpu_isa::asm::{assemble, AssembleError};
use ggpu_isa::inst::Inst;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// Local scratch (LRAM) words per CU. Public so site-map builders
/// (the `ggpu-fault` crate) can bound [`crate::FaultSite::LocalWord`]
/// coordinates to the live scratchpad.
pub const LOCAL_WORDS: usize = 4096;
/// Kernel parameter slots (FGPU runtime memory).
pub(crate) const PARAM_SLOTS: usize = 8;

/// A compiled kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (for reports).
    pub name: String,
    /// The instruction stream.
    pub program: Vec<Inst>,
}

impl Kernel {
    /// Assembles a kernel from source text.
    ///
    /// # Errors
    ///
    /// Returns [`AssembleError`] on syntax errors.
    pub fn from_asm(name: impl Into<String>, source: &str) -> Result<Self, AssembleError> {
        Ok(Self {
            name: name.into(),
            program: assemble(source)?,
        })
    }

    /// Assembles a kernel and runs the static verifier as a pre-flight
    /// gate: the kernel is rejected if any deny-level diagnostic is
    /// found (out-of-range control flow, missing `ret`, local-memory
    /// races, divergent barriers, …). Warnings are retained in the
    /// returned report but do not reject.
    ///
    /// # Errors
    ///
    /// Returns [`KernelVerifyError::Asm`] on syntax errors and
    /// [`KernelVerifyError::Lint`] (carrying the full report) when the
    /// verifier denies the program.
    /// Verification is memoized on `(program, policy)` via
    /// [`ggpu_lint::verify_program_cached`], so re-verifying the same
    /// kernel (benchmark loops, repeated fault campaigns) replays the
    /// stored report instead of re-running the abstract interpreter.
    pub fn from_asm_verified(
        name: impl Into<String>,
        source: &str,
    ) -> Result<Self, KernelVerifyError> {
        let name = name.into();
        let program = assemble(source).map_err(KernelVerifyError::Asm)?;
        let config = ggpu_lint::LintConfig::new();
        let report = ggpu_lint::verify_program_cached(&name, &program, &config);
        if report.denial_count() > 0 {
            return Err(KernelVerifyError::Lint(report));
        }
        Ok(Self { name, program })
    }

    /// Runs the static verifier over the (already assembled) program
    /// under the default policy.
    pub fn lint(&self) -> ggpu_lint::Report {
        ggpu_lint::verify_program(&self.name, &self.program, &ggpu_lint::LintConfig::new())
    }
}

/// Why [`Kernel::from_asm_verified`] rejected a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelVerifyError {
    /// The source failed to assemble.
    Asm(AssembleError),
    /// The verifier found deny-level diagnostics; the report carries
    /// every finding.
    Lint(ggpu_lint::Report),
}

impl fmt::Display for KernelVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelVerifyError::Asm(e) => write!(f, "assembly: {e}"),
            KernelVerifyError::Lint(report) => {
                write!(f, "static verification denied: {report}")
            }
        }
    }
}

impl Error for KernelVerifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KernelVerifyError::Asm(e) => Some(e),
            KernelVerifyError::Lint(_) => None,
        }
    }
}

impl From<AssembleError> for KernelVerifyError {
    fn from(e: AssembleError) -> Self {
        KernelVerifyError::Asm(e)
    }
}

/// Kernel launch geometry and arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Launch {
    /// Total number of work-items.
    pub global_size: u32,
    /// Work-items per workgroup.
    pub workgroup_size: u32,
    /// Kernel arguments (up to 8 words, the FGPU's RTM parameters).
    pub params: Vec<u32>,
}

impl Launch {
    /// A launch with the given geometry and arguments.
    pub fn new(global_size: u32, workgroup_size: u32, params: Vec<u32>) -> Self {
        Self {
            global_size,
            workgroup_size,
            params,
        }
    }
}

/// Simulator errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The launch parameters are invalid.
    BadLaunch(String),
    /// A global-memory access fell outside the configured memory.
    MemoryOutOfBounds {
        /// The offending byte address.
        addr: u32,
    },
    /// A global/local access was not word-aligned.
    Unaligned {
        /// The offending byte address.
        addr: u32,
    },
    /// A local-memory access fell outside the CU scratch.
    LocalOutOfBounds {
        /// The offending byte address.
        addr: u32,
    },
    /// Control flow left the program.
    PcOutOfRange {
        /// The offending instruction index.
        pc: u32,
    },
    /// A wavefront reached a workgroup barrier with divergent control
    /// flow (not all active lanes arrived together).
    DivergentBarrier {
        /// The barrier's instruction index.
        pc: u32,
    },
    /// The cycle ceiling was hit (runaway kernel).
    CycleLimit {
        /// The configured ceiling.
        limit: u64,
    },
    /// The machine configuration is structurally invalid (zero-sized
    /// geometry that would divide by zero inside the memory system).
    BadConfig(String),
    /// A `param` instruction named a slot outside the RTM's 8
    /// parameter words.
    ParamOutOfRange {
        /// The offending instruction index.
        pc: u32,
        /// The requested parameter slot.
        idx: u8,
    },
    /// The retirement-progress watchdog found no architectural
    /// progress across consecutive heartbeats: livelock.
    Watchdog {
        /// Cycle at which the watchdog fired.
        cycle: u64,
    },
    /// An injected fault was detected by parity/SEC-DED but could not
    /// be corrected — graceful degradation instead of silent data
    /// corruption.
    UncorrectableFault(FaultReport),
    /// A live compute unit had no schedulable event: every resident
    /// wavefront was parked at a barrier that can never release. This
    /// indicates a scheduler invariant violation (barrier release is
    /// immediate once a group has fully arrived) and is reported
    /// instead of silently re-polling every cycle.
    SchedulerStall {
        /// Cycle at which the scheduler found no event.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadLaunch(m) => write!(f, "bad launch: {m}"),
            SimError::MemoryOutOfBounds { addr } => {
                write!(f, "global memory access at {addr:#x} out of bounds")
            }
            SimError::Unaligned { addr } => write!(f, "unaligned word access at {addr:#x}"),
            SimError::LocalOutOfBounds { addr } => {
                write!(f, "local memory access at {addr:#x} out of bounds")
            }
            SimError::PcOutOfRange { pc } => write!(f, "pc {pc} outside program"),
            SimError::DivergentBarrier { pc } => {
                write!(f, "divergent control flow at barrier (pc {pc})")
            }
            SimError::CycleLimit { limit } => write!(f, "cycle limit {limit} exceeded"),
            SimError::BadConfig(m) => write!(f, "bad machine configuration: {m}"),
            SimError::ParamOutOfRange { pc, idx } => {
                write!(f, "param slot {idx} out of range at pc {pc}")
            }
            SimError::Watchdog { cycle } => {
                write!(f, "watchdog: no architectural progress by cycle {cycle}")
            }
            SimError::UncorrectableFault(report) => report.fmt(f),
            SimError::SchedulerStall { cycle } => {
                write!(f, "no schedulable event at cycle {cycle} (all-waiting CU)")
            }
        }
    }
}

impl Error for SimError {}

/// Counters of one kernel run.
///
/// Equality compares only the *architectural* counters (cycles,
/// instruction/stall/busy counts and memory statistics). The two
/// host-side performance fields — [`RunStats::sim_wall`] and
/// [`RunStats::sched_iterations`] — are excluded, so a run under the
/// event-driven scheduler compares equal to the same run under the
/// cycle-stepping reference even though the host cost differs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Total cycles until the last wavefront finished.
    pub cycles: u64,
    /// Vector instructions issued.
    pub vector_instructions: u64,
    /// Per-lane operations executed.
    pub lane_ops: u64,
    /// Wavefronts executed.
    pub wavefronts: u64,
    /// Workgroups executed.
    pub workgroups: u64,
    /// CU-cycles in which a CU held live wavefronts but none was
    /// ready to issue (all stalled on memory or long-latency results).
    pub stall_cycles: u64,
    /// CU-cycles spent with the issue stage occupied (vector beats,
    /// including serialized divides).
    pub busy_cycles: u64,
    /// Extra issue-stage beats spent serializing LRAM bank conflicts
    /// (zero under [`crate::LramModel::Ideal`]). Architectural: both
    /// backends must charge identical conflict cycles.
    pub lram_conflict_cycles: u64,
    /// Memory-system counters.
    pub mem: MemStats,
    /// Host wall-clock time spent inside the simulator for this run.
    pub sim_wall: Duration,
    /// Scheduler-loop passes the run took on the host. The
    /// cycle-stepping reference performs one pass per simulated cycle;
    /// the event-driven scheduler performs one per *event*, so the
    /// ratio between the two is the direct measure of skipped idle
    /// cycles.
    pub sched_iterations: u64,
}

impl PartialEq for RunStats {
    fn eq(&self, other: &Self) -> bool {
        // Host-perf fields (sim_wall, sched_iterations) intentionally
        // excluded: they describe the simulator, not the simulation.
        self.cycles == other.cycles
            && self.vector_instructions == other.vector_instructions
            && self.lane_ops == other.lane_ops
            && self.wavefronts == other.wavefronts
            && self.workgroups == other.workgroups
            && self.stall_cycles == other.stall_cycles
            && self.busy_cycles == other.busy_cycles
            && self.lram_conflict_cycles == other.lram_conflict_cycles
            && self.mem == other.mem
    }
}

impl Eq for RunStats {}

impl RunStats {
    /// Issue occupancy: fraction of CU-cycles that issued work, out of
    /// all CU-cycles with resident wavefronts.
    pub fn occupancy(&self) -> f64 {
        let total = self.busy_cycles + self.stall_cycles;
        if total == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total as f64
        }
    }

    /// Simulation throughput: simulated cycles per host second.
    ///
    /// Returns 0.0 when the run was too fast for the host clock to
    /// resolve.
    pub fn simulated_cycles_per_second(&self) -> f64 {
        let secs = self.sim_wall.as_secs_f64();
        if secs > 0.0 {
            self.cycles as f64 / secs
        } else {
            0.0
        }
    }
}

/// The SIMT machine: configuration plus global memory.
pub struct Gpu {
    config: SimtConfig,
    memory: Vec<u32>,
}

impl fmt::Debug for Gpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gpu")
            .field("config", &self.config)
            .field("memory_words", &self.memory.len())
            .finish()
    }
}

impl Gpu {
    /// Creates a machine with `memory_words` words of zeroed global
    /// memory.
    pub fn new(config: SimtConfig, memory_words: usize) -> Self {
        Self {
            config,
            memory: vec![0; memory_words],
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &SimtConfig {
        &self.config
    }

    /// Global memory size in bytes.
    pub fn memory_bytes(&self) -> u32 {
        (self.memory.len() * 4) as u32
    }

    /// Copies words into global memory at a byte address.
    ///
    /// # Errors
    ///
    /// Fails on unaligned or out-of-bounds addresses.
    pub fn write_words(&mut self, byte_addr: u32, data: &[u32]) -> Result<(), SimError> {
        let start = self.word_index(byte_addr)?;
        let end = start + data.len();
        if end > self.memory.len() {
            return Err(SimError::MemoryOutOfBounds {
                addr: byte_addr + (data.len() as u32) * 4,
            });
        }
        self.memory[start..end].copy_from_slice(data);
        Ok(())
    }

    /// Reads words from global memory at a byte address.
    ///
    /// # Errors
    ///
    /// Fails on unaligned or out-of-bounds addresses.
    pub fn read_words(&self, byte_addr: u32, len: usize) -> Result<Vec<u32>, SimError> {
        let start = self.word_index(byte_addr)?;
        let end = start + len;
        if end > self.memory.len() {
            return Err(SimError::MemoryOutOfBounds {
                addr: byte_addr + (len as u32) * 4,
            });
        }
        Ok(self.memory[start..end].to_vec())
    }

    fn word_index(&self, byte_addr: u32) -> Result<usize, SimError> {
        if !byte_addr.is_multiple_of(4) {
            return Err(SimError::Unaligned { addr: byte_addr });
        }
        let idx = (byte_addr / 4) as usize;
        if idx >= self.memory.len() {
            return Err(SimError::MemoryOutOfBounds { addr: byte_addr });
        }
        Ok(idx)
    }

    /// Runs `kernel` with the given launch geometry to completion
    /// using the event-driven scheduler.
    ///
    /// Instead of stepping time one cycle at a time, the scheduler
    /// jumps straight to the next timestamp at which any compute unit
    /// can change state (issue-stage release, operand or memory
    /// readiness, barrier release, workgroup dispatch), folding the
    /// busy/stall accounting of the skipped cycles into closed-form
    /// sums. The resulting [`RunStats`] are bit-identical to the
    /// cycle-stepping reference ([`Gpu::launch_reference`]); only the
    /// host-side `sched_iterations` and `sim_wall` fields differ, and
    /// those are excluded from `RunStats` equality.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on invalid launches, memory faults,
    /// control flow leaving the program, or the cycle ceiling.
    pub fn launch(&mut self, kernel: &Kernel, launch: &Launch) -> Result<RunStats, SimError> {
        self.launch_impl(kernel, launch, false, None, None, None)
    }

    /// Runs `kernel` on an explicitly chosen execution backend instead
    /// of the one [`crate::AccelBackend`] resolution would pick.
    ///
    /// Every backend is architecturally bit-identical, so this exists
    /// for validation and benchmarking (the equivalence suite and
    /// `simt_bench` drive the scalar and SoA engines over identical
    /// launches), not for functional selection.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] exactly as [`Gpu::launch`] does, plus
    /// [`SimError::BadConfig`] when the backend rejects the machine
    /// geometry (e.g. SoA with `wavefront_size > 64`).
    pub fn launch_with(
        &mut self,
        accel: &dyn Accelerator,
        kernel: &Kernel,
        launch: &Launch,
    ) -> Result<RunStats, SimError> {
        self.launch_impl(kernel, launch, false, None, Some(accel), None)
    }

    /// Runs `kernel` while recording a concrete execution trace into
    /// `trace` — the soundness oracle for the abstract interpreter in
    /// `ggpu-lint` (see [`ExecTrace`]). The run itself is bit-identical
    /// to [`Gpu::launch`]: the observe hook is read-only and fires
    /// immediately before each issue, so the trace also covers the
    /// issue a faulting run dies on.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] exactly as [`Gpu::launch`] does; on error
    /// the trace still holds everything observed up to and including
    /// the faulting issue.
    pub fn launch_traced(
        &mut self,
        kernel: &Kernel,
        launch: &Launch,
        trace: &mut ExecTrace,
    ) -> Result<RunStats, SimError> {
        self.launch_impl(kernel, launch, false, None, None, Some(trace))
    }

    /// [`Gpu::launch_traced`] on an explicitly chosen backend — how the
    /// soundness property suite drives both engines over identical
    /// launches and cross-checks their traces.
    ///
    /// # Errors
    ///
    /// As [`Gpu::launch_traced`], plus [`SimError::BadConfig`] for
    /// geometries the backend rejects.
    pub fn launch_traced_with(
        &mut self,
        accel: &dyn Accelerator,
        kernel: &Kernel,
        launch: &Launch,
        trace: &mut ExecTrace,
    ) -> Result<RunStats, SimError> {
        self.launch_impl(kernel, launch, false, None, Some(accel), Some(trace))
    }

    /// Runs `kernel` under the fault-injection / watchdog harness.
    ///
    /// The harness acts only at scheduler passes that already exist:
    /// pending injections land at the first pass at or after their
    /// cycle, and the watchdog heartbeat is evaluated at the first
    /// pass past each deadline. With an empty
    /// [`crate::fault::FaultPlan`] the run is **bit-identical** to
    /// [`Gpu::launch`] — same cycles, same [`RunStats`], same memory
    /// image — whether or not the watchdog is enabled, because a
    /// no-progress check mutates nothing.
    ///
    /// # Errors
    ///
    /// All of [`Gpu::launch`]'s errors, plus
    /// [`SimError::UncorrectableFault`] when a detected-uncorrectable
    /// fault occurs and [`SimError::Watchdog`] on livelock. Injected
    /// corruption may also surface as any ordinary [`SimError`]
    /// (e.g. a flipped PC leaving the program) — never as a panic.
    pub fn launch_hardened(
        &mut self,
        kernel: &Kernel,
        launch: &Launch,
        opts: &HardenedOptions,
    ) -> Result<HardenedRun, SimError> {
        let mut hard = HardenState::new(opts);
        let stats = self.launch_impl(kernel, launch, false, Some(&mut hard), None, None)?;
        Ok(HardenedRun {
            stats,
            log: hard.log,
        })
    }

    /// [`Gpu::launch_hardened`] on an explicitly chosen backend — the
    /// fault-semantics half of the backend-equivalence contract
    /// (injection outcomes, ECC verdicts, watchdog trips and partial
    /// memory effects must all match across backends).
    ///
    /// # Errors
    ///
    /// As [`Gpu::launch_hardened`], plus [`SimError::BadConfig`] for
    /// geometries the backend rejects.
    pub fn launch_hardened_with(
        &mut self,
        accel: &dyn Accelerator,
        kernel: &Kernel,
        launch: &Launch,
        opts: &HardenedOptions,
    ) -> Result<HardenedRun, SimError> {
        let mut hard = HardenState::new(opts);
        let stats = self.launch_impl(kernel, launch, false, Some(&mut hard), Some(accel), None)?;
        Ok(HardenedRun {
            stats,
            log: hard.log,
        })
    }

    /// Runs `kernel` under the cycle-stepping reference scheduler —
    /// the plain `now += 1` loop that visits every simulated cycle.
    ///
    /// This is the validation oracle for [`Gpu::launch`]: both
    /// schedulers execute the *same* per-cycle pass, so any change to
    /// the event-driven fast path can be checked for bit-identical
    /// architectural counters against this one. It is dramatically
    /// slower on memory-bound or barrier-heavy kernels and exists for
    /// verification, not for use.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] exactly as [`Gpu::launch`] does.
    pub fn launch_reference(
        &mut self,
        kernel: &Kernel,
        launch: &Launch,
    ) -> Result<RunStats, SimError> {
        self.launch_impl(kernel, launch, true, None, Some(&ScalarAccelerator), None)
    }

    fn launch_impl(
        &mut self,
        kernel: &Kernel,
        launch: &Launch,
        reference: bool,
        hard: Option<&mut HardenState>,
        accel: Option<&dyn Accelerator>,
        trace: Option<&mut ExecTrace>,
    ) -> Result<RunStats, SimError> {
        let wall = Instant::now();
        self.config.validate().map_err(SimError::BadConfig)?;
        if kernel.program.is_empty() {
            return Err(SimError::BadLaunch("empty program".into()));
        }
        if launch.global_size == 0 {
            return Err(SimError::BadLaunch("zero global size".into()));
        }
        let max_wg = self.config.wavefront_size * self.config.max_wavefronts_per_cu;
        if launch.workgroup_size == 0 || launch.workgroup_size > max_wg {
            return Err(SimError::BadLaunch(format!(
                "workgroup size {} outside 1-{max_wg}",
                launch.workgroup_size
            )));
        }
        if launch.params.len() > PARAM_SLOTS {
            return Err(SimError::BadLaunch(format!(
                "{} kernel parameters exceed the {PARAM_SLOTS} RTM slots",
                launch.params.len()
            )));
        }
        let mut params = [0u32; PARAM_SLOTS];
        params[..launch.params.len()].copy_from_slice(&launch.params);

        let accel =
            accel.unwrap_or_else(|| resolve(self.config.backend, self.config.wavefront_size));
        let mut stats = accel.run(LaunchRequest {
            config: self.config,
            program: &kernel.program,
            params,
            global_size: launch.global_size,
            workgroup_size: launch.workgroup_size,
            memory: &mut self.memory,
            reference,
            hard,
            trace,
        })?;
        stats.sim_wall = wall.elapsed();
        Ok(stats)
    }
}

/// Mutable state of the fault-injection / watchdog harness for one
/// hardened run. Owned by [`Gpu::launch_hardened`] and lent to the
/// scheduler; `None` in the scheduler means a plain run and the
/// harness hook is an exact no-op.
pub(crate) struct HardenState {
    /// Injections sorted by cycle (from the [`crate::fault::FaultPlan`]).
    pub(crate) injections: Vec<Injection>,
    /// Next injection to apply.
    pub(crate) next_inj: usize,
    /// Watchdog configuration, if enabled.
    pub(crate) watchdog: Option<WatchdogConfig>,
    /// Next heartbeat deadline.
    pub(crate) wd_next: u64,
    /// Fingerprint at the previous armed check.
    pub(crate) wd_last_fp: u64,
    /// Whether `wd_last_fp` holds a real sample yet.
    pub(crate) wd_fp_valid: bool,
    /// Consecutive armed checks with an unchanged fingerprint.
    pub(crate) wd_streak: u32,
    /// `vector_instructions` at the previous check (activity gate).
    pub(crate) wd_last_instr: u64,
    /// Applied injections and their outcomes.
    pub(crate) log: FaultLog,
}

impl HardenState {
    fn new(opts: &HardenedOptions) -> Self {
        Self {
            injections: opts.plan.injections().to_vec(),
            next_inj: 0,
            watchdog: opts.watchdog,
            wd_next: 0,
            wd_last_fp: 0,
            wd_fp_valid: false,
            wd_streak: 0,
            wd_last_instr: 0,
            log: FaultLog::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu(cus: u32) -> Gpu {
        Gpu::new(SimtConfig::with_cus(cus), 1 << 18) // 1 MiB
    }

    /// out[i] = in[i] + 1 over n items; in @ param0, out @ param1.
    const INCR: &str = "
        gid   r1
        param r2, 0
        param r3, 1
        slli  r4, r1, 2
        add   r5, r4, r2
        lw    r6, r5, 0
        addi  r6, r6, 1
        add   r7, r4, r3
        sw    r7, r6, 0
        ret
    ";

    #[test]
    fn functional_increment() {
        let mut g = gpu(1);
        let n = 256u32;
        let input: Vec<u32> = (0..n).map(|i| i * 3).collect();
        g.write_words(0x1000, &input).unwrap();
        let k = Kernel::from_asm("incr", INCR).unwrap();
        let stats = g
            .launch(&k, &Launch::new(n, 64, vec![0x1000, 0x8000]))
            .unwrap();
        let out = g.read_words(0x8000, n as usize).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u32) * 3 + 1, "item {i}");
        }
        assert!(stats.cycles > 0);
        assert_eq!(stats.workgroups, 4);
        assert_eq!(stats.wavefronts, 4);
    }

    #[test]
    fn more_cus_are_faster() {
        let k = Kernel::from_asm("incr", INCR).unwrap();
        let n = 4096u32;
        let input: Vec<u32> = (0..n).collect();
        let mut cycles = Vec::new();
        for cus in [1u32, 2, 4] {
            let mut g = gpu(cus);
            g.write_words(0x1000, &input).unwrap();
            let s = g
                .launch(&k, &Launch::new(n, 256, vec![0x1000, 0x10000]))
                .unwrap();
            cycles.push(s.cycles);
        }
        assert!(cycles[1] < cycles[0], "2 CUs beat 1: {cycles:?}");
        assert!(cycles[2] < cycles[1], "4 CUs beat 2: {cycles:?}");
    }

    #[test]
    fn divergent_kernel_is_slower_than_uniform() {
        // Both kernels run the same instruction count per item, but one
        // branches on gid parity (splitting every wavefront) while the
        // other branches uniformly.
        let divergent = "
            gid  r1
            andi r2, r1, 1
            addi r3, r0, 16
            beq  r2, r0, even
            odd_loop:
            addi r4, r4, 1
            blt  r4, r3, odd_loop
            ret
            even:
            even_loop:
            addi r4, r4, 1
            blt  r4, r3, even_loop
            ret
        ";
        let uniform = divergent.replace("andi r2, r1, 1", "andi r2, r0, 1");
        let k_div = Kernel::from_asm("div", divergent).unwrap();
        let k_uni = Kernel::from_asm("uni", &uniform).unwrap();
        let launch = Launch::new(1024, 256, vec![]);
        let c_div = gpu(1).launch(&k_div, &launch).unwrap().cycles;
        let c_uni = gpu(1).launch(&k_uni, &launch).unwrap().cycles;
        assert!(
            c_div > c_uni,
            "divergence must cost cycles: {c_div} vs {c_uni}"
        );
    }

    #[test]
    fn cache_hits_make_reuse_cheap() {
        // Sum the same small buffer from every work-item: after warmup
        // everything hits.
        let k = Kernel::from_asm(
            "reuse",
            "
            param r2, 0
            addi  r3, r0, 0    ; i
            addi  r4, r0, 16   ; count
            loop:
            slli  r5, r3, 2
            add   r5, r5, r2
            lw    r6, r5, 0
            add   r7, r7, r6
            addi  r3, r3, 1
            blt   r3, r4, loop
            ret
            ",
        )
        .unwrap();
        let mut g = gpu(1);
        g.write_words(0, &[1u32; 16]).unwrap();
        let stats = g.launch(&k, &Launch::new(512, 512, vec![0])).unwrap();
        assert!(
            stats.mem.miss_ratio() < 0.05,
            "miss ratio {}",
            stats.mem.miss_ratio()
        );
    }

    #[test]
    fn launch_validation() {
        let mut g = gpu(1);
        let k = Kernel::from_asm("k", "ret").unwrap();
        assert!(matches!(
            g.launch(&k, &Launch::new(0, 64, vec![])),
            Err(SimError::BadLaunch(_))
        ));
        assert!(matches!(
            g.launch(&k, &Launch::new(64, 0, vec![])),
            Err(SimError::BadLaunch(_))
        ));
        assert!(matches!(
            g.launch(&k, &Launch::new(64, 1024, vec![])),
            Err(SimError::BadLaunch(_))
        ));
        assert!(matches!(
            g.launch(&k, &Launch::new(64, 64, vec![0; 9])),
            Err(SimError::BadLaunch(_))
        ));
        let empty = Kernel {
            name: "e".into(),
            program: vec![],
        };
        assert!(matches!(
            g.launch(&empty, &Launch::new(64, 64, vec![])),
            Err(SimError::BadLaunch(_))
        ));
    }

    #[test]
    fn memory_faults_are_reported() {
        let mut g = gpu(1);
        let k = Kernel::from_asm("oob", "lui r1, 0x7fff\nlw r2, r1, 0\nret").unwrap();
        assert!(matches!(
            g.launch(&k, &Launch::new(1, 1, vec![])),
            Err(SimError::MemoryOutOfBounds { .. })
        ));
        let k2 = Kernel::from_asm("unaligned", "addi r1, r0, 2\nlw r2, r1, 0\nret").unwrap();
        assert!(matches!(
            g.launch(&k2, &Launch::new(1, 1, vec![])),
            Err(SimError::Unaligned { .. })
        ));
    }

    #[test]
    fn runaway_kernel_hits_cycle_limit() {
        let mut cfg = SimtConfig::with_cus(1);
        cfg.max_cycles = 10_000;
        let mut g = Gpu::new(cfg, 1024);
        let k = Kernel::from_asm("spin", "forever: jmp forever").unwrap();
        assert!(matches!(
            g.launch(&k, &Launch::new(64, 64, vec![])),
            Err(SimError::CycleLimit { limit: 10_000 })
        ));
    }

    #[test]
    fn local_memory_is_per_cu_scratch() {
        let k = Kernel::from_asm(
            "lram",
            "
            lid  r1
            slli r2, r1, 2
            addi r3, r0, 7
            swl  r2, r3, 0
            lwl  r4, r2, 0
            param r5, 0
            gid  r6
            slli r6, r6, 2
            add  r5, r5, r6
            sw   r5, r4, 0
            ret
            ",
        )
        .unwrap();
        let mut g = gpu(2);
        let stats = g.launch(&k, &Launch::new(128, 64, vec![0x4000])).unwrap();
        let out = g.read_words(0x4000, 128).unwrap();
        assert!(out.iter().all(|&v| v == 7));
        assert!(stats.mem.accesses > 0, "global stores went via cache");
    }

    #[test]
    fn partial_wavefront_and_group() {
        // 70 items in groups of 64: one full WF + one 6-item WF.
        let mut g = gpu(1);
        let input: Vec<u32> = (0..70).collect();
        g.write_words(0x1000, &input).unwrap();
        let k = Kernel::from_asm("incr", INCR).unwrap();
        let stats = g
            .launch(&k, &Launch::new(70, 64, vec![0x1000, 0x8000]))
            .unwrap();
        assert_eq!(stats.workgroups, 2);
        let out = g.read_words(0x8000, 70).unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }
}

#[cfg(test)]
mod hardened_tests {
    use super::*;
    use crate::fault::{
        FaultPlan, FaultSite, HardenedOptions, Injection, InjectionOutcome, Protection,
    };

    /// out[i] = in[i] + 1 over n items; in @ param0, out @ param1.
    const INCR: &str = "
        gid   r1
        param r2, 0
        param r3, 1
        slli  r4, r1, 2
        add   r5, r4, r2
        lw    r6, r5, 0
        addi  r6, r6, 1
        add   r7, r4, r3
        sw    r7, r6, 0
        ret
    ";

    fn incr_gpu() -> (Gpu, Kernel, Launch) {
        let mut g = Gpu::new(SimtConfig::with_cus(1), 1 << 16);
        let input: Vec<u32> = (0..256).map(|i| i * 3).collect();
        g.write_words(0x1000, &input).unwrap();
        let k = Kernel::from_asm("incr", INCR).unwrap();
        (g, k, Launch::new(256, 64, vec![0x1000, 0x8000]))
    }

    #[test]
    fn zero_injection_run_is_bit_identical_with_watchdog_on() {
        let (mut plain, k, launch) = incr_gpu();
        let base = plain.launch(&k, &launch).unwrap();
        let base_mem = plain.read_words(0, 1 << 14).unwrap();

        let (mut hard, k, launch) = incr_gpu();
        let opts = HardenedOptions {
            plan: FaultPlan::empty(),
            watchdog: Some(WatchdogConfig::default()),
        };
        let run = hard.launch_hardened(&k, &launch, &opts).unwrap();
        assert_eq!(run.stats, base, "RunStats must be bit-identical");
        assert_eq!(run.stats.cycles, base.cycles);
        assert_eq!(
            hard.read_words(0, 1 << 14).unwrap(),
            base_mem,
            "memory image must be bit-identical"
        );
        assert!(run.log.events.is_empty());
    }

    #[test]
    fn watchdog_flags_spin_kernel_within_10k_cycles() {
        // The spin kernel is only caught by max_cycles (400M default)
        // without the watchdog; the heartbeat must flag it in < 10k
        // simulated cycles.
        let mut g = Gpu::new(SimtConfig::with_cus(1), 1024);
        let k = Kernel::from_asm("spin", "forever: jmp forever").unwrap();
        let opts = HardenedOptions {
            plan: FaultPlan::empty(),
            watchdog: Some(WatchdogConfig::default()),
        };
        let err = g
            .launch_hardened(&k, &Launch::new(64, 64, vec![]), &opts)
            .unwrap_err();
        match err {
            SimError::Watchdog { cycle } => {
                assert!(cycle < 10_000, "flagged at cycle {cycle}, need < 10k");
            }
            other => panic!("expected watchdog, got {other}"),
        }
    }

    #[test]
    fn watchdog_leaves_long_convergent_kernel_untouched() {
        // A loop that runs far longer than several watchdog intervals
        // but makes progress (counter register changes) every
        // iteration must complete normally, bit-identical to plain.
        let src = "
            addi r2, r0, 4000
            loop:
            addi r3, r3, 1
            add  r4, r4, r3
            bne  r3, r2, loop
            param r5, 0
            sw   r5, r4, 0
            ret
        ";
        let k = Kernel::from_asm("converge", src).unwrap();
        let launch = Launch::new(64, 64, vec![0x100]);
        let mut plain = Gpu::new(SimtConfig::with_cus(1), 1024);
        let base = plain.launch(&k, &launch).unwrap();
        assert!(
            base.cycles > 8 * WatchdogConfig::default().interval,
            "kernel must span several heartbeats ({} cycles)",
            base.cycles
        );
        let mut hard = Gpu::new(SimtConfig::with_cus(1), 1024);
        let opts = HardenedOptions {
            plan: FaultPlan::empty(),
            watchdog: Some(WatchdogConfig::default()),
        };
        let run = hard.launch_hardened(&k, &launch, &opts).unwrap();
        assert_eq!(run.stats, base);
        assert_eq!(
            plain.read_words(0x100, 1).unwrap(),
            hard.read_words(0x100, 1).unwrap()
        );
    }

    #[test]
    fn unprotected_register_flip_corrupts_output() {
        // Flip a bit of r1 (the gid) in lane 0 of slot 0 right after
        // dispatch (cycle 1 — at cycle 0 nothing is resident yet):
        // silent data corruption the campaign will classify as SDC.
        let (mut g, k, launch) = incr_gpu();
        let inj = Injection::single(
            1,
            FaultSite::Register {
                cu: 0,
                slot: 0,
                lane: 0,
                reg: 1,
            },
            7,
            Protection::None,
        )
        .with_label("cu/pe/rf_bank");
        let opts = HardenedOptions {
            plan: FaultPlan::new(vec![inj]),
            watchdog: None,
        };
        let run = g.launch_hardened(&k, &launch, &opts).unwrap();
        assert_eq!(run.log.count(InjectionOutcome::Applied), 1);
        // r1 (gid) flipped by 128 in lane 0: its output lands at the
        // wrong address / wrong value — the image differs.
        let (plain_gpu, k2, launch2) = incr_gpu();
        let mut plain_gpu = plain_gpu;
        plain_gpu.launch(&k2, &launch2).unwrap();
        assert_ne!(
            g.read_words(0x8000, 256).unwrap(),
            plain_gpu.read_words(0x8000, 256).unwrap(),
            "unprotected flip must corrupt the output"
        );
    }

    #[test]
    fn secded_corrects_single_bit_flip() {
        let (mut g, k, launch) = incr_gpu();
        let inj = Injection::single(
            1,
            FaultSite::Register {
                cu: 0,
                slot: 0,
                lane: 0,
                reg: 1,
            },
            7,
            Protection::SecDed,
        );
        let opts = HardenedOptions {
            plan: FaultPlan::new(vec![inj]),
            watchdog: None,
        };
        let run = g.launch_hardened(&k, &launch, &opts).unwrap();
        assert_eq!(run.log.count(InjectionOutcome::Corrected), 1);
        let out = g.read_words(0x8000, 256).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u32) * 3 + 1, "corrected run must be clean");
        }
    }

    #[test]
    fn parity_detects_odd_and_misses_even_flips() {
        let site = FaultSite::GlobalWord { word: 0x1000 / 4 };
        let (mut g, k, launch) = incr_gpu();
        let odd = Injection::single(0, site, 3, Protection::Parity).with_label("dcache");
        let opts = HardenedOptions {
            plan: FaultPlan::new(vec![odd]),
            watchdog: None,
        };
        match g.launch_hardened(&k, &launch, &opts).unwrap_err() {
            SimError::UncorrectableFault(report) => {
                assert_eq!(report.label, "dcache");
                assert_eq!(report.flips, 1);
                assert_eq!(report.domain, "global");
            }
            other => panic!("expected uncorrectable fault, got {other}"),
        }

        let (mut g, k, launch) = incr_gpu();
        let even = Injection {
            cycle: 0,
            site,
            flips: vec![3, 9],
            codeword_flips: 2,
            protection: Protection::Parity,
            label: "dcache".into(),
        };
        let opts = HardenedOptions {
            plan: FaultPlan::new(vec![even]),
            watchdog: None,
        };
        let run = g.launch_hardened(&k, &launch, &opts).unwrap();
        assert_eq!(run.log.count(InjectionOutcome::Applied), 1, "even slips by");
    }

    #[test]
    fn secded_double_flip_is_detected_uncorrectable() {
        let (mut g, k, launch) = incr_gpu();
        let inj = Injection {
            cycle: 0,
            site: FaultSite::LocalWord { cu: 0, word: 3 },
            flips: vec![0, 1],
            codeword_flips: 2,
            protection: Protection::SecDed,
            label: "cu/lram".into(),
        };
        let opts = HardenedOptions {
            plan: FaultPlan::new(vec![inj]),
            watchdog: None,
        };
        assert!(matches!(
            g.launch_hardened(&k, &launch, &opts),
            Err(SimError::UncorrectableFault(_))
        ));
    }

    #[test]
    fn out_of_range_sites_are_vacant_not_errors() {
        let (mut g, k, launch) = incr_gpu();
        let plan = FaultPlan::new(vec![
            Injection::single(
                0,
                FaultSite::Register {
                    cu: 99,
                    slot: 0,
                    lane: 0,
                    reg: 1,
                },
                0,
                Protection::None,
            ),
            Injection::single(
                0,
                FaultSite::Register {
                    cu: 0,
                    slot: 57,
                    lane: 0,
                    reg: 1,
                },
                0,
                Protection::None,
            ),
            Injection::single(
                0,
                FaultSite::GlobalWord { word: u32::MAX },
                31,
                Protection::SecDed,
            ),
            Injection::single(
                1,
                FaultSite::ExecMask {
                    cu: 0,
                    slot: 0,
                    lane: 4096,
                },
                0,
                Protection::None,
            ),
        ]);
        let opts = HardenedOptions {
            plan,
            watchdog: None,
        };
        let run = g.launch_hardened(&k, &launch, &opts).unwrap();
        assert_eq!(run.log.count(InjectionOutcome::Vacant), 4);
        let out = g.read_words(0x8000, 256).unwrap();
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, &v)| v == (i as u32) * 3 + 1));
    }

    #[test]
    fn pc_flip_surfaces_as_typed_error_or_completes() {
        // Flipping a high PC bit sends control flow outside the
        // program: must be PcOutOfRange (a crash classification),
        // never a panic.
        let (mut g, k, launch) = incr_gpu();
        let inj = Injection::single(
            2,
            FaultSite::Pc {
                cu: 0,
                slot: 0,
                lane: 0,
            },
            20,
            Protection::None,
        );
        let opts = HardenedOptions {
            plan: FaultPlan::new(vec![inj]),
            watchdog: None,
        };
        match g.launch_hardened(&k, &launch, &opts) {
            Err(SimError::PcOutOfRange { .. }) | Ok(_) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn param_slot_out_of_range_is_typed() {
        use ggpu_isa::inst::Reg;
        let k = Kernel {
            name: "badparam".into(),
            program: vec![
                Inst::Param {
                    rd: Reg::try_new(1).unwrap(),
                    idx: 200,
                },
                Inst::Ret,
            ],
        };
        let mut g = Gpu::new(SimtConfig::with_cus(1), 1024);
        assert_eq!(
            g.launch(&k, &Launch::new(1, 1, vec![])),
            Err(SimError::ParamOutOfRange { pc: 0, idx: 200 })
        );
    }

    #[test]
    fn bad_config_is_typed_not_division_panic() {
        let mut cfg = SimtConfig::with_cus(1);
        cfg.dram.interfaces = 0;
        let mut g = Gpu::new(cfg, 1024);
        let k = Kernel::from_asm("k", "ret").unwrap();
        assert!(matches!(
            g.launch(&k, &Launch::new(1, 1, vec![])),
            Err(SimError::BadConfig(_))
        ));
        let mut cfg = SimtConfig::with_cus(1);
        cfg.cache.banks = 0;
        let mut g = Gpu::new(cfg, 1024);
        assert!(matches!(
            g.launch(&k, &Launch::new(1, 1, vec![])),
            Err(SimError::BadConfig(_))
        ));
    }

    #[test]
    fn exec_mask_flip_changes_lane_participation() {
        // Deactivating lane 0 before it stores: its output word stays
        // zero while every other lane completes.
        let (mut g, k, launch) = incr_gpu();
        let inj = Injection::single(
            1,
            FaultSite::ExecMask {
                cu: 0,
                slot: 0,
                lane: 0,
            },
            0,
            Protection::None,
        );
        let opts = HardenedOptions {
            plan: FaultPlan::new(vec![inj]),
            watchdog: None,
        };
        let run = g.launch_hardened(&k, &launch, &opts).unwrap();
        assert_eq!(run.log.count(InjectionOutcome::Applied), 1);
        let out = g.read_words(0x8000, 256).unwrap();
        assert_eq!(out[0], 0, "lane 0 was masked off before its store");
        assert_eq!(out[1], 3 + 1, "other lanes unaffected");
    }
}

#[cfg(test)]
mod scheduler_equivalence_tests {
    use super::*;

    /// Runs `src` under both schedulers on identically-initialised
    /// machines and checks the architectural counters are
    /// bit-identical. Returns (event, reference) stats.
    fn both(src: &str, cus: u32, launch: &Launch, seed: &[u32]) -> (RunStats, RunStats) {
        let kernel = Kernel::from_asm("equiv", src).expect("valid");
        let run = |reference: bool| {
            let mut g = Gpu::new(SimtConfig::with_cus(cus), 1 << 16);
            g.write_words(0x1000, seed).expect("in range");
            let stats = if reference {
                g.launch_reference(&kernel, launch).expect("runs")
            } else {
                g.launch(&kernel, launch).expect("runs")
            };
            (stats, g.read_words(0, 1 << 14).expect("in range"))
        };
        let (ev, ev_mem) = run(false);
        let (re, re_mem) = run(true);
        assert_eq!(ev_mem, re_mem, "schedulers must produce identical memory");
        assert_eq!(ev, re, "architectural counters must be bit-identical");
        (ev, re)
    }

    #[test]
    fn compute_bound_kernel_matches_reference() {
        let src = "
            gid r1
            addi r2, r0, 24
            loop:
            add r3, r3, r1
            mul r4, r3, r1
            addi r2, r2, -1
            bne r2, r0, loop
            ret
        ";
        let (ev, re) = both(src, 2, &Launch::new(512, 128, vec![]), &[]);
        assert_eq!(ev.cycles, re.cycles);
        assert!(ev.sched_iterations < re.sched_iterations);
    }

    #[test]
    fn memory_bound_kernel_matches_and_skips_idle_cycles() {
        // Strided loads: one cache line per lane, DRAM-latency bound.
        let src = "
            gid r1
            param r2, 0
            slli r3, r1, 6
            add r3, r3, r2
            lw r4, r3, 0
            sw r3, r4, 4
            ret
        ";
        let (ev, re) = both(src, 2, &Launch::new(512, 256, vec![0x1000]), &[7; 64]);
        // Acceptance criterion: >= 5x fewer scheduler-loop iterations
        // than the cycle stepper on memory-bound kernels.
        assert!(
            ev.sched_iterations * 5 <= re.sched_iterations,
            "event-driven must skip idle cycles: {} vs {} passes",
            ev.sched_iterations,
            re.sched_iterations
        );
    }

    #[test]
    fn barrier_heavy_kernel_matches_and_skips_idle_cycles() {
        // Repeated LRAM exchange across two wavefronts per group.
        let src = "
            lid   r1
            slli  r2, r1, 2
            addi  r5, r0, 8
            round:
            swl   r2, r1, 0
            bar
            lwl   r4, r2, 0
            bar
            addi  r5, r5, -1
            bne   r5, r0, round
            ret
        ";
        let (ev, re) = both(src, 2, &Launch::new(512, 128, vec![]), &[]);
        assert!(
            ev.sched_iterations * 5 <= re.sched_iterations,
            "event-driven must skip barrier waits: {} vs {} passes",
            ev.sched_iterations,
            re.sched_iterations
        );
    }

    #[test]
    fn divergent_kernel_matches_reference() {
        let src = "
            gid  r1
            andi r2, r1, 3
            addi r3, r0, 12
            beq  r2, r0, fast
            slow:
            addi r4, r4, 1
            divu r5, r3, r2
            blt  r4, r3, slow
            ret
            fast:
            addi r4, r4, 2
            ret
        ";
        both(src, 3, &Launch::new(448, 64, vec![]), &[]);
    }

    #[test]
    fn partial_groups_and_multi_cu_match_reference() {
        let src = "
            gid   r1
            param r2, 0
            slli  r3, r1, 2
            add   r3, r3, r2
            lw    r4, r3, 0
            addi  r4, r4, 5
            sw    r3, r4, 0
            ret
        ";
        for (n, wg, cus) in [(70, 64, 1), (300, 128, 2), (1000, 96, 4)] {
            let seed: Vec<u32> = (0..1024).collect();
            both(src, cus, &Launch::new(n, wg, vec![0x1000]), &seed);
        }
    }

    #[test]
    fn errors_match_reference() {
        let kernel = Kernel::from_asm("oob", "lui r1, 0x7fff\nlw r2, r1, 0\nret").unwrap();
        let launch = Launch::new(1, 1, vec![]);
        let ev = Gpu::new(SimtConfig::with_cus(1), 1024).launch(&kernel, &launch);
        let re = Gpu::new(SimtConfig::with_cus(1), 1024).launch_reference(&kernel, &launch);
        assert_eq!(ev, re);
        assert!(matches!(ev, Err(SimError::MemoryOutOfBounds { .. })));

        let mut cfg = SimtConfig::with_cus(1);
        cfg.max_cycles = 10_000;
        let spin = Kernel::from_asm("spin", "forever: jmp forever").unwrap();
        let launch = Launch::new(64, 64, vec![]);
        let ev = Gpu::new(cfg, 1024).launch(&spin, &launch);
        let re = Gpu::new(cfg, 1024).launch_reference(&spin, &launch);
        assert_eq!(ev, re);
        assert!(matches!(ev, Err(SimError::CycleLimit { limit: 10_000 })));
    }

    #[test]
    fn wall_clock_and_throughput_are_recorded() {
        let kernel = Kernel::from_asm("w", "gid r1\nmul r2, r1, r1\nret").unwrap();
        let stats = Gpu::new(SimtConfig::with_cus(1), 4096)
            .launch(&kernel, &Launch::new(256, 64, vec![]))
            .unwrap();
        assert!(stats.sim_wall > Duration::ZERO);
        assert!(stats.simulated_cycles_per_second() > 0.0);
        assert!(stats.sched_iterations > 0);
    }
}

#[cfg(test)]
mod occupancy_tests {
    use super::*;

    #[test]
    fn memory_bound_kernels_stall_more_than_compute_bound() {
        // Pointer-chase-free streaming load kernel vs pure ALU kernel.
        let mem_kernel = Kernel::from_asm(
            "stream",
            "
            gid r1
            param r2, 0
            slli r3, r1, 8    ; stride 256B: one line per lane
            add r3, r3, r2
            lw r4, r3, 0
            ret
            ",
        )
        .unwrap();
        let alu_kernel = Kernel::from_asm(
            "alu",
            "
            gid r1
            addi r2, r0, 32
            loop:
            add r3, r3, r1
            addi r2, r2, -1
            bne r2, r0, loop
            ret
            ",
        )
        .unwrap();
        let mut g1 = Gpu::new(SimtConfig::with_cus(1), 1 << 20);
        let mem = g1
            .launch(&mem_kernel, &Launch::new(512, 512, vec![0]))
            .unwrap();
        let mut g2 = Gpu::new(SimtConfig::with_cus(1), 1 << 20);
        let alu = g2
            .launch(&alu_kernel, &Launch::new(512, 512, vec![]))
            .unwrap();
        assert!(
            mem.occupancy() < alu.occupancy(),
            "memory-bound occupancy {:.2} must be below compute-bound {:.2}",
            mem.occupancy(),
            alu.occupancy()
        );
        assert!(alu.occupancy() > 0.8, "ALU loop keeps the CU busy");
    }

    #[test]
    fn occupancy_is_zero_for_empty_stats() {
        assert_eq!(RunStats::default().occupancy(), 0.0);
    }
}

#[cfg(test)]
mod barrier_tests {
    use super::*;

    /// Producer/consumer across wavefronts in one workgroup: every
    /// lane publishes a value to LRAM, the group barriers, then each
    /// lane reads its neighbour's slot.
    #[test]
    fn barrier_orders_cross_wavefront_lram_traffic() {
        let src = "
            lid   r1
            addi  r3, r1, 3      ; value = lid + 3
            slli  r2, r1, 2
            swl   r2, r3, 0      ; lram[lid] = lid + 3
            bar
            wgsize r4
            addi  r5, r1, 1
            blt   r5, r4, nowrap ; neighbour = (lid + 1) mod wgsize
            addi  r5, r0, 0
            nowrap:
            slli  r6, r5, 2
            lwl   r7, r6, 0      ; lram[neighbour]
            param r8, 0
            gid   r9
            slli  r9, r9, 2
            add   r8, r8, r9
            sw    r8, r7, 0
            ret
        ";
        let kernel = Kernel::from_asm("exchange", src).unwrap();
        let mut gpu = Gpu::new(SimtConfig::with_cus(2), 1 << 16);
        // 256 items in 128-item workgroups: two wavefronts per group,
        // so correctness requires the barrier to actually wait.
        let stats = gpu
            .launch(&kernel, &Launch::new(256, 128, vec![0x400]))
            .unwrap();
        let out = gpu.read_words(0x400, 256).unwrap();
        for wg in 0..2u32 {
            for lid in 0..128u32 {
                let neighbour = (lid + 1) % 128;
                let expect = neighbour + 3;
                assert_eq!(out[(wg * 128 + lid) as usize], expect, "wg {wg} lid {lid}");
            }
        }
        assert!(stats.cycles > 0);
    }

    #[test]
    fn divergent_barrier_is_detected() {
        let src = "
            lid  r1
            andi r2, r1, 1
            beq  r2, r0, even
            bar                  ; only odd lanes arrive here
            even:
            ret
        ";
        let kernel = Kernel::from_asm("divbar", src).unwrap();
        let mut gpu = Gpu::new(SimtConfig::with_cus(1), 1 << 12);
        let err = gpu
            .launch(&kernel, &Launch::new(64, 64, vec![]))
            .unwrap_err();
        assert!(matches!(err, SimError::DivergentBarrier { .. }), "{err}");
    }

    #[test]
    fn single_wavefront_barrier_is_a_noop() {
        let kernel = Kernel::from_asm("solo", "bar\naddi r1, r0, 7\nret").unwrap();
        let mut gpu = Gpu::new(SimtConfig::with_cus(1), 1 << 12);
        let stats = gpu.launch(&kernel, &Launch::new(32, 32, vec![])).unwrap();
        assert!(stats.cycles > 0, "must not deadlock");
    }

    #[test]
    fn banked_lram_charges_conflicts_identically_on_both_backends() {
        use crate::config::{AccelBackend, LramModel};
        // Stride-8 words: with 8 banks every lane of a beat lands in
        // bank 0 at a distinct word — worst-case serialization (8 PEs
        // per beat -> 7 extra beats each). Unit stride is conflict-free.
        let strided = "
            lid  r1
            slli r2, r1, 5       ; byte address = lid * 32 (word stride 8)
            swl  r2, r1, 0
            lwl  r3, r2, 0
            param r4, 0
            gid  r5
            slli r5, r5, 2
            add  r4, r4, r5
            sw   r4, r3, 0
            ret
        ";
        let kernel = Kernel::from_asm("stride8", strided).unwrap();
        let launch = Launch::new(64, 64, vec![0x800]);
        let run = |lram: LramModel, backend: AccelBackend| {
            let cfg = SimtConfig::with_cus(1)
                .with_lram(lram)
                .with_backend(backend);
            let mut gpu = Gpu::new(cfg, 1 << 16);
            let stats = gpu.launch(&kernel, &launch).unwrap();
            (stats, gpu.read_words(0x800, 64).unwrap())
        };
        let (ideal, out_ideal) = run(LramModel::Ideal, AccelBackend::Scalar);
        let (scalar, out_scalar) = run(LramModel::Banked { banks: 8 }, AccelBackend::Scalar);
        let (soa, out_soa) = run(LramModel::Banked { banks: 8 }, AccelBackend::Soa);
        // Banking is architecturally invisible to data.
        assert_eq!(out_ideal, out_scalar);
        assert_eq!(out_ideal, out_soa);
        // Both backends charge the identical conflict cost (RunStats
        // equality includes lram_conflict_cycles).
        assert_eq!(scalar, soa);
        assert_eq!(ideal.lram_conflict_cycles, 0);
        // swl + lwl, 8 beats each, 7 extra beats per beat.
        assert_eq!(scalar.lram_conflict_cycles, 2 * 8 * 7);
        assert!(scalar.cycles > ideal.cycles, "conflicts must cost cycles");
    }

    #[test]
    fn unit_stride_lram_is_conflict_free_under_banking() {
        use crate::config::LramModel;
        let unit = "
            lid  r1
            slli r2, r1, 2
            swl  r2, r1, 0
            lwl  r3, r2, 0
            ret
        ";
        let kernel = Kernel::from_asm("unit", unit).unwrap();
        let launch = Launch::new(64, 64, vec![]);
        let run = |lram: LramModel| {
            Gpu::new(SimtConfig::with_cus(1).with_lram(lram), 1 << 12)
                .launch(&kernel, &launch)
                .unwrap()
        };
        let ideal = run(LramModel::Ideal);
        let banked = run(LramModel::Banked { banks: 8 });
        assert_eq!(banked.lram_conflict_cycles, 0);
        assert_eq!(ideal, banked, "conflict-free banking costs nothing");
    }

    #[test]
    fn early_exiting_wavefront_does_not_deadlock_the_barrier() {
        // One wavefront of the group returns before the barrier: the
        // other must still be released (done WFs are excluded).
        let src = "
            lid  r1
            addi r2, r0, 64
            blt  r1, r2, waiters  ; first WF waits at barrier
            ret                   ; second WF exits immediately
            waiters:
            bar
            ret
        ";
        let kernel = Kernel::from_asm("halfexit", src).unwrap();
        let mut gpu = Gpu::new(SimtConfig::with_cus(1), 1 << 12);
        let stats = gpu.launch(&kernel, &Launch::new(128, 128, vec![])).unwrap();
        assert!(stats.cycles > 0);
    }
}
