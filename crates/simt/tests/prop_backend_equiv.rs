//! Backend bit-identity: the SoA fast path must be indistinguishable
//! from the scalar reference engine — same `RunStats`, same memory
//! image, same typed errors, and same `launch_hardened` fault
//! semantics (injection outcomes, ECC verdicts, watchdog trips,
//! partial memory effects) — across randomized kernels, exec-mask
//! patterns, divergence/barrier shapes and fault plans.

use ggpu_isa::inst::{AluOp, BranchCond, IdSource, Inst, Reg};
use ggpu_prop::{cases, Rng};
use ggpu_simt::{
    FaultPlan, FaultSite, Gpu, HardenedOptions, Injection, Kernel, Launch, LramModel, Protection,
    ScalarAccelerator, SimtConfig, SoaAccelerator, WatchdogConfig,
};

const MEM_WORDS: usize = 4096;

/// Runs one launch on both backends over identically seeded machines
/// and asserts bit-identity of result and memory image.
fn assert_equiv(
    kernel: &Kernel,
    launch: &Launch,
    config: SimtConfig,
    seed_mem: &[u32],
    opts: Option<&HardenedOptions>,
) {
    let mut scalar_gpu = Gpu::new(config, MEM_WORDS);
    let mut soa_gpu = Gpu::new(config, MEM_WORDS);
    scalar_gpu.write_words(0, seed_mem).expect("seed scalar");
    soa_gpu.write_words(0, seed_mem).expect("seed soa");

    match opts {
        None => {
            let a = scalar_gpu.launch_with(&ScalarAccelerator, kernel, launch);
            let b = soa_gpu.launch_with(&SoaAccelerator, kernel, launch);
            match (a, b) {
                (Ok(sa), Ok(sb)) => assert_eq!(sa, sb, "RunStats diverge on {}", kernel.name),
                (Err(ea), Err(eb)) => assert_eq!(ea, eb, "errors diverge on {}", kernel.name),
                (a, b) => panic!("outcome diverges on {}: {a:?} vs {b:?}", kernel.name),
            }
        }
        Some(opts) => {
            let a = scalar_gpu.launch_hardened_with(&ScalarAccelerator, kernel, launch, opts);
            let b = soa_gpu.launch_hardened_with(&SoaAccelerator, kernel, launch, opts);
            match (a, b) {
                (Ok(ra), Ok(rb)) => {
                    assert_eq!(
                        ra.stats, rb.stats,
                        "hardened stats diverge on {}",
                        kernel.name
                    );
                    assert_eq!(
                        ra.log.events, rb.log.events,
                        "fault logs diverge on {}",
                        kernel.name
                    );
                }
                (Err(ea), Err(eb)) => {
                    assert_eq!(ea, eb, "hardened errors diverge on {}", kernel.name)
                }
                (a, b) => panic!(
                    "hardened outcome diverges on {}: {a:?} vs {b:?}",
                    kernel.name
                ),
            }
        }
    }

    let ma = scalar_gpu.read_words(0, MEM_WORDS).expect("read scalar");
    let mb = soa_gpu.read_words(0, MEM_WORDS).expect("read soa");
    assert_eq!(ma, mb, "memory images diverge on {}", kernel.name);
}

fn small_config(rng: &mut Rng) -> SimtConfig {
    let mut c = SimtConfig::with_cus(rng.u32_in(1, 3));
    c.wavefront_size = rng.pick_copy(&[8, 16, 33, 64]);
    c.max_wavefronts_per_cu = rng.u32_in(2, 8);
    c.max_cycles = 200_000;
    c
}

fn seed_mem(rng: &mut Rng) -> Vec<u32> {
    (0..MEM_WORDS).map(|_| rng.any_u32()).collect()
}

/// Template kernels in the shape of the shipped suite: id reads,
/// ALU mixes, global loads/stores, bounded loops, divergence,
/// barriers with local memory.
fn template_kernel(rng: &mut Rng) -> Kernel {
    let which = rng.u32_in(0, 4);
    let c1 = rng.i32_in(1, 500);
    let c2 = rng.i32_in(1, 500);
    let op = rng.pick_copy(&["add", "sub", "mul", "xor", "sltu", "divu", "remu"]);
    let src = match which {
        // Straight-line ALU mix + store.
        0 => format!(
            "gid r1
             addi r2, r1, {c1}
             addi r3, r0, {c2}
             mul  r3, r1, r3
             {op} r4, r2, r3
             param r5, 0
             slli r6, r1, 2
             add  r6, r6, r5
             sw   r6, r4, 0
             ret"
        ),
        // Load-modify-store.
        1 => format!(
            "gid r1
             slli r2, r1, 2
             param r3, 0
             add  r2, r2, r3
             lw   r4, r2, 0
             addi r4, r4, {c1}
             param r5, 1
             slli r6, r1, 2
             add  r6, r6, r5
             sw   r6, r4, 0
             ret"
        ),
        // Uniform counted loop (trip count from param).
        2 => "gid  r1
              param r2, 2
              addi r3, r0, 0
              loop:
              add  r3, r3, r1
              addi r2, r2, -1
              bne  r2, r0, loop
              param r5, 0
              slli r6, r1, 2
              add  r6, r6, r5
              sw   r6, r3, 0
              ret"
        .to_string(),
        // Divergent trip counts: each lane loops gid % 8 times.
        3 => format!(
            "gid  r1
             addi r9, r0, 8
             remu r2, r1, r9
             addi r3, r0, {c1}
             loop:
             beq  r2, r0, done
             addi r3, r3, {c2}
             addi r2, r2, -1
             jmp  loop
             done:
             param r5, 0
             slli r6, r1, 2
             add  r6, r6, r5
             sw   r6, r3, 0
             ret"
        ),
        // Barrier + local-memory exchange within the workgroup.
        _ => "gid  r1
              lid  r2
              slli r3, r2, 2
              swl  r3, r1, 0
              bar
              wgsize r4
              addi r5, r4, -1
              sub  r5, r5, r2
              slli r5, r5, 2
              lwl  r6, r5, 0
              param r7, 0
              slli r8, r1, 2
              add  r8, r8, r7
              sw   r8, r6, 0
              ret"
        .to_string(),
    };
    Kernel::from_asm(format!("tmpl{which}"), &src).expect("template assembles")
}

/// A launch whose output region stays inside the seeded memory.
fn template_launch(rng: &mut Rng, config: &SimtConfig) -> Launch {
    let n = rng.u32_in(1, 300);
    let max_wg = config.wavefront_size * config.max_wavefronts_per_cu;
    let wg = rng.u32_in(1, max_wg.min(256));
    // Params: out base, aux base, trip count. Output fits: n*4 <= 8192.
    let out = rng.pick_copy(&[0u32, 0x400, 0x800]);
    Launch::new(n, wg, vec![out, 0x2000, rng.u32_in(1, 9), 3])
}

#[test]
fn template_kernels_bit_identical() {
    cases(120, |rng| {
        let config = small_config(rng);
        let kernel = template_kernel(rng);
        let launch = template_launch(rng, &config);
        let mem = seed_mem(rng);
        assert_equiv(&kernel, &launch, config, &mem, None);
    });
}

/// Banked LRAM geometries: the conflict-aware arbitration model must
/// stay bit-identical between backends — same outputs, same cycle
/// count, same conflict tally (`RunStats` equality covers
/// `lram_conflict_cycles`) — across randomized bank counts, including
/// degenerate single-bank and wider-than-wavefront geometries.
#[test]
fn banked_geometries_bit_identical() {
    cases(120, |rng| {
        let mut config = small_config(rng);
        config.lram = LramModel::Banked {
            banks: rng.pick_copy(&[1, 2, 3, 4, 8, 16]),
        };
        let kernel = template_kernel(rng);
        let launch = template_launch(rng, &config);
        let mem = seed_mem(rng);
        assert_equiv(&kernel, &launch, config, &mem, None);
    });
}

/// Banking is a timing model, never a functional one: switching from
/// the ideal LRAM to any banked geometry may slow a run down but must
/// leave the architectural results — memory image and instruction
/// tallies — untouched.
#[test]
fn banking_shifts_cycles_never_bits() {
    cases(80, |rng| {
        let ideal_config = small_config(rng);
        let mut banked_config = ideal_config;
        banked_config.lram = LramModel::Banked {
            banks: rng.pick_copy(&[2, 4, 8]),
        };
        let kernel = template_kernel(rng);
        let launch = template_launch(rng, &ideal_config);
        let mem = seed_mem(rng);

        let mut ideal_gpu = Gpu::new(ideal_config, MEM_WORDS);
        let mut banked_gpu = Gpu::new(banked_config, MEM_WORDS);
        ideal_gpu.write_words(0, &mem).expect("seed ideal");
        banked_gpu.write_words(0, &mem).expect("seed banked");
        let ideal = ideal_gpu
            .launch_with(&ScalarAccelerator, &kernel, &launch)
            .expect("template kernels complete");
        let banked = banked_gpu
            .launch_with(&ScalarAccelerator, &kernel, &launch)
            .expect("template kernels complete");

        assert_eq!(ideal.lram_conflict_cycles, 0, "ideal model never stalls");
        assert!(banked.cycles >= ideal.cycles, "conflicts only add beats");
        assert_eq!(ideal.vector_instructions, banked.vector_instructions);
        assert_eq!(ideal.lane_ops, banked.lane_ops);
        assert_eq!(ideal.wavefronts, banked.wavefronts);
        assert_eq!(ideal.workgroups, banked.workgroups);
        let ma = ideal_gpu.read_words(0, MEM_WORDS).expect("read ideal");
        let mb = banked_gpu.read_words(0, MEM_WORDS).expect("read banked");
        assert_eq!(ma, mb, "banking altered results on {}", kernel.name);
    });
}

fn random_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.u32_in(0, 31) as u8)
}

/// Fully random instruction streams: most runs fault or hit the cycle
/// ceiling — the typed error and the partial memory image must match
/// between backends either way.
fn random_program(rng: &mut Rng) -> Vec<Inst> {
    let len = rng.usize_in(4, 24);
    let ops = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Divu,
        AluOp::Remu,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
    ];
    let conds = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];
    let srcs = [
        IdSource::GlobalId,
        IdSource::LocalId,
        IdSource::GroupId,
        IdSource::GroupSize,
        IdSource::GlobalSize,
    ];
    let mut prog: Vec<Inst> = (0..len)
        .map(|_| match rng.u32_in(0, 11) {
            0 | 1 => Inst::Alu {
                op: rng.pick_copy(&ops),
                rd: random_reg(rng),
                rs1: random_reg(rng),
                rs2: random_reg(rng),
            },
            2 | 3 => Inst::AluImm {
                op: rng.pick_copy(&ops),
                rd: random_reg(rng),
                rs1: random_reg(rng),
                imm: rng.i32_in(-40, 200) as i16,
            },
            4 => Inst::ReadId {
                rd: random_reg(rng),
                src: rng.pick_copy(&srcs),
            },
            5 => Inst::Param {
                rd: random_reg(rng),
                idx: rng.u32_in(0, 9) as u8, // sometimes out of range
            },
            6 => Inst::Lw {
                rd: random_reg(rng),
                rs1: random_reg(rng),
                imm: (rng.i32_in(-4, 400) * 4) as i16,
            },
            7 => Inst::Sw {
                rs1: random_reg(rng),
                rs2: random_reg(rng),
                imm: (rng.i32_in(-4, 400) * 4) as i16,
            },
            8 => Inst::Lwl {
                rd: random_reg(rng),
                rs1: random_reg(rng),
                imm: (rng.i32_in(0, 100) * 4) as i16,
            },
            9 => Inst::Swl {
                rs1: random_reg(rng),
                rs2: random_reg(rng),
                imm: (rng.i32_in(0, 100) * 4) as i16,
            },
            10 => Inst::Branch {
                cond: rng.pick_copy(&conds),
                rs1: random_reg(rng),
                rs2: random_reg(rng),
                target: rng.u32_in(0, len as u32 + 2), // may leave program
            },
            _ => {
                if rng.chance(0.3) {
                    Inst::Bar
                } else {
                    Inst::Jmp {
                        target: rng.u32_in(0, len as u32 + 2),
                    }
                }
            }
        })
        .collect();
    if rng.chance(0.8) {
        prog.push(Inst::Ret);
    }
    prog
}

#[test]
fn random_programs_bit_identical() {
    cases(200, |rng| {
        let mut config = small_config(rng);
        config.max_cycles = 30_000;
        let kernel = Kernel {
            name: "rand".into(),
            program: random_program(rng),
        };
        let n = rng.u32_in(1, 200);
        let wg = rng.u32_in(1, config.wavefront_size * config.max_wavefronts_per_cu);
        let launch = Launch::new(n, wg, vec![0x100, 0x600, 5]);
        let mem = seed_mem(rng);
        assert_equiv(&kernel, &launch, config, &mem, None);
    });
}

fn random_site(rng: &mut Rng, config: &SimtConfig) -> FaultSite {
    let cu = rng.u32_in(0, config.compute_units); // may be out of range
    let slot = rng.u32_in(0, config.max_wavefronts_per_cu);
    let lane = rng.u32_in(0, config.wavefront_size + 4); // sometimes beyond geometry
    match rng.u32_in(0, 4) {
        0 => FaultSite::Register {
            cu,
            slot,
            lane,
            reg: rng.u32_in(0, 255) as u8,
        },
        1 => FaultSite::LocalWord {
            cu,
            word: rng.u32_in(0, 5000),
        },
        2 => FaultSite::GlobalWord {
            word: rng.u32_in(0, MEM_WORDS as u32 + 64),
        },
        3 => FaultSite::Pc { cu, slot, lane },
        _ => FaultSite::ExecMask { cu, slot, lane },
    }
}

fn random_plan(rng: &mut Rng, config: &SimtConfig) -> FaultPlan {
    let n = rng.usize_in(1, 6);
    let injections = (0..n)
        .map(|i| {
            let protection =
                rng.pick_copy(&[Protection::None, Protection::Parity, Protection::SecDed]);
            let mut inj = Injection::single(
                rng.u64_in(0, 4000),
                random_site(rng, config),
                rng.u32_in(0, 40) as u8,
                protection,
            )
            .with_label(format!("inj{i}"));
            if rng.chance(0.4) {
                inj.flips.push(rng.u32_in(0, 40) as u8);
            }
            if rng.chance(0.3) {
                inj.codeword_flips = rng.u32_in(0, 4);
            }
            inj
        })
        .collect();
    FaultPlan::new(injections)
}

/// Non-empty fault plans (register/PC/exec-mask/memory upsets, all
/// three protection schemes) plus the watchdog: outcomes, logs, typed
/// errors and partial memory effects must match.
#[test]
fn fault_plans_bit_identical() {
    cases(150, |rng| {
        let mut config = small_config(rng);
        config.max_cycles = 100_000;
        let kernel = template_kernel(rng);
        let launch = template_launch(rng, &config);
        let opts = HardenedOptions {
            plan: random_plan(rng, &config),
            watchdog: rng.chance(0.5).then(|| WatchdogConfig {
                interval: rng.u64_in(32, 2048),
                patience: rng.u32_in(1, 3),
            }),
        };
        let mem = seed_mem(rng);
        assert_equiv(&kernel, &launch, config, &mem, Some(&opts));
    });
}

/// Exec-mask upsets that *reactivate* never-populated lanes: the
/// revived lane resumes at PC 0 with zeroed registers and id words on
/// both backends (the SoA engine computes ids on the fly and must
/// reproduce the zeroed-ids semantics for lanes beyond `items`).
#[test]
fn exec_mask_reactivation_matches() {
    cases(80, |rng| {
        let mut config = SimtConfig::with_cus(1);
        config.max_cycles = 100_000;
        let kernel = Kernel::from_asm(
            "revive",
            "gid  r1
             lid  r2
             add  r3, r1, r2
             slli r4, r1, 2
             param r5, 0
             add  r4, r4, r5
             sw   r4, r3, 0
             ret",
        )
        .expect("assembles");
        // Partial wavefront: items < wavefront_size.
        let n = rng.u32_in(1, 40);
        let launch = Launch::new(n, 64, vec![0x200]);
        let lane = rng.u32_in(0, 63); // often a lane >= items
        let plan = FaultPlan::new(vec![Injection::single(
            rng.u64_in(0, 40),
            FaultSite::ExecMask {
                cu: 0,
                slot: 0,
                lane,
            },
            0,
            Protection::None,
        )]);
        let opts = HardenedOptions {
            plan,
            watchdog: Some(WatchdogConfig {
                interval: 512,
                patience: 2,
            }),
        };
        let mem = seed_mem(rng);
        assert_equiv(&kernel, &launch, config, &mem, Some(&opts));
    });
}

/// Divergent-barrier rejection and barrier-heavy shapes agree.
#[test]
fn divergent_barrier_cases_match() {
    cases(60, |rng| {
        let config = small_config(rng);
        // Odd lanes skip the barrier -> DivergentBarrier on both
        // backends (or clean completion when the workgroup has no odd
        // lane at the barrier wavefront).
        let kernel = Kernel::from_asm(
            "divbar",
            "gid  r1
             addi r9, r0, 2
             remu r2, r1, r9
             bne  r2, r0, skip
             bar
             skip:
             ret",
        )
        .expect("assembles");
        let n = rng.u32_in(1, 150);
        let wg = rng.u32_in(1, config.wavefront_size * config.max_wavefronts_per_cu);
        let launch = Launch::new(n, wg, vec![]);
        let mem = seed_mem(rng);
        assert_equiv(&kernel, &launch, config, &mem, None);
    });
}
