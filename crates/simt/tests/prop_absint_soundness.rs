//! Simulator-checked soundness of the abstract interpreter.
//!
//! The lint crate's absint engine *claims* facts about kernels —
//! address bounds (K010), alignment (K011), local-store races (K012),
//! branch uniformity and per-access coalescing/bank-conflict cost.
//! None of those claims are trusted here: randomized programs run on
//! both execution backends with the trace oracle attached, and every
//! abstract prediction must over-approximate what the machine actually
//! did:
//!
//! * every concrete address lies inside the predicted interval;
//! * a concrete out-of-bounds access implies a K010 finding (or the
//!   documented unbounded-interval escape, where K010 stays silent by
//!   design);
//! * a concrete unaligned access implies a K011 finding — no escape;
//! * a concrete racy local store implies a K012 finding — no escape;
//! * a branch that concretely diverged is never proven uniform;
//! * observed cache-line counts, bank-conflict degrees and coalescing
//!   class ranks never exceed the predicted bounds.
//!
//! The two backends' traces must also be identical to each other,
//! extending the bit-identity contract to the observation hook.

use ggpu_isa::inst::{AluOp, BranchCond, IdSource, Inst, Reg};
use ggpu_lint::{
    analyze, verify_program_with_ctx, AnalysisCtx, CoalescingClass, Code, LintConfig,
    MemAccessSummary, Report,
};
use ggpu_prop::{cases, Rng};
use ggpu_simt::{
    ExecTrace, Gpu, Kernel, Launch, LramModel, ScalarAccelerator, SimError, SimtConfig,
    SoaAccelerator, LOCAL_WORDS,
};

const PARAM_SLOTS: usize = 8;

fn reg(rng: &mut Rng) -> Reg {
    // A small register pool so defs and uses actually collide.
    Reg::new(rng.u32_in(1, 7) as u8)
}

fn alu_op(rng: &mut Rng) -> AluOp {
    rng.pick_copy(&[
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Divu,
        AluOp::Remu,
        AluOp::Slt,
        AluOp::Sltu,
    ])
}

/// A random terminating program: straight-line ALU/id/param/memory
/// work with forward-only branches and a final `ret`. Memory
/// immediates are word multiples and address bases are often `<< 2`,
/// so a useful share of runs completes instead of faulting at the
/// first access — faulting runs are kept too (the fault properties
/// need them).
fn gen_program(rng: &mut Rng) -> Vec<Inst> {
    let body = rng.usize_in(5, 14);
    let mut prog = Vec::with_capacity(body + 1);
    for _ in 0..body {
        let pc = prog.len() as u32;
        let inst = match rng.u32_in(0, 99) {
            0..=14 => Inst::ReadId {
                rd: reg(rng),
                src: rng.pick_copy(&[
                    IdSource::GlobalId,
                    IdSource::LocalId,
                    IdSource::GroupId,
                    IdSource::GroupSize,
                    IdSource::GlobalSize,
                ]),
            },
            15..=24 => Inst::Param {
                rd: reg(rng),
                idx: rng.u32_in(0, 3) as u8,
            },
            25..=40 => Inst::AluImm {
                op: alu_op(rng),
                rd: reg(rng),
                rs1: reg(rng),
                imm: rng.i32_in(-8, 64) as i16,
            },
            41..=52 => Inst::Alu {
                op: alu_op(rng),
                rd: reg(rng),
                rs1: reg(rng),
                rs2: reg(rng),
            },
            // Word-scaling shift: the canonical address-forming idiom.
            53..=60 => Inst::AluImm {
                op: AluOp::Sll,
                rd: reg(rng),
                rs1: reg(rng),
                imm: 2,
            },
            61..=79 => {
                let (rs1, rs2) = (reg(rng), reg(rng));
                let imm = (rng.i32_in(0, 16) * 4) as i16;
                match rng.u32_in(0, 3) {
                    0 => Inst::Lw { rd: rs2, rs1, imm },
                    1 => Inst::Sw { rs1, rs2, imm },
                    2 => Inst::Lwl { rd: rs2, rs1, imm },
                    _ => Inst::Swl { rs1, rs2, imm },
                }
            }
            80..=89 => Inst::Branch {
                cond: rng.pick_copy(&[
                    BranchCond::Eq,
                    BranchCond::Ne,
                    BranchCond::Lt,
                    BranchCond::Ge,
                    BranchCond::Ltu,
                    BranchCond::Geu,
                ]),
                rs1: reg(rng),
                rs2: reg(rng),
                // Forward-only: no loops, guaranteed termination, and
                // the final `ret` stays reachable from every path.
                target: rng.u32_in(pc + 1, body as u32),
            },
            _ => Inst::AluImm {
                op: AluOp::Add,
                rd: reg(rng),
                rs1: reg(rng),
                imm: rng.i32_in(0, 32) as i16,
            },
        };
        prog.push(inst);
    }
    prog.push(Inst::Ret);
    prog
}

/// Runs `kernel` on one backend with the trace oracle attached.
fn run_traced(
    accel: &dyn ggpu_simt::Accelerator,
    kernel: &Kernel,
    launch: &Launch,
    memory_words: usize,
    init: &[u32],
) -> (Result<(), SimError>, ExecTrace) {
    let mut gpu = Gpu::new(SimtConfig::with_cus(1), memory_words);
    gpu.write_words(0, init).expect("init memory");
    let mut trace = ExecTrace::new(64, 8, 8);
    let res = gpu
        .launch_traced_with(accel, kernel, launch, &mut trace)
        .map(|_| ());
    (res, trace)
}

fn has_at(report: &Report, code: Code, pc: usize) -> bool {
    report
        .diagnostics
        .iter()
        .any(|d| d.code == code && d.inst == Some(pc))
}

/// Checks every soundness property of one executed program against its
/// trace. `ctx` must describe the exact launch the trace came from.
fn check_soundness(program: &[Inst], ctx: &AnalysisCtx, trace: &ExecTrace, label: &str) {
    let analysis = analyze(program, ctx);
    let report = verify_program_with_ctx("prop", program, &LintConfig::new(), ctx);

    for (pc, t) in trace.insts.iter().enumerate() {
        if t.issues == 0 {
            continue;
        }
        if t.divergent_branch {
            assert!(
                !analysis.uniform_branches.contains(&pc),
                "{label}: branch at {pc} diverged but was proven uniform\n{report}"
            );
        }
        if !t.any_access {
            continue;
        }
        let s: &MemAccessSummary = analysis
            .summary_at(pc)
            .unwrap_or_else(|| panic!("{label}: executed access at {pc} has no summary"));

        assert!(
            s.addr_lo <= t.min_addr && t.max_addr <= s.addr_hi,
            "{label}: inst {pc} touched [{}, {}] outside predicted [{}, {}]",
            t.min_addr,
            t.max_addr,
            s.addr_lo,
            s.addr_hi
        );
        if t.any_oob {
            assert!(
                has_at(&report, Code::K010, pc) || s.addr_hi == u32::MAX,
                "{label}: concrete OOB at {pc} with neither K010 nor the \
                 unbounded-interval escape\n{report}"
            );
        }
        if t.any_unaligned {
            assert!(
                has_at(&report, Code::K011, pc),
                "{label}: concrete unaligned access at {pc} without K011\n{report}"
            );
        }
        if t.racy_write {
            assert!(
                has_at(&report, Code::K012, pc),
                "{label}: concrete racy local store at {pc} without K012\n{report}"
            );
        }
        match s.space {
            ggpu_lint::MemSpace::Global => assert!(
                t.max_lines <= s.max_lines_per_issue,
                "{label}: inst {pc} touched {} lines, predicted at most {}",
                t.max_lines,
                s.max_lines_per_issue
            ),
            ggpu_lint::MemSpace::Local => assert!(
                t.max_bank_conflict <= s.bank_conflict_degree,
                "{label}: inst {pc} hit bank degree {}, predicted at most {}",
                t.max_bank_conflict,
                s.bank_conflict_degree
            ),
        }
        assert!(
            t.max_class_rank <= s.class.rank(),
            "{label}: inst {pc} observed class rank {} worse than predicted {:?}",
            t.max_class_rank,
            s.class
        );
    }
}

/// The main gate: randomized programs, both backends, trace parity
/// plus every soundness property — on completing *and* faulting runs.
#[test]
fn abstract_predictions_over_approximate_concrete_traces() {
    cases(128, |rng| {
        let program = gen_program(rng);
        let wgs = rng.pick_copy(&[2u32, 4, 8, 16, 32, 64]);
        let gs = wgs * rng.u32_in(1, 3);
        let memory_words = rng.usize_in(64, 256);
        let params: Vec<u32> = (0..4)
            .map(|_| rng.u32_in(0, (memory_words as u32 - 1) * 4) & !3)
            .collect();
        let init: Vec<u32> = (0..memory_words).map(|_| rng.u32_in(0, 255) * 4).collect();

        let kernel = Kernel {
            name: "prop".into(),
            program: program.clone(),
        };
        let launch = Launch::new(gs, wgs, params.clone());
        let (res_scalar, trace_scalar) =
            run_traced(&ScalarAccelerator, &kernel, &launch, memory_words, &init);
        let (res_soa, trace_soa) =
            run_traced(&SoaAccelerator, &kernel, &launch, memory_words, &init);

        // Backend parity extends to the observation hook: identical
        // outcomes AND identical traces.
        assert_eq!(res_scalar, res_soa, "backend outcomes diverged");
        assert_eq!(trace_scalar, trace_soa, "backend traces diverged");

        let mut padded = vec![0u32; PARAM_SLOTS];
        padded[..params.len()].copy_from_slice(&params);
        let ctx = AnalysisCtx {
            params: Some(padded),
            global_size: Some(gs),
            workgroup_size: Some(wgs),
            memory_words: Some(memory_words as u32),
            lram_words: LOCAL_WORDS as u32,
            ..AnalysisCtx::default()
        };
        let label = format!("gs={gs} wgs={wgs} mem={memory_words} res={res_scalar:?}");
        check_soundness(&program, &ctx, &trace_scalar, &label);
    });
}

/// Like [`run_traced`] but under a banked LRAM: the simulator charges
/// conflict beats for the given geometry and the trace oracle judges
/// conflict degrees against the same bank count.
fn run_traced_banked(
    accel: &dyn ggpu_simt::Accelerator,
    kernel: &Kernel,
    launch: &Launch,
    memory_words: usize,
    init: &[u32],
    banks: u32,
) -> (Result<(), SimError>, ExecTrace) {
    let mut config = SimtConfig::with_cus(1);
    config.lram = LramModel::Banked { banks };
    let mut gpu = Gpu::new(config, memory_words);
    gpu.write_words(0, init).expect("init memory");
    let mut trace = ExecTrace::new(64, banks, config.pes_per_cu);
    let res = gpu
        .launch_traced_with(accel, kernel, launch, &mut trace)
        .map(|_| ());
    (res, trace)
}

/// Banked geometries: the absint bank-conflict-degree bound must hold
/// for *every* LRAM geometry, not just the default 8 banks. Randomized
/// programs run under randomized bank counts with the conflict-aware
/// timing model engaged; predicted degree >= observed on every local
/// access, and the two backends agree on trace and outcome throughout.
#[test]
fn bank_conflict_bound_holds_across_geometries() {
    cases(96, |rng| {
        let banks = rng.pick_copy(&[1u32, 2, 3, 4, 8, 16]);
        let program = gen_program(rng);
        let wgs = rng.pick_copy(&[4u32, 8, 16, 32]);
        let gs = wgs * rng.u32_in(1, 2);
        let memory_words = rng.usize_in(64, 256);
        let params: Vec<u32> = (0..4)
            .map(|_| rng.u32_in(0, (memory_words as u32 - 1) * 4) & !3)
            .collect();
        let init: Vec<u32> = (0..memory_words).map(|_| rng.u32_in(0, 255) * 4).collect();

        let kernel = Kernel {
            name: "bankprop".into(),
            program: program.clone(),
        };
        let launch = Launch::new(gs, wgs, params.clone());
        let (res_scalar, trace_scalar) = run_traced_banked(
            &ScalarAccelerator,
            &kernel,
            &launch,
            memory_words,
            &init,
            banks,
        );
        let (res_soa, trace_soa) = run_traced_banked(
            &SoaAccelerator,
            &kernel,
            &launch,
            memory_words,
            &init,
            banks,
        );
        assert_eq!(res_scalar, res_soa, "banked outcomes diverged");
        assert_eq!(trace_scalar, trace_soa, "banked traces diverged");

        let mut padded = vec![0u32; PARAM_SLOTS];
        padded[..params.len()].copy_from_slice(&params);
        let ctx = AnalysisCtx {
            params: Some(padded),
            global_size: Some(gs),
            workgroup_size: Some(wgs),
            memory_words: Some(memory_words as u32),
            lram_words: LOCAL_WORDS as u32,
            lram_banks: banks,
            ..AnalysisCtx::default()
        };
        let label = format!("banks={banks} gs={gs} wgs={wgs} res={res_scalar:?}");
        check_soundness(&program, &ctx, &trace_scalar, &label);
    });
}

/// Bug-injection pin: the strided local store whose conflict degree the
/// paper-motivated banking transform is meant to cure. Stride-two words
/// over four banks land eight lanes on two banks (degree 4); doubling
/// the banks halves the degree — and the abstract prediction is tight,
/// not merely sound, on both geometries.
#[test]
fn strided_local_conflict_degree_is_tight() {
    let kernel = Kernel::from_asm(
        "stride2",
        "gid  r1
         slli r2, r1, 3
         swl  r2, r1, 0
         ret",
    )
    .expect("assembles");
    let launch = Launch::new(8, 8, vec![]);
    for (banks, degree) in [(4u32, 4u32), (8, 2)] {
        let (res, trace) = run_traced_banked(&ScalarAccelerator, &kernel, &launch, 64, &[], banks);
        assert_eq!(res, Ok(()));
        let t = trace.at(2).expect("store observed");
        assert_eq!(
            t.max_bank_conflict, degree,
            "observed degree at {banks} banks"
        );

        let ctx = AnalysisCtx {
            params: Some(vec![0; PARAM_SLOTS]),
            global_size: Some(8),
            workgroup_size: Some(8),
            memory_words: Some(64),
            lram_banks: banks,
            ..AnalysisCtx::default()
        };
        let analysis = analyze(&kernel.program, &ctx);
        let s = analysis.summary_at(2).expect("summary");
        assert_eq!(
            s.bank_conflict_degree, degree,
            "predicted degree at {banks} banks"
        );
        check_soundness(&kernel.program, &ctx, &trace, "pinned-stride2");
    }
}

/// Bug-injection pin: a store provably past the global bound faults in
/// the machine and carries a K010 under the exact launch context.
#[test]
fn concrete_global_oob_is_covered_by_k010() {
    let memory_words = 64usize;
    let program = vec![
        Inst::Param {
            rd: Reg::new(1),
            idx: 0,
        },
        Inst::Sw {
            rs1: Reg::new(1),
            rs2: Reg::new(2),
            imm: 0,
        },
        Inst::Ret,
    ];
    let kernel = Kernel {
        name: "oob".into(),
        program: program.clone(),
    };
    // Param 0 points one word past the end.
    let launch = Launch::new(4, 4, vec![memory_words as u32 * 4]);
    let (res, trace) = run_traced(&ScalarAccelerator, &kernel, &launch, memory_words, &[]);
    assert_eq!(
        res,
        Err(SimError::MemoryOutOfBounds {
            addr: memory_words as u32 * 4
        })
    );
    let t = trace.at(1).expect("store observed");
    assert!(t.any_oob);

    let ctx = AnalysisCtx {
        params: Some(vec![memory_words as u32 * 4, 0, 0, 0, 0, 0, 0, 0]),
        global_size: Some(4),
        workgroup_size: Some(4),
        memory_words: Some(memory_words as u32),
        ..AnalysisCtx::default()
    };
    let report = verify_program_with_ctx("oob", &program, &LintConfig::new(), &ctx);
    assert!(has_at(&report, Code::K010, 1), "missing K010:\n{report}");
    check_soundness(&program, &ctx, &trace, "pinned-oob");
}

/// Bug-injection pin: lanes storing their distinct global id to one
/// shared LRAM word race in the machine and carry a K012.
#[test]
fn concrete_local_race_is_covered_by_k012() {
    let program = vec![
        Inst::ReadId {
            rd: Reg::new(1),
            src: IdSource::GlobalId,
        },
        Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::new(2),
            rs1: Reg::new(0),
            imm: 0,
        },
        Inst::Swl {
            rs1: Reg::new(2),
            rs2: Reg::new(1),
            imm: 0,
        },
        Inst::Ret,
    ];
    let kernel = Kernel {
        name: "race".into(),
        program: program.clone(),
    };
    let launch = Launch::new(8, 8, vec![]);
    let (res, trace) = run_traced(&ScalarAccelerator, &kernel, &launch, 64, &[]);
    assert_eq!(res, Ok(()));
    let t = trace.at(2).expect("store observed");
    assert!(t.racy_write, "distinct ids into one word must race");

    let ctx = AnalysisCtx {
        params: Some(vec![0; PARAM_SLOTS]),
        global_size: Some(8),
        workgroup_size: Some(8),
        memory_words: Some(64),
        ..AnalysisCtx::default()
    };
    let report = verify_program_with_ctx("race", &program, &LintConfig::new(), &ctx);
    assert!(has_at(&report, Code::K012, 2), "missing K012:\n{report}");
    check_soundness(&program, &ctx, &trace, "pinned-race");
}

/// Bug-injection pin: a constant odd address faults as unaligned and
/// carries a K011.
#[test]
fn concrete_unaligned_access_is_covered_by_k011() {
    let program = vec![
        Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(0),
            imm: 2,
        },
        Inst::Lw {
            rd: Reg::new(2),
            rs1: Reg::new(1),
            imm: 0,
        },
        Inst::Ret,
    ];
    let kernel = Kernel {
        name: "mis".into(),
        program: program.clone(),
    };
    let launch = Launch::new(1, 1, vec![]);
    let (res, trace) = run_traced(&ScalarAccelerator, &kernel, &launch, 64, &[]);
    assert_eq!(res, Err(SimError::Unaligned { addr: 2 }));
    assert!(trace.at(1).expect("load observed").any_unaligned);

    let ctx = AnalysisCtx {
        params: Some(vec![0; PARAM_SLOTS]),
        global_size: Some(1),
        workgroup_size: Some(1),
        memory_words: Some(64),
        ..AnalysisCtx::default()
    };
    let report = verify_program_with_ctx("mis", &program, &LintConfig::new(), &ctx);
    assert!(has_at(&report, Code::K011, 1), "missing K011:\n{report}");
    check_soundness(&program, &ctx, &trace, "pinned-unaligned");
}

/// Bug-injection pin: a branch on the local id concretely diverges and
/// is never claimed uniform, while a branch on a parameter stays
/// convergent and *is* proven uniform — the two sides of the
/// uniformity claim.
#[test]
fn branch_uniformity_claims_match_observed_divergence() {
    let program = vec![
        Inst::ReadId {
            rd: Reg::new(1),
            src: IdSource::LocalId,
        },
        Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::new(2),
            rs1: Reg::new(0),
            imm: 4,
        },
        // Diverges: lanes 0–3 vs 4–7 go different ways.
        Inst::Branch {
            cond: BranchCond::Ltu,
            rs1: Reg::new(1),
            rs2: Reg::new(2),
            target: 4,
        },
        Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::new(3),
            rs1: Reg::new(3),
            imm: 1,
        },
        // Uniform: every lane compares the same parameter value.
        Inst::Param {
            rd: Reg::new(4),
            idx: 0,
        },
        Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::new(4),
            rs2: Reg::new(0),
            target: 7,
        },
        Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::new(3),
            rs1: Reg::new(3),
            imm: 1,
        },
        Inst::Ret,
    ];
    let kernel = Kernel {
        name: "div".into(),
        program: program.clone(),
    };
    let launch = Launch::new(8, 8, vec![7]);
    let (res, trace) = run_traced(&ScalarAccelerator, &kernel, &launch, 64, &[]);
    assert_eq!(res, Ok(()));
    assert!(trace.at(2).expect("branch observed").divergent_branch);
    assert!(!trace.at(5).expect("branch observed").divergent_branch);

    let ctx = AnalysisCtx {
        params: Some(vec![7, 0, 0, 0, 0, 0, 0, 0]),
        global_size: Some(8),
        workgroup_size: Some(8),
        memory_words: Some(64),
        ..AnalysisCtx::default()
    };
    let analysis = analyze(&program, &ctx);
    assert!(!analysis.uniform_branches.contains(&2));
    assert!(analysis.uniform_branches.contains(&5));
    check_soundness(&program, &ctx, &trace, "pinned-divergence");
}

/// The coalescing half of the oracle on the canonical access shapes:
/// unit-stride, broadcast and strided predictions are tight (equal to
/// the observation), not just sound.
#[test]
fn coalescing_predictions_are_tight_on_canonical_shapes() {
    // gid*4 + param: unit stride.
    let unit = vec![
        Inst::ReadId {
            rd: Reg::new(1),
            src: IdSource::GlobalId,
        },
        Inst::AluImm {
            op: AluOp::Sll,
            rd: Reg::new(2),
            rs1: Reg::new(1),
            imm: 2,
        },
        Inst::Lw {
            rd: Reg::new(3),
            rs1: Reg::new(2),
            imm: 0,
        },
        Inst::Ret,
    ];
    let kernel = Kernel {
        name: "unit".into(),
        program: unit.clone(),
    };
    let launch = Launch::new(64, 64, vec![]);
    let (res, trace) = run_traced(&ScalarAccelerator, &kernel, &launch, 256, &[]);
    assert_eq!(res, Ok(()));
    let t = trace.at(2).expect("load observed");
    assert_eq!(t.max_class_rank, CoalescingClass::UnitStride.rank());

    let ctx = AnalysisCtx {
        params: Some(vec![0; PARAM_SLOTS]),
        global_size: Some(64),
        workgroup_size: Some(64),
        memory_words: Some(256),
        ..AnalysisCtx::default()
    };
    let analysis = analyze(&unit, &ctx);
    let s = analysis.summary_at(2).expect("summary");
    assert_eq!(s.class, CoalescingClass::UnitStride);
    // 64 lanes × 4 bytes over 64-byte lines: 4 lines, + the interval
    // slack the bound formula allows.
    assert!(t.max_lines <= s.max_lines_per_issue);
    check_soundness(&unit, &ctx, &trace, "pinned-unit-stride");
}
