//! Soundness of the static verifier's control-flow claims against the
//! simulator: a random program that the verifier does not flag with
//! K004 (reachable fallthrough off the end), K005 (target out of
//! bounds) or K009 (empty program) must never raise
//! `SimError::PcOutOfRange` when executed.
//!
//! The generator emits only register/control instructions — no memory
//! accesses, no barriers — so the only simulator faults possible at
//! all are `PcOutOfRange` (what we claim never happens) and
//! `CycleLimit` (random loops may genuinely not terminate; that is
//! outside the verifier's claims and accepted).

use ggpu_isa::inst::{AluOp, BranchCond, IdSource, Inst, Reg};
use ggpu_lint::{verify_program, Code, LintConfig};
use ggpu_prop::Rng;
use ggpu_simt::{Gpu, Kernel, Launch, SimError, SimtConfig};

const ALU_OPS: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Divu,
    AluOp::Remu,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
];

const CONDS: [BranchCond; 6] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Ge,
    BranchCond::Ltu,
    BranchCond::Geu,
];

const ID_SOURCES: [IdSource; 5] = [
    IdSource::GlobalId,
    IdSource::LocalId,
    IdSource::GroupId,
    IdSource::GroupSize,
    IdSource::GlobalSize,
];

fn any_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.usize_in(0, Reg::COUNT as usize - 1) as u8)
}

/// A random register/control instruction. Targets are drawn from
/// `0..=len+1`, deliberately including the out-of-range value `len`
/// and `len + 1` so the K005 detector is exercised, not just assumed.
fn any_inst(rng: &mut Rng, len: usize) -> Inst {
    match rng.usize_in(0, 9) {
        0 | 1 => Inst::Alu {
            op: rng.pick_copy(&ALU_OPS),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        2 | 3 => Inst::AluImm {
            op: rng.pick_copy(&ALU_OPS),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            imm: rng.any_i16(),
        },
        4 => Inst::Lui {
            rd: any_reg(rng),
            imm: rng.any_u16(),
        },
        5 => Inst::ReadId {
            rd: any_reg(rng),
            src: rng.pick_copy(&ID_SOURCES),
        },
        6 => Inst::Param {
            rd: any_reg(rng),
            idx: rng.usize_in(0, 7) as u8,
        },
        7 => Inst::Branch {
            cond: rng.pick_copy(&CONDS),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            target: rng.usize_in(0, len + 1) as u32,
        },
        8 => Inst::Jmp {
            target: rng.usize_in(0, len + 1) as u32,
        },
        _ => Inst::Ret,
    }
}

fn any_program(rng: &mut Rng) -> Vec<Inst> {
    let len = rng.usize_in(1, 12);
    let mut program: Vec<Inst> = (0..len).map(|_| any_inst(rng, len)).collect();
    // Half the time, close the program with a `ret` so a healthy
    // share of samples pass the verifier and actually get executed.
    if rng.chance(0.5) {
        *program.last_mut().unwrap() = Inst::Ret;
    }
    program
}

#[test]
fn verifier_clean_programs_never_leave_the_program() {
    let config = LintConfig::new();
    // A tiny machine with a tight cycle ceiling: random loops are
    // common and genuinely infinite, and we only care whether the
    // abort reason is ever PcOutOfRange.
    let mut sim_config = SimtConfig::with_cus(1);
    sim_config.max_cycles = 20_000;
    let mut executed = 0u32;
    ggpu_prop::cases(384, |rng| {
        let program = any_program(rng);
        let report = verify_program("prop", &program, &config);
        if report.has(Code::K004) || report.has(Code::K005) || report.has(Code::K009) {
            return; // verifier rejected: nothing claimed about these
        }
        let mut gpu = Gpu::new(sim_config, 1 << 12);
        let kernel = Kernel {
            name: "prop".into(),
            program: program.clone(),
        };
        let launch = Launch::new(16, 8, vec![0; 8]);
        executed += 1;
        match gpu.launch(&kernel, &launch) {
            Ok(_) | Err(SimError::CycleLimit { .. }) => {}
            Err(e @ SimError::PcOutOfRange { .. }) => {
                panic!("verifier-clean program left the program: {e}\n{program:#?}")
            }
            Err(e) => panic!("impossible fault class for this generator: {e}\n{program:#?}"),
        }
    });
    assert!(
        executed >= 32,
        "generator too dirty: only {executed} verifier-clean samples ran"
    );
}

#[test]
fn verifier_flags_exactly_the_programs_that_fault() {
    // Converse direction on straight-line programs (no branches): the
    // verifier reports K004 if and only if the simulator faults with
    // PcOutOfRange.
    let config = LintConfig::new();
    let mut sim_config = SimtConfig::with_cus(1);
    sim_config.max_cycles = 20_000;
    ggpu_prop::cases(64, |rng| {
        let len = rng.usize_in(1, 6);
        let mut program: Vec<Inst> = (0..len)
            .map(|_| Inst::AluImm {
                op: AluOp::Add,
                rd: any_reg(rng),
                rs1: any_reg(rng),
                imm: rng.any_i16(),
            })
            .collect();
        let ends_with_ret = rng.chance(0.5);
        if ends_with_ret {
            *program.last_mut().unwrap() = Inst::Ret;
        }
        let report = verify_program("prop", &program, &config);
        assert_eq!(report.has(Code::K004), !ends_with_ret);
        let mut gpu = Gpu::new(sim_config, 1 << 12);
        let kernel = Kernel {
            name: "prop".into(),
            program,
        };
        let result = gpu.launch(&kernel, &Launch::new(8, 8, vec![0; 8]));
        match result {
            Ok(_) => assert!(ends_with_ret),
            Err(SimError::PcOutOfRange { pc }) => {
                assert!(!ends_with_ret);
                assert_eq!(pc as usize, len);
            }
            Err(e) => panic!("unexpected fault: {e}"),
        }
    });
}
