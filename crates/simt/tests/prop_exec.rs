//! Property tests of the SIMT executor: straight-line vector programs
//! must compute the same results as a per-lane scalar reference, and
//! the machine's cycle accounting must respect basic monotonicity.

use ggpu_isa::inst::AluOp;
use ggpu_prop::cases;
use ggpu_simt::{Gpu, Kernel, Launch, SimtConfig};

const OPS: [(AluOp, &str); 7] = [
    (AluOp::Add, "add"),
    (AluOp::Sub, "sub"),
    (AluOp::Mul, "mul"),
    (AluOp::And, "and"),
    (AluOp::Or, "or"),
    (AluOp::Xor, "xor"),
    (AluOp::Sltu, "sltu"),
];

/// out[i] = (i + c1) op (i * c2) evaluated per lane must match the
/// scalar computation for every work-item.
#[test]
fn vector_alu_matches_scalar_reference() {
    cases(64, |rng| {
        let (op, mnemonic) = rng.pick_copy(&OPS);
        let c1 = rng.i32_in(0, 999) as i16;
        let c2 = rng.i32_in(0, 999) as i16;
        let n = rng.u32_in(1, 299);
        let src = format!(
            "
            gid   r1
            addi  r2, r1, {c1}
            addi  r3, r0, {c2}
            mul   r3, r1, r3
            {mnemonic} r4, r2, r3
            param r5, 0
            slli  r6, r1, 2
            add   r6, r6, r5
            sw    r6, r4, 0
            ret
            "
        );
        let kernel = Kernel::from_asm("prop", &src).expect("valid");
        let mut gpu = Gpu::new(SimtConfig::with_cus(2), 1 << 16);
        gpu.launch(&kernel, &Launch::new(n, 64, vec![0x100]))
            .expect("runs");
        let out = gpu.read_words(0x100, n as usize).expect("in range");
        for i in 0..n {
            let a = i.wrapping_add(c1 as u32);
            let b = i.wrapping_mul(c2 as u32);
            assert_eq!(out[i as usize], op.apply(a, b), "item {i}");
        }
    });
}

/// Cycle counts grow with the grid and never go backwards when
/// work is added.
#[test]
fn cycles_monotonic_in_grid_size() {
    cases(64, |rng| {
        let n = rng.u32_in(8, 199);
        let kernel =
            Kernel::from_asm("work", "gid r1\naddi r2, r1, 1\nmul r3, r2, r2\nret").expect("valid");
        let run = |items: u32| {
            Gpu::new(SimtConfig::with_cus(1), 4096)
                .launch(&kernel, &Launch::new(items, 64, vec![]))
                .expect("runs")
        };
        let small = run(n);
        let large = run(n * 4);
        assert!(large.cycles >= small.cycles);
        assert!(large.lane_ops == small.lane_ops * 4);
    });
}

/// The same launch is bit-for-bit deterministic.
#[test]
fn launches_are_deterministic() {
    cases(64, |rng| {
        let n = rng.u32_in(1, 255);
        let cus = rng.u32_in(1, 4);
        let kernel = Kernel::from_asm(
            "det",
            "gid r1\nparam r2, 0\nslli r3, r1, 2\nadd r3, r3, r2\nsw r3, r1, 0\nret",
        )
        .expect("valid");
        let run = || {
            let mut gpu = Gpu::new(SimtConfig::with_cus(cus), 1 << 14);
            let stats = gpu
                .launch(&kernel, &Launch::new(n, 128, vec![0x200]))
                .expect("runs");
            (
                stats.cycles,
                gpu.read_words(0x200, n as usize).expect("in range"),
            )
        };
        let (c1, o1) = run();
        let (c2, o2) = run();
        assert_eq!(c1, c2);
        assert_eq!(o1, o2);
    });
}
