//! Property tests of the SIMT executor: straight-line vector programs
//! must compute the same results as a per-lane scalar reference, and
//! the machine's cycle accounting must respect basic monotonicity.

use ggpu_isa::inst::AluOp;
use ggpu_simt::{Gpu, Kernel, Launch, SimtConfig};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = (AluOp, &'static str)> {
    prop_oneof![
        Just((AluOp::Add, "add")),
        Just((AluOp::Sub, "sub")),
        Just((AluOp::Mul, "mul")),
        Just((AluOp::And, "and")),
        Just((AluOp::Or, "or")),
        Just((AluOp::Xor, "xor")),
        Just((AluOp::Sltu, "sltu")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// out[i] = (i + c1) op (i * c2) evaluated per lane must match the
    /// scalar computation for every work-item.
    #[test]
    fn vector_alu_matches_scalar_reference(
        (op, mnemonic) in arb_op(),
        c1 in 0i16..1000,
        c2 in 0i16..1000,
        n in 1u32..300,
    ) {
        let src = format!(
            "
            gid   r1
            addi  r2, r1, {c1}
            addi  r3, r0, {c2}
            mul   r3, r1, r3
            {mnemonic} r4, r2, r3
            param r5, 0
            slli  r6, r1, 2
            add   r6, r6, r5
            sw    r6, r4, 0
            ret
            "
        );
        let kernel = Kernel::from_asm("prop", &src).expect("valid");
        let mut gpu = Gpu::new(SimtConfig::with_cus(2), 1 << 16);
        gpu.launch(&kernel, &Launch::new(n, 64, vec![0x100])).expect("runs");
        let out = gpu.read_words(0x100, n as usize).expect("in range");
        for i in 0..n {
            let a = i.wrapping_add(c1 as u32);
            let b = i.wrapping_mul(c2 as u32);
            prop_assert_eq!(out[i as usize], op.apply(a, b), "item {}", i);
        }
    }

    /// Cycle counts grow with the grid and never go backwards when
    /// work is added.
    #[test]
    fn cycles_monotonic_in_grid_size(n in 8u32..200) {
        let kernel = Kernel::from_asm(
            "work",
            "gid r1\naddi r2, r1, 1\nmul r3, r2, r2\nret",
        ).expect("valid");
        let run = |items: u32| {
            Gpu::new(SimtConfig::with_cus(1), 4096)
                .launch(&kernel, &Launch::new(items, 64, vec![]))
                .expect("runs")
        };
        let small = run(n);
        let large = run(n * 4);
        prop_assert!(large.cycles >= small.cycles);
        prop_assert!(large.lane_ops == small.lane_ops * 4);
    }

    /// The same launch is bit-for-bit deterministic.
    #[test]
    fn launches_are_deterministic(n in 1u32..256, cus in 1u32..5) {
        let kernel = Kernel::from_asm(
            "det",
            "gid r1\nparam r2, 0\nslli r3, r1, 2\nadd r3, r3, r2\nsw r3, r1, 0\nret",
        ).expect("valid");
        let run = || {
            let mut gpu = Gpu::new(SimtConfig::with_cus(cus), 1 << 14);
            let stats = gpu.launch(&kernel, &Launch::new(n, 128, vec![0x200])).expect("runs");
            (stats.cycles, gpu.read_words(0x200, n as usize).expect("in range"))
        };
        let (c1, o1) = run();
        let (c2, o2) = run();
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(o1, o2);
    }
}
