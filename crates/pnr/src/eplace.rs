//! Electrostatic analytical placement core (ePlace/RePlAce style,
//! after DG-RePlAce's data-parallel formulation).
//!
//! Each partition is solved independently in **local coordinates**
//! (origin at the partition's bottom-left corner): macros are modeled
//! as positive charges whose density over a bin grid must flatten out,
//! while a weighted-average-smoothed half-perimeter wirelength pulls
//! connected macros together and toward the partition's fixed I/O
//! anchors. The combined objective
//!
//! ```text
//!   f(v) = Σ_nets w_n · WA_n(v)  +  λ · Σ_i q_i · ψ(v_i)
//! ```
//!
//! is minimized with Nesterov-accelerated descent
//! ([`crate::nesterov`]); the electrostatic potential `ψ` comes from a
//! bin-based Poisson solve (Gauss–Seidel, Neumann boundaries — no FFT
//! needed at SRAM-macro counts), and `λ` grows geometrically so
//! wirelength dominates early and spreading dominates late, exactly as
//! in ePlace's multiplier schedule.
//!
//! The net model is dataflow-derived rather than extracted from a
//! detailed netlist: macro roles identify the CU↔GMC interface
//! memories (FIFOs, cache arrays) which are pulled toward the
//! GMC-facing partition edge with the [`NetWeights::io`] weight — the
//! planner derives that weight from the kernels' measured traffic
//! classes (`gpuplanner::cycles::dataflow_net_weights`) — while
//! control memories (CRAM, scheduler state) are pulled toward the
//! dispatcher's top strip and hierarchical groups (one per PE) are
//! held together by local star nets.
//!
//! Everything here is deterministic: the initial state is seeded
//! splitmix64 jitter, the Poisson sweep order is fixed, and the
//! parallel gradient/density evaluation ([`crate::pool::Pool::map`])
//! reduces partial results in input order.

use crate::nesterov::{self, Bounds, NesterovOptions};
use crate::pool::Pool;
use ggpu_netlist::module::MemoryRole;

/// Dataflow-derived net weights of the analytical placer's three net
/// classes. Carried in [`crate::PnrOptions`]; the defaults reproduce a
/// generic memory-bound workload, `gpuplanner::cycles::
/// dataflow_net_weights` derives sharper values from the shipped
/// kernels' proven traffic classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetWeights {
    /// Weight of the CU↔GMC interface net (FIFOs and cache arrays
    /// pulled toward the memory-controller-facing edge). Scales with
    /// measured global-memory traffic.
    pub io: f64,
    /// Weight of the control net (instruction RAM and scheduler state
    /// pulled toward the dispatcher's top strip).
    pub control: f64,
    /// Weight of the hierarchical-group star nets (register-file and
    /// scratchpad clusters held together).
    pub local: f64,
}

impl Default for NetWeights {
    fn default() -> Self {
        Self {
            io: 2.0,
            control: 1.2,
            local: 1.0,
        }
    }
}

impl NetWeights {
    /// Stable bit pattern for cache keys.
    pub(crate) fn key_bits(&self) -> [u64; 3] {
        [
            self.io.to_bits(),
            self.control.to_bits(),
            self.local.to_bits(),
        ]
    }
}

/// Which partition edge faces the memory controller — the fixed
/// anchor of the I/O net in local coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum IoSide {
    /// GMC is to the left of this partition (right CU column).
    Left,
    /// GMC is to the right of this partition (left CU column).
    Right,
    /// CU columns flank this partition on both sides (the GMC itself).
    Both,
}

impl IoSide {
    pub(crate) fn key_code(self) -> u64 {
        match self {
            IoSide::Left => 0,
            IoSide::Right => 1,
            IoSide::Both => 2,
        }
    }
}

/// One macro to place: outline only, in its natural orientation.
#[derive(Debug, Clone)]
pub(crate) struct MacroShape {
    pub name: String,
    pub role: MemoryRole,
    pub w: f64,
    pub h: f64,
}

/// A pin of the net model: a movable macro (by index) or a fixed
/// anchor point in local coordinates.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Pin {
    Movable(usize),
    Fixed(f64, f64),
}

/// A weighted multi-pin net.
#[derive(Debug, Clone)]
pub(crate) struct Net {
    pub pins: Vec<Pin>,
    pub weight: f64,
}

/// Roles that talk across the CU↔GMC bus.
fn is_io_role(role: MemoryRole) -> bool {
    matches!(
        role,
        MemoryRole::Fifo | MemoryRole::CacheData | MemoryRole::CacheTag | MemoryRole::RuntimeMemory
    )
}

/// Roles fed by the top-strip dispatcher.
fn is_control_role(role: MemoryRole) -> bool {
    matches!(
        role,
        MemoryRole::InstructionRam | MemoryRole::SchedulerState
    )
}

/// Hierarchical group of a macro: the prefix before the last `/`
/// (`"pe3/rf_bank_d1"` → `"pe3"`), or the empty group for flat names.
fn group_of(name: &str) -> &str {
    name.rfind('/').map_or("", |i| &name[..i])
}

/// Builds the dataflow net model for one partition's macros.
///
/// Three net classes:
/// 1. one star net per hierarchical group (members + the partition
///    center as a weak fixed pin) — holds PE clusters together,
/// 2. one I/O net over interface roles, anchored on the GMC-facing
///    edge midpoint(s),
/// 3. one control net over CRAM/scheduler roles, anchored at the top
///    edge midpoint (the dispatcher lives in the top strip).
pub(crate) fn build_nets(
    shapes: &[MacroShape],
    w: f64,
    h: f64,
    side: IoSide,
    weights: &NetWeights,
) -> Vec<Net> {
    use std::collections::BTreeMap;
    let mut nets = Vec::new();

    let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, s) in shapes.iter().enumerate() {
        groups.entry(group_of(&s.name)).or_default().push(i);
    }
    for (_, members) in groups {
        let mut pins: Vec<Pin> = members.into_iter().map(Pin::Movable).collect();
        pins.push(Pin::Fixed(w / 2.0, h / 2.0));
        nets.push(Net {
            pins,
            weight: weights.local,
        });
    }

    let io_members: Vec<usize> = shapes
        .iter()
        .enumerate()
        .filter(|(_, s)| is_io_role(s.role))
        .map(|(i, _)| i)
        .collect();
    if !io_members.is_empty() {
        let mut pins: Vec<Pin> = io_members.into_iter().map(Pin::Movable).collect();
        match side {
            IoSide::Left => pins.push(Pin::Fixed(0.0, h / 2.0)),
            IoSide::Right => pins.push(Pin::Fixed(w, h / 2.0)),
            IoSide::Both => {
                pins.push(Pin::Fixed(0.0, h / 2.0));
                pins.push(Pin::Fixed(w, h / 2.0));
            }
        }
        nets.push(Net {
            pins,
            weight: weights.io,
        });
    }

    let ctl_members: Vec<usize> = shapes
        .iter()
        .enumerate()
        .filter(|(_, s)| is_control_role(s.role))
        .map(|(i, _)| i)
        .collect();
    if !ctl_members.is_empty() {
        let mut pins: Vec<Pin> = ctl_members.into_iter().map(Pin::Movable).collect();
        pins.push(Pin::Fixed(w / 2.0, h));
        nets.push(Net {
            pins,
            weight: weights.control,
        });
    }
    nets
}

/// Exact weighted half-perimeter wirelength of the net model at the
/// given macro-center positions.
pub(crate) fn exact_hpwl(nets: &[Net], pos: &[(f64, f64)]) -> f64 {
    let mut total = 0.0;
    for net in nets {
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for pin in &net.pins {
            let (x, y) = match *pin {
                Pin::Movable(i) => pos[i],
                Pin::Fixed(x, y) => (x, y),
            };
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        if max_x >= min_x {
            total += net.weight * ((max_x - min_x) + (max_y - min_y));
        }
    }
    total
}

/// One axis of a pin, for the axis-separable WA model.
fn axis(pin: Pin, pos: &[(f64, f64)], x_axis: bool) -> (Option<usize>, f64) {
    match pin {
        Pin::Movable(i) => (Some(i), if x_axis { pos[i].0 } else { pos[i].1 }),
        Pin::Fixed(x, y) => (None, if x_axis { x } else { y }),
    }
}

/// Adds the weighted-average smoothed HPWL gradient of one net/axis
/// into `grad`, returning the smoothed span.
///
/// WA(x) = Σxᵢe^{xᵢ/γ}/Σe^{xᵢ/γ} − Σxᵢe^{−xᵢ/γ}/Σe^{−xᵢ/γ}; the
/// exponentials are max-shifted for stability and the closed-form
/// gradient is accumulated only on movable pins.
fn wa_axis_grad(
    net: &Net,
    pos: &[(f64, f64)],
    x_axis: bool,
    gamma: f64,
    grad: &mut [(f64, f64)],
) -> f64 {
    let coords: Vec<(Option<usize>, f64)> =
        net.pins.iter().map(|&p| axis(p, pos, x_axis)).collect();
    let hi = coords.iter().fold(f64::NEG_INFINITY, |m, &(_, x)| m.max(x));
    let lo = coords.iter().fold(f64::INFINITY, |m, &(_, x)| m.min(x));
    if !hi.is_finite() || !lo.is_finite() {
        return 0.0;
    }
    // Positive (max) side, shifted by hi; negative (min) side, by lo.
    let mut sp = 0.0;
    let mut ap = 0.0;
    let mut sn = 0.0;
    let mut an = 0.0;
    for &(_, x) in &coords {
        let ep = ((x - hi) / gamma).exp();
        let en = ((lo - x) / gamma).exp();
        sp += ep;
        ap += x * ep;
        sn += en;
        an += x * en;
    }
    let wa = ap / sp - an / sn;
    for &(idx, x) in &coords {
        let Some(i) = idx else { continue };
        let ep = ((x - hi) / gamma).exp();
        let en = ((lo - x) / gamma).exp();
        let dp = ep * ((1.0 + x / gamma) * sp - ap / gamma) / (sp * sp);
        let dn = en * ((1.0 - x / gamma) * sn + an / gamma) / (sn * sn);
        let d = net.weight * (dp - dn);
        if x_axis {
            grad[i].0 += d;
        } else {
            grad[i].1 += d;
        }
    }
    net.weight * wa
}

/// Evaluates the smoothed wirelength and accumulates its gradient,
/// mapping nets over the worker pool in deterministic chunks.
fn wirelength_grad(
    nets: &[Net],
    pos: &[(f64, f64)],
    gamma: f64,
    pool: &Pool,
    grad: &mut [(f64, f64)],
) -> f64 {
    // Below this many nets the chunk bookkeeping costs more than it
    // saves; the threshold is a constant so the split is deterministic.
    const PAR_THRESHOLD: usize = 64;
    const CHUNK: usize = 16;
    if nets.len() < PAR_THRESHOLD || pool.threads() <= 1 {
        let mut wl = 0.0;
        for net in nets {
            wl += wa_axis_grad(net, pos, true, gamma, grad);
            wl += wa_axis_grad(net, pos, false, gamma, grad);
        }
        return wl;
    }
    let chunks: Vec<Vec<Net>> = nets.chunks(CHUNK).map(<[Net]>::to_vec).collect();
    let pos_shared: std::sync::Arc<Vec<(f64, f64)>> = std::sync::Arc::new(pos.to_vec());
    let n = pos.len();
    let partials = pool.map(chunks, move |chunk| {
        let mut g = vec![(0.0, 0.0); n];
        let mut wl = 0.0;
        for net in &chunk {
            wl += wa_axis_grad(net, &pos_shared, true, gamma, &mut g);
            wl += wa_axis_grad(net, &pos_shared, false, gamma, &mut g);
        }
        (wl, g)
    });
    let mut wl = 0.0;
    for (partial_wl, g) in partials {
        wl += partial_wl;
        for (acc, d) in grad.iter_mut().zip(g) {
            acc.0 += d.0;
            acc.1 += d.1;
        }
    }
    wl
}

/// Bin grid of the electrostatic system. Kept small and fixed-size:
/// at SRAM-macro counts (≤ a few hundred charges) a 16×16 grid
/// resolves density at macro granularity and a Gauss–Seidel Poisson
/// solve converges in a few dozen sweeps.
const BINS: usize = 16;
const POISSON_SWEEPS: usize = 40;

struct Field {
    /// Bin density ρ (area overlap / bin area), row-major.
    rho: Vec<f64>,
    /// Electrostatic potential ψ from ∇²ψ = −(ρ − ρ̄).
    psi: Vec<f64>,
    bw: f64,
    bh: f64,
}

/// Deposits one macro's area into the density grid, overlap-weighted.
fn deposit(rho: &mut [f64], shape: &MacroShape, center: (f64, f64), bw: f64, bh: f64) {
    let x0 = center.0 - shape.w / 2.0;
    let x1 = center.0 + shape.w / 2.0;
    let y0 = center.1 - shape.h / 2.0;
    let y1 = center.1 + shape.h / 2.0;
    let i0 = ((x0 / bw).floor().max(0.0)) as usize;
    let i1 = ((x1 / bw).ceil().min(BINS as f64)) as usize;
    let j0 = ((y0 / bh).floor().max(0.0)) as usize;
    let j1 = ((y1 / bh).ceil().min(BINS as f64)) as usize;
    for j in j0..j1.max(j0) {
        for i in i0..i1.max(i0) {
            let bx0 = i as f64 * bw;
            let by0 = j as f64 * bh;
            let ox = (x1.min(bx0 + bw) - x0.max(bx0)).max(0.0);
            let oy = (y1.min(by0 + bh) - y0.max(by0)).max(0.0);
            rho[j * BINS + i] += ox * oy / (bw * bh);
        }
    }
}

impl Field {
    /// Accumulates macro-area density over the grid, one deterministic
    /// partial grid per chunk of macros.
    fn build(shapes: &[MacroShape], pos: &[(f64, f64)], w: f64, h: f64, pool: &Pool) -> Field {
        const PAR_THRESHOLD: usize = 128;
        const CHUNK: usize = 32;
        let bw = w / BINS as f64;
        let bh = h / BINS as f64;
        let mut rho = vec![0.0; BINS * BINS];
        if shapes.len() < PAR_THRESHOLD || pool.threads() <= 1 {
            for (shape, &center) in shapes.iter().zip(pos) {
                deposit(&mut rho, shape, center, bw, bh);
            }
        } else {
            let items: Vec<Vec<(MacroShape, (f64, f64))>> = shapes
                .iter()
                .cloned()
                .zip(pos.iter().copied())
                .collect::<Vec<_>>()
                .chunks(CHUNK)
                .map(<[(MacroShape, (f64, f64))]>::to_vec)
                .collect();
            let partials = pool.map(items, move |chunk| {
                let mut partial = vec![0.0; BINS * BINS];
                for (shape, center) in &chunk {
                    deposit(&mut partial, shape, *center, bw, bh);
                }
                partial
            });
            for partial in partials {
                for (acc, d) in rho.iter_mut().zip(partial) {
                    *acc += d;
                }
            }
        }

        // Poisson: ∇²ψ = −(ρ − ρ̄), Gauss–Seidel with Neumann
        // (mirrored) boundaries; the fixed sweep order keeps the solve
        // bit-deterministic. The mean is subtracted so the Neumann
        // problem is consistent, and ψ is re-centred afterwards (the
        // gauge does not affect the field).
        let mean = rho.iter().sum::<f64>() / (BINS * BINS) as f64;
        let scale = bw * bh; // grid-step normalization of the RHS
        let mut psi = vec![0.0; BINS * BINS];
        for _ in 0..POISSON_SWEEPS {
            for j in 0..BINS {
                for i in 0..BINS {
                    let at = |ii: isize, jj: isize| -> f64 {
                        let ii = ii.clamp(0, BINS as isize - 1) as usize;
                        let jj = jj.clamp(0, BINS as isize - 1) as usize;
                        psi[jj * BINS + ii]
                    };
                    let (i_, j_) = (i as isize, j as isize);
                    let neighbors =
                        at(i_ - 1, j_) + at(i_ + 1, j_) + at(i_, j_ - 1) + at(i_, j_ + 1);
                    psi[j * BINS + i] = (neighbors + (rho[j * BINS + i] - mean) * scale) / 4.0;
                }
            }
        }
        let psi_mean = psi.iter().sum::<f64>() / (BINS * BINS) as f64;
        for p in &mut psi {
            *p -= psi_mean;
        }
        Field { rho, psi, bw, bh }
    }

    /// Electric field −∇ψ at bin `(i, j)` by central differences.
    fn e_at(&self, i: usize, j: usize) -> (f64, f64) {
        let at = |ii: isize, jj: isize| -> f64 {
            let ii = ii.clamp(0, BINS as isize - 1) as usize;
            let jj = jj.clamp(0, BINS as isize - 1) as usize;
            self.psi[jj * BINS + ii]
        };
        let (i_, j_) = (i as isize, j as isize);
        let ex = -(at(i_ + 1, j_) - at(i_ - 1, j_)) / (2.0 * self.bw);
        let ey = -(at(i_, j_ + 1) - at(i_, j_ - 1)) / (2.0 * self.bh);
        (ex, ey)
    }

    /// Overlap-weighted mean field over a macro's footprint.
    fn field_on(&self, shape: &MacroShape, center: (f64, f64)) -> (f64, f64) {
        let x0 = center.0 - shape.w / 2.0;
        let x1 = center.0 + shape.w / 2.0;
        let y0 = center.1 - shape.h / 2.0;
        let y1 = center.1 + shape.h / 2.0;
        let i0 = ((x0 / self.bw).floor().max(0.0)) as usize;
        let i1 = (((x1 / self.bw).ceil()).min(BINS as f64)) as usize;
        let j0 = ((y0 / self.bh).floor().max(0.0)) as usize;
        let j1 = (((y1 / self.bh).ceil()).min(BINS as f64)) as usize;
        let mut ex = 0.0;
        let mut ey = 0.0;
        let mut total = 0.0;
        for j in j0..j1.max(j0) {
            for i in i0..i1.max(i0) {
                let bx0 = i as f64 * self.bw;
                let by0 = j as f64 * self.bh;
                let ox = (x1.min(bx0 + self.bw) - x0.max(bx0)).max(0.0);
                let oy = (y1.min(by0 + self.bh) - y0.max(by0)).max(0.0);
                let wgt = ox * oy;
                let (bex, bey) = self.e_at(i, j);
                ex += wgt * bex;
                ey += wgt * bey;
                total += wgt;
            }
        }
        if total > 0.0 {
            (ex / total, ey / total)
        } else {
            (0.0, 0.0)
        }
    }

    /// Density overflow: macro area in bins filled beyond 100 %,
    /// normalized by total macro area. A bin over full fill implies
    /// physical overlap, so 0 means the placement is spread enough to
    /// legalize without displacement pile-ups.
    fn overflow(&self, total_macro_area: f64) -> f64 {
        if total_macro_area <= 0.0 {
            return 0.0;
        }
        let over: f64 = self
            .rho
            .iter()
            .map(|&r| (r - 1.0).max(0.0) * self.bw * self.bh)
            .sum();
        over / total_macro_area
    }
}

/// splitmix64 — the repo's standard deterministic mixer (same scheme
/// as `ggpu-prop` and the fault campaign's per-trial keys).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform f64 in `[0, 1)` from the mixer.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Result of one partition's global placement.
#[derive(Debug, Clone)]
pub(crate) struct SolveResult {
    /// Macro centers in local coordinates, same order as the input
    /// shapes.
    pub pos: Vec<(f64, f64)>,
    /// Nesterov iterations actually run.
    pub iterations: usize,
    /// Final density overflow.
    pub overflow: f64,
}

/// Solves the global placement of one partition: Nesterov descent on
/// WA wirelength + electrostatic density, in local coordinates.
pub(crate) fn solve(
    shapes: &[MacroShape],
    w: f64,
    h: f64,
    side: IoSide,
    weights: &NetWeights,
    seed: u64,
    pool: &Pool,
) -> SolveResult {
    let n = shapes.len();
    if n == 0 {
        return SolveResult {
            pos: Vec::new(),
            iterations: 0,
            overflow: 0.0,
        };
    }
    let nets = build_nets(shapes, w, h, side, weights);
    let total_area: f64 = shapes.iter().map(|s| s.w * s.h).sum();

    // Initial state: every macro at the partition center, plus seeded
    // jitter (±12 % of each dimension) to break the symmetry that
    // would otherwise leave the density force directionless.
    let mut rng = seed ^ 0x6a09_e667_f3bc_c909;
    let mut x = vec![0.0; 2 * n];
    let mut lo = vec![0.0; 2 * n];
    let mut hi = vec![0.0; 2 * n];
    for (i, s) in shapes.iter().enumerate() {
        let jx = (unit_f64(&mut rng) - 0.5) * 0.24 * w;
        let jy = (unit_f64(&mut rng) - 0.5) * 0.24 * h;
        lo[2 * i] = (s.w / 2.0).min(w / 2.0);
        hi[2 * i] = (w - s.w / 2.0).max(w / 2.0);
        lo[2 * i + 1] = (s.h / 2.0).min(h / 2.0);
        hi[2 * i + 1] = (h - s.h / 2.0).max(h / 2.0);
        x[2 * i] = (w / 2.0 + jx).clamp(lo[2 * i], hi[2 * i]);
        x[2 * i + 1] = (h / 2.0 + jy).clamp(lo[2 * i + 1], hi[2 * i + 1]);
    }
    let bounds = Bounds { lo, hi };
    let gamma = 0.06 * w.max(h);

    // The density multiplier: auto-balanced against the wirelength
    // gradient on the first evaluation, then grown geometrically so
    // the spreading force wins in the endgame.
    let mut lambda = f64::NAN;
    const LAMBDA_GROWTH: f64 = 1.05;

    let opts = NesterovOptions {
        max_iters: 350,
        min_iters: 40,
        stop_overflow: 0.08,
    };
    let shapes_vec = shapes.to_vec();
    let outcome = nesterov::minimize(&mut x, &bounds, &opts, |v, g| {
        let pos: Vec<(f64, f64)> = (0..n).map(|i| (v[2 * i], v[2 * i + 1])).collect();
        let mut wl_grad = vec![(0.0, 0.0); n];
        wirelength_grad(&nets, &pos, gamma, pool, &mut wl_grad);
        let field = Field::build(&shapes_vec, &pos, w, h, pool);
        let mut density_grad = vec![(0.0, 0.0); n];
        for (i, s) in shapes_vec.iter().enumerate() {
            let (ex, ey) = field.field_on(s, pos[i]);
            let q = s.w * s.h;
            // ∇(q·ψ) = −q·E: descending this pushes charges apart.
            density_grad[i] = (-q * ex, -q * ey);
        }
        if !lambda.is_finite() {
            let wl_norm: f64 = wl_grad.iter().map(|g| g.0.abs() + g.1.abs()).sum();
            let d_norm: f64 = density_grad.iter().map(|g| g.0.abs() + g.1.abs()).sum();
            lambda = if d_norm > 0.0 { wl_norm / d_norm } else { 0.0 };
        } else {
            lambda *= LAMBDA_GROWTH;
        }
        for i in 0..n {
            g[2 * i] = wl_grad[i].0 + lambda * density_grad[i].0;
            g[2 * i + 1] = wl_grad[i].1 + lambda * density_grad[i].1;
        }
        field.overflow(total_area)
    });

    SolveResult {
        pos: (0..n).map(|i| (x[2 * i], x[2 * i + 1])).collect(),
        iterations: outcome.iterations,
        overflow: outcome.overflow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(name: &str, role: MemoryRole, w: f64, h: f64) -> MacroShape {
        MacroShape {
            name: name.into(),
            role,
            w,
            h,
        }
    }

    fn cu_like_shapes() -> Vec<MacroShape> {
        let mut shapes = Vec::new();
        for pe in 0..8 {
            for b in 0..4 {
                shapes.push(shape(
                    &format!("pe{pe}/rf_bank{b}"),
                    MemoryRole::RegisterFile,
                    60.0,
                    40.0,
                ));
            }
        }
        shapes.push(shape("cram0", MemoryRole::InstructionRam, 120.0, 80.0));
        shapes.push(shape("lram0", MemoryRole::ScratchRam, 100.0, 90.0));
        shapes.push(shape("fifo_req", MemoryRole::Fifo, 50.0, 30.0));
        shapes.push(shape("fifo_rsp", MemoryRole::Fifo, 50.0, 30.0));
        shapes.push(shape("sched0", MemoryRole::SchedulerState, 40.0, 40.0));
        shapes
    }

    #[test]
    fn net_model_covers_every_macro() {
        let shapes = cu_like_shapes();
        let nets = build_nets(
            &shapes,
            1000.0,
            1000.0,
            IoSide::Right,
            &NetWeights::default(),
        );
        let mut covered = vec![false; shapes.len()];
        for net in &nets {
            assert!(net.weight > 0.0);
            for pin in &net.pins {
                if let Pin::Movable(i) = pin {
                    covered[*i] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "every macro is on some net");
        // 8 PE groups + 1 flat group + io + control.
        assert_eq!(nets.len(), 8 + 1 + 1 + 1);
    }

    #[test]
    fn wa_gradient_matches_finite_differences() {
        let shapes = cu_like_shapes();
        let nets = build_nets(&shapes, 800.0, 800.0, IoSide::Left, &NetWeights::default());
        let mut rng = 42u64;
        let pos: Vec<(f64, f64)> = (0..shapes.len())
            .map(|_| {
                (
                    100.0 + 600.0 * unit_f64(&mut rng),
                    100.0 + 600.0 * unit_f64(&mut rng),
                )
            })
            .collect();
        let gamma = 48.0;
        let pool = Pool::new(1);
        let mut grad = vec![(0.0, 0.0); pos.len()];
        let wl = wirelength_grad(&nets, &pos, gamma, &pool, &mut grad);
        assert!(wl > 0.0);
        let eps = 1e-4;
        for probe in [0usize, 7, 20, pos.len() - 1] {
            let mut plus = pos.clone();
            plus[probe].0 += eps;
            let mut minus = pos.clone();
            minus[probe].0 -= eps;
            let mut scratch = vec![(0.0, 0.0); pos.len()];
            let f_plus = wirelength_grad(&nets, &plus, gamma, &pool, &mut scratch);
            let mut scratch = vec![(0.0, 0.0); pos.len()];
            let f_minus = wirelength_grad(&nets, &minus, gamma, &pool, &mut scratch);
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (grad[probe].0 - numeric).abs() < 1e-3 * (1.0 + numeric.abs()),
                "macro {probe}: analytic {} vs numeric {numeric}",
                grad[probe].0
            );
        }
    }

    #[test]
    fn poisson_field_pushes_charges_apart() {
        // Two identical macros stacked at the same spot: the field at
        // each must point away from the shared density peak once they
        // are separated slightly.
        let shapes = vec![
            shape("a", MemoryRole::Other, 100.0, 100.0),
            shape("b", MemoryRole::Other, 100.0, 100.0),
        ];
        let pool = Pool::new(1);
        let pos = [(450.0, 500.0), (550.0, 500.0)];
        let field = Field::build(&shapes, &pos, 1000.0, 1000.0, &pool);
        let (ex_a, _) = field.field_on(&shapes[0], pos[0]);
        let (ex_b, _) = field.field_on(&shapes[1], pos[1]);
        assert!(ex_a < 0.0, "left charge pushed left, got {ex_a}");
        assert!(ex_b > 0.0, "right charge pushed right, got {ex_b}");
        // Stacked on one spot the bins overfill; separated they do not.
        let stacked = Field::build(
            &shapes,
            &[(500.0, 500.0), (500.0, 500.0)],
            1000.0,
            1000.0,
            &pool,
        );
        assert!(stacked.overflow(2.0 * 100.0 * 100.0) > 0.0);
        assert!(field.overflow(2.0 * 100.0 * 100.0) < stacked.overflow(2.0 * 100.0 * 100.0));
    }

    #[test]
    fn solve_spreads_and_anchors_io_macros() {
        let shapes = cu_like_shapes();
        let w = 900.0;
        let h = 900.0;
        let pool = Pool::new(1);
        let solved = solve(
            &shapes,
            w,
            h,
            IoSide::Right,
            &NetWeights::default(),
            0,
            &pool,
        );
        assert_eq!(solved.pos.len(), shapes.len());
        // Density must end substantially flatter than the all-centered
        // start (overflow ~0.9 at the center start).
        assert!(solved.overflow < 0.5, "overflow {}", solved.overflow);
        // The I/O FIFOs must end on the GMC-facing half.
        for (s, &(x, _)) in shapes.iter().zip(&solved.pos) {
            if s.role == MemoryRole::Fifo {
                assert!(x > w / 2.0, "{} at x={x}, expected right half", s.name);
            }
        }
    }

    #[test]
    fn solve_is_deterministic_per_seed_and_varies_across_seeds() {
        let shapes = cu_like_shapes();
        let pool = Pool::new(1);
        let a = solve(
            &shapes,
            900.0,
            900.0,
            IoSide::Left,
            &NetWeights::default(),
            7,
            &pool,
        );
        let b = solve(
            &shapes,
            900.0,
            900.0,
            IoSide::Left,
            &NetWeights::default(),
            7,
            &pool,
        );
        assert_eq!(a.pos, b.pos, "same seed must be bit-identical");
        let c = solve(
            &shapes,
            900.0,
            900.0,
            IoSide::Left,
            &NetWeights::default(),
            8,
            &pool,
        );
        assert_ne!(a.pos, c.pos, "different seed should explore differently");
    }
}
