//! Partitioned floorplanning.
//!
//! The paper's implementation strategy breaks the G-GPU into three
//! partition kinds: the CU (placed once, then *cloned* for multi-CU
//! versions), the general memory controller, and the top. CU and GMC
//! partitions target 70 % placement density; the top region is sparse
//! (30 %). This module computes partition sizes from subtree
//! statistics and arranges CUs in two columns flanking the central
//! memory controller — which is what makes peripheral CUs far from the
//! GMC in the 8-CU floorplan.

use crate::geometry::Rect;
use crate::PnrError;
use ggpu_netlist::stats::{local_stats, subtree_stats};
use ggpu_netlist::{Design, ModuleId};
use ggpu_tech::units::{Um, Um2};
use ggpu_tech::Tech;

/// Density targets of the three partition kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityTargets {
    /// Std-cell utilization inside CU partitions (paper: 0.70).
    pub cu: f64,
    /// Std-cell utilization inside the memory controller (paper: 0.70).
    pub gmc: f64,
    /// Std-cell utilization of the top region (paper: 0.30).
    pub top: f64,
}

impl Default for DensityTargets {
    fn default() -> Self {
        Self {
            cu: 0.70,
            gmc: 0.70,
            top: 0.30,
        }
    }
}

/// Role of a placed partition (used for colouring and route rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionKind {
    /// A compute-unit clone.
    ComputeUnit,
    /// The general memory controller.
    MemoryController,
    /// The sparse top-level region.
    Top,
}

/// One placed partition.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Instance name (`"cu3"`, `"gmc"`, `"top"`).
    pub name: String,
    /// The module implemented by this partition.
    pub module: ModuleId,
    /// Partition kind.
    pub kind: PartitionKind,
    /// Placed outline.
    pub rect: Rect,
    /// Std-cell area inside the partition.
    pub cell_area: Um2,
    /// Macro area inside the partition.
    pub macro_area: Um2,
}

impl Partition {
    /// Std-cell density achieved: cell area over non-macro area.
    pub fn density(&self) -> f64 {
        let free = self.rect.area().value() - self.macro_area.value() * MACRO_HALO;
        if free <= 0.0 {
            f64::INFINITY
        } else {
            self.cell_area.value() / free
        }
    }
}

/// Halo factor reserved around macros (keep-out for routing).
pub const MACRO_HALO: f64 = 1.08;
/// Spacing channel between partitions.
const CHANNEL: f64 = 40.0;

/// A complete floorplan: chip outline plus placed partitions.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    /// Chip outline (origin at 0,0).
    pub chip: Rect,
    /// All partitions; CU clones first, then the memory controller,
    /// then the top region.
    pub partitions: Vec<Partition>,
}

impl Floorplan {
    /// The (first) memory-controller partition, or `None` for
    /// hand-built floorplans without one (floorplans produced by
    /// [`build_floorplan`] always have it).
    pub fn gmc(&self) -> Option<&Partition> {
        self.gmcs().next()
    }

    /// All memory-controller partitions (more than one when the design
    /// replicates the controller — the paper's future-work remedy for
    /// the 8-CU routing wall).
    pub fn gmcs(&self) -> impl Iterator<Item = &Partition> {
        self.partitions
            .iter()
            .filter(|p| p.kind == PartitionKind::MemoryController)
    }

    /// All CU partitions in instance order.
    pub fn cus(&self) -> impl Iterator<Item = &Partition> {
        self.partitions
            .iter()
            .filter(|p| p.kind == PartitionKind::ComputeUnit)
    }

    /// Manhattan distance from CU `i` to its *nearest* memory
    /// controller replica.
    pub fn cu_to_gmc_distance(&self, i: usize) -> Option<Um> {
        let cu = self.cus().nth(i)?;
        self.gmcs()
            .map(|g| cu.rect.center_distance(&g.rect))
            .min_by(|a, b| a.value().total_cmp(&b.value()))
    }
}

/// Shelf packing does not achieve perfect macro-area utilization; the
/// partition is sized assuming this packing efficiency.
pub const PACKING_EFFICIENCY: f64 = 0.72;

fn partition_size(cell_area: Um2, macro_area: Um2, density: f64) -> Um2 {
    Um2::new(macro_area.value() * MACRO_HALO / PACKING_EFFICIENCY + cell_area.value() / density)
}

/// Builds the partitioned floorplan for a G-GPU-shaped design.
///
/// The design is expected to follow the generator's structure: a top
/// module instantiating CU clones (module name containing
/// `"compute_unit"`) and one memory controller (`"memory_controller"`).
///
/// # Errors
///
/// Returns [`PnrError::MissingPartition`] if the expected hierarchy is
/// not present.
pub fn build_floorplan(
    design: &Design,
    tech: &Tech,
    densities: DensityTargets,
) -> Result<Floorplan, PnrError> {
    let top_id = design.top();
    let top = design.module(top_id);

    let mut cu_instances: Vec<(String, ModuleId)> = Vec::new();
    let mut gmc_instances: Vec<(String, ModuleId)> = Vec::new();
    for child in &top.children {
        let name = &design.module(child.module).name;
        if name.contains("compute_unit") {
            cu_instances.push((child.name.clone(), child.module));
        } else if name.contains("memory_controller") {
            gmc_instances.push((child.name.clone(), child.module));
        }
    }
    if cu_instances.is_empty() {
        return Err(PnrError::MissingPartition("compute_unit"));
    }
    if gmc_instances.is_empty() {
        return Err(PnrError::MissingPartition("memory_controller"));
    }
    let gmc_id = gmc_instances[0].1;

    let cu_stats = subtree_stats(design, cu_instances[0].1, tech).map_err(PnrError::Sram)?;
    let gmc_stats = subtree_stats(design, gmc_id, tech).map_err(PnrError::Sram)?;
    let top_stats = local_stats(design, top_id, tech).map_err(PnrError::Sram)?;

    let cu_area = partition_size(cu_stats.cell_area, cu_stats.macro_area, densities.cu);
    let gmc_area = partition_size(gmc_stats.cell_area, gmc_stats.macro_area, densities.gmc);
    let top_area = partition_size(top_stats.cell_area, top_stats.macro_area, densities.top);

    // CU clones form two columns flanking the central GMC column.
    let n = cu_instances.len();
    let left_count = n.div_ceil(2);
    let right_count = n - left_count;

    let cu_side = cu_area.value().sqrt();
    let column_h = |count: usize| count as f64 * (cu_side + CHANNEL);
    let body_h = column_h(left_count).max(cu_side + CHANNEL);

    // The GMC column is sized to the taller of (its own square shape)
    // and the CU columns, keeping the chip rectangular.
    let gmc_w = (gmc_area.value() / body_h).max(gmc_area.value().sqrt() * 0.62);
    let gmc_h = gmc_area.value() / gmc_w;
    // Stacked controller replicas need vertical room of their own.
    let replicas = gmc_instances.len();
    let body_h = body_h.max(replicas as f64 * (gmc_h + CHANNEL));

    let left_w = if left_count > 0 {
        cu_side + CHANNEL
    } else {
        0.0
    };
    let right_w = if right_count > 0 {
        cu_side + CHANNEL
    } else {
        0.0
    };
    let body_w = left_w + gmc_w + CHANNEL + right_w;
    let chip_w = body_w.max(gmc_w + CHANNEL);
    let top_strip_h = (top_area.value() / chip_w).max(60.0);
    let chip_h = body_h.max(gmc_h + CHANNEL) + top_strip_h + CHANNEL;

    let mut partitions = Vec::with_capacity(n + 2);
    for (i, (inst, module)) in cu_instances.iter().enumerate() {
        let (col_x, row) = if i < left_count {
            (0.0, i)
        } else {
            (left_w + gmc_w + CHANNEL, i - left_count)
        };
        let y = row as f64 * (cu_side + CHANNEL);
        partitions.push(Partition {
            name: inst.clone(),
            module: *module,
            kind: PartitionKind::ComputeUnit,
            rect: Rect::new(
                Um::new(col_x),
                Um::new(y),
                Um::new(cu_side),
                Um::new(cu_side),
            ),
            cell_area: cu_stats.cell_area,
            macro_area: cu_stats.macro_area,
        });
    }
    // GMC replicas share the middle column: one replica is vertically
    // centred; two replicas sit at the quarter points, each close to
    // half the CUs.
    for (g, (inst, module)) in gmc_instances.iter().enumerate() {
        let slot_h = body_h / replicas as f64;
        let y_center = slot_h * (g as f64 + 0.5);
        let gmc_y = (y_center - gmc_h / 2.0).clamp(0.0, (chip_h - gmc_h).max(0.0));
        partitions.push(Partition {
            name: inst.clone(),
            module: *module,
            kind: PartitionKind::MemoryController,
            rect: Rect::new(
                Um::new(left_w),
                Um::new(gmc_y),
                Um::new(gmc_w),
                Um::new(gmc_h),
            ),
            cell_area: gmc_stats.cell_area,
            macro_area: gmc_stats.macro_area,
        });
    }
    // Top region strip across the top edge.
    partitions.push(Partition {
        name: "top".into(),
        module: top_id,
        kind: PartitionKind::Top,
        rect: Rect::new(
            Um::new(0.0),
            Um::new(chip_h - top_strip_h),
            Um::new(chip_w),
            Um::new(top_strip_h),
        ),
        cell_area: top_stats.cell_area,
        macro_area: top_stats.macro_area,
    });

    Ok(Floorplan {
        chip: Rect::new(Um::new(0.0), Um::new(0.0), Um::new(chip_w), Um::new(chip_h)),
        partitions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_rtl::{generate, GgpuConfig};

    fn floorplan(n: u32) -> Floorplan {
        let d = generate(&GgpuConfig::with_cus(n).unwrap()).unwrap();
        build_floorplan(&d, &Tech::l65(), DensityTargets::default()).unwrap()
    }

    #[test]
    fn one_cu_floorplan_has_three_partitions() {
        let fp = floorplan(1);
        assert_eq!(fp.partitions.len(), 3);
        assert_eq!(fp.cus().count(), 1);
    }

    #[test]
    fn eight_cu_floorplan_clones_partitions() {
        let fp = floorplan(8);
        assert_eq!(fp.cus().count(), 8);
        // All CU clones are identical in size.
        let sizes: Vec<f64> = fp.cus().map(|c| c.rect.area().value()).collect();
        for s in &sizes {
            assert!((s - sizes[0]).abs() < 1e-6);
        }
    }

    #[test]
    fn partitions_fit_in_chip_without_overlap() {
        for n in [1, 2, 4, 8] {
            let fp = floorplan(n);
            for p in &fp.partitions {
                assert!(
                    fp.chip.contains(&p.rect),
                    "{} escapes chip ({n} CUs)",
                    p.name
                );
            }
            for (i, a) in fp.partitions.iter().enumerate() {
                for b in fp.partitions.iter().skip(i + 1) {
                    assert!(
                        !a.rect.overlaps(&b.rect),
                        "{} overlaps {} ({n} CUs)",
                        a.name,
                        b.name
                    );
                }
            }
        }
    }

    #[test]
    fn peripheral_cus_are_farther_in_bigger_floorplans() {
        let fp8 = floorplan(8);
        let dists: Vec<f64> = (0..8)
            .map(|i| fp8.cu_to_gmc_distance(i).unwrap().value())
            .collect();
        let max8 = dists.iter().cloned().fold(0.0, f64::max);
        let fp1 = floorplan(1);
        let d1 = fp1.cu_to_gmc_distance(0).unwrap().value();
        assert!(max8 > 2.0 * d1, "8-CU worst distance {max8} vs 1-CU {d1}");
        // The paper's failing routes are multi-millimetre.
        assert!(max8 > 2000.0, "worst distance {max8} um");
    }

    #[test]
    fn chip_area_tracks_design_area() {
        let a1 = floorplan(1).chip.area().to_mm2();
        let a8 = floorplan(8).chip.area().to_mm2();
        assert!(a8 > 5.0 * a1, "chip areas {a1} vs {a8}");
        // The 1-CU chip should be in the vicinity of Table I's 4.19 mm^2
        // plus floorplan overhead.
        assert!((3.5..9.0).contains(&a1), "1-CU chip {a1} mm2");
    }

    #[test]
    fn density_is_close_to_target() {
        let fp = floorplan(1);
        for cu in fp.cus() {
            let d = cu.density();
            assert!((0.3..=0.8).contains(&d), "CU density {d}");
        }
    }

    #[test]
    fn missing_gmc_is_an_error() {
        use ggpu_netlist::module::Module;
        use ggpu_netlist::Design;
        let mut d = Design::new("bad");
        let cu = d.add_module(Module::new("compute_unit"));
        let mut top = Module::new("top");
        top.children.push(ggpu_netlist::module::Instance {
            name: "cu0".into(),
            module: cu,
        });
        let t = d.add_module(top);
        d.set_top(t);
        let err = build_floorplan(&d, &Tech::l65(), DensityTargets::default()).unwrap_err();
        assert!(matches!(
            err,
            PnrError::MissingPartition("memory_controller")
        ));
    }
}
