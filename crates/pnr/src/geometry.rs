//! Plane geometry helpers for floorplanning.

use ggpu_tech::units::{Um, Um2};

/// An axis-aligned rectangle in chip coordinates (origin bottom-left).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x: Um,
    /// Bottom edge.
    pub y: Um,
    /// Width.
    pub w: Um,
    /// Height.
    pub h: Um,
}

impl Rect {
    /// Creates a rectangle.
    pub fn new(x: Um, y: Um, w: Um, h: Um) -> Self {
        Self { x, y, w, h }
    }

    /// Area of the rectangle.
    pub fn area(&self) -> Um2 {
        self.w * self.h
    }

    /// Centre point `(x, y)`.
    pub fn center(&self) -> (Um, Um) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Manhattan distance between the centres of two rectangles.
    pub fn center_distance(&self, other: &Rect) -> Um {
        let (ax, ay) = self.center();
        let (bx, by) = other.center();
        (ax - bx).abs() + (ay - by).abs()
    }

    /// `true` if `other` lies entirely within `self`.
    pub fn contains(&self, other: &Rect) -> bool {
        other.x.value() >= self.x.value() - 1e-6
            && other.y.value() >= self.y.value() - 1e-6
            && (other.x + other.w).value() <= (self.x + self.w).value() + 1e-6
            && (other.y + other.h).value() <= (self.y + self.h).value() + 1e-6
    }

    /// `true` if the interiors of the rectangles intersect.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x.value() < (other.x + other.w).value() - 1e-6
            && other.x.value() < (self.x + self.w).value() - 1e-6
            && self.y.value() < (other.y + other.h).value() - 1e-6
            && other.y.value() < (self.y + self.h).value() - 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x: f64, y: f64, w: f64, h: f64) -> Rect {
        Rect::new(Um::new(x), Um::new(y), Um::new(w), Um::new(h))
    }

    #[test]
    fn area_and_center() {
        let a = r(10.0, 20.0, 100.0, 50.0);
        assert!((a.area().value() - 5000.0).abs() < 1e-9);
        let (cx, cy) = a.center();
        assert_eq!(cx, Um::new(60.0));
        assert_eq!(cy, Um::new(45.0));
    }

    #[test]
    fn manhattan_distance() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(100.0, 50.0, 10.0, 10.0);
        assert_eq!(a.center_distance(&b), Um::new(150.0));
        assert_eq!(b.center_distance(&a), Um::new(150.0));
    }

    #[test]
    fn containment() {
        let outer = r(0.0, 0.0, 100.0, 100.0);
        assert!(outer.contains(&r(10.0, 10.0, 20.0, 20.0)));
        assert!(!outer.contains(&r(90.0, 90.0, 20.0, 20.0)));
        assert!(outer.contains(&outer));
    }

    #[test]
    fn overlap() {
        let a = r(0.0, 0.0, 50.0, 50.0);
        assert!(a.overlaps(&r(40.0, 40.0, 50.0, 50.0)));
        assert!(
            !a.overlaps(&r(50.0, 0.0, 50.0, 50.0)),
            "edge touch is not overlap"
        );
        assert!(!a.overlaps(&r(200.0, 200.0, 10.0, 10.0)));
    }
}
