//! Incremental place-and-route for the DSE inner loop.
//!
//! [`IncrementalPnr`] keeps two content-addressed caches warm across
//! the candidate versions a design-space exploration evaluates:
//!
//! * **partition solves** — the analytical placer's per-partition
//!   results, keyed by `(module fingerprint, partition shape, I/O
//!   side, net weights, seed)` ([`crate::place`]'s solve key). A
//!   DivideMemory or PipelineInsert candidate changes one partition
//!   module's fingerprint; its clones miss the cache and are re-solved,
//!   every untouched partition is a lookup.
//! * **module timing** — an embedded [`ggpu_sta::IncrementalSta`], fed
//!   through `analyze_delta` with the caller's dirty set (the PR 4
//!   transform journal's dirty modules) plus the top module, which
//!   route annotation always rewrites.
//!
//! Like the STA engine, the dirty set is *advisory*: content
//! addressing keeps results exact even when a caller under-reports,
//! and the [`PnrStats::undeclared_dirty`] counter surfaces the
//! instrumentation bug. [`IncrementalPnr::place_and_route_delta`]
//! therefore returns layouts bit-identical to a from-scratch
//! [`crate::place_and_route`] under the same options — only faster.

use crate::floorplan::build_floorplan;
use crate::place::{place_macros_impl, PlaceStats, PlacedMacro};
use crate::pool::Pool;
use crate::route::{annotate_routes, estimate_wirelength};
use crate::{Layout, PnrError, PnrOptions};
use ggpu_netlist::{Design, ModuleId};
use ggpu_sta::{EngineStats, IncrementalSta};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;
use std::collections::HashMap;
use std::sync::Arc;

/// The dirty set of one DSE transform, in the journal's terms: the
/// modules whose contents changed since the last placement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementDelta {
    /// Modules mutated by the transform (e.g. the divided memory's
    /// owner and every module on its hierarchy path). Advisory — see
    /// the module docs.
    pub dirty: Vec<ModuleId>,
}

impl PlacementDelta {
    /// A delta dirtying exactly the given modules.
    pub fn of(dirty: Vec<ModuleId>) -> Self {
        Self { dirty }
    }
}

/// Cumulative counters of an incremental session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PnrStats {
    /// Placement-side counters (solves, cache hits, shelf fallbacks).
    pub place: PlaceStats,
    /// Full `place_and_route` calls.
    pub full_runs: u64,
    /// `place_and_route_delta` calls.
    pub delta_runs: u64,
    /// Partitions whose module fingerprint changed although no delta
    /// declared them dirty. Nonzero flags a transform that forgot to
    /// journal a mutation; results stay exact regardless.
    pub undeclared_dirty: u64,
}

/// A persistent place-and-route session: construct once, then feed it
/// the candidate designs of a DSE sweep. See the
/// [module docs](crate::incremental) for the caching scheme.
#[derive(Debug)]
pub struct IncrementalPnr {
    options: PnrOptions,
    sta: IncrementalSta,
    solves: HashMap<u64, Arc<Vec<PlacedMacro>>>,
    /// Last-seen module fingerprint per partition module, for the
    /// undeclared-dirty audit.
    fingerprints: HashMap<ModuleId, u64>,
    stats: PnrStats,
}

impl IncrementalPnr {
    /// Creates an empty session with the given flow options.
    pub fn new(options: PnrOptions) -> Self {
        Self {
            options,
            sta: IncrementalSta::new(),
            solves: HashMap::new(),
            fingerprints: HashMap::new(),
            stats: PnrStats::default(),
        }
    }

    /// The options this session places under.
    pub fn options(&self) -> &PnrOptions {
        &self.options
    }

    /// Places and routes `design` from scratch (warming both caches).
    ///
    /// # Errors
    ///
    /// As [`crate::place_and_route`].
    pub fn place_and_route(
        &mut self,
        design: &Design,
        tech: &Tech,
        target: Mhz,
    ) -> Result<Layout, PnrError> {
        self.stats.full_runs += 1;
        self.run(design, tech, target, None)
    }

    /// Re-places and re-times `design` after a transform whose dirty
    /// set is `delta`. Bit-identical to [`Self::place_and_route`] on
    /// the same design; only the dirtied partitions are re-solved and
    /// re-timed.
    ///
    /// # Errors
    ///
    /// As [`crate::place_and_route`].
    pub fn place_and_route_delta(
        &mut self,
        design: &Design,
        tech: &Tech,
        target: Mhz,
        delta: &PlacementDelta,
    ) -> Result<Layout, PnrError> {
        self.stats.delta_runs += 1;
        self.run(design, tech, target, Some(delta))
    }

    fn run(
        &mut self,
        design: &Design,
        tech: &Tech,
        target: Mhz,
        delta: Option<&PlacementDelta>,
    ) -> Result<Layout, PnrError> {
        // The floorplan is cheap (statistics only) and must track the
        // design exactly, so it is always rebuilt.
        let floorplan = build_floorplan(design, tech, self.options.densities)?;

        // Audit the dirty set against the partition fingerprints
        // before placement refreshes them.
        if let Some(delta) = delta {
            for part in &floorplan.partitions {
                let fp = design.module_fingerprint(part.module);
                if let Some(&seen) = self.fingerprints.get(&part.module) {
                    if seen != fp && !delta.dirty.contains(&part.module) {
                        self.stats.undeclared_dirty += 1;
                    }
                }
            }
        }
        for part in &floorplan.partitions {
            self.fingerprints
                .insert(part.module, design.module_fingerprint(part.module));
        }

        let placements = place_macros_impl(
            design,
            &floorplan,
            tech,
            &self.options,
            Pool::global(),
            &mut self.solves,
            &mut self.stats.place,
        )?;
        let wirelength = estimate_wirelength(design, &floorplan, tech)?;
        let macro_hpwl =
            crate::place::macro_hpwl(&floorplan, &placements, &self.options.net_weights);

        let mut annotated = design.clone();
        let cu_route_delays = annotate_routes(&mut annotated, &floorplan, tech)?;
        // Route annotation rewrites the top module's paths, so the top
        // is dirty on every run regardless of what the caller declared.
        let post_route = match delta {
            Some(delta) => {
                let mut dirty = delta.dirty.clone();
                let top = annotated.top();
                if !dirty.contains(&top) {
                    dirty.push(top);
                }
                self.sta.analyze_delta(&annotated, tech, target, &dirty)?
            }
            None => self.sta.analyze(&annotated, tech, target)?,
        };
        let fmax = self
            .sta
            .max_frequency(&annotated, tech)?
            .unwrap_or(Mhz::new(f64::INFINITY));
        let meets_timing = post_route.meets_timing();
        let achieved_clock = if meets_timing { target } else { fmax };

        Ok(Layout {
            design: design.name().to_string(),
            target,
            floorplan,
            placements,
            wirelength,
            macro_hpwl,
            placer: self.options.placer,
            post_route,
            fmax,
            cu_route_delays,
            meets_timing,
            achieved_clock,
        })
    }

    /// Snapshot of the session counters.
    pub fn stats(&self) -> PnrStats {
        self.stats
    }

    /// Counters of the embedded STA engine.
    pub fn sta_stats(&self) -> EngineStats {
        self.sta.stats()
    }

    /// Number of cached partition solves.
    pub fn cached_solves(&self) -> usize {
        self.solves.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::Placer;
    use crate::place_and_route;
    use ggpu_rtl::{generate, GgpuConfig};

    fn analytical_options() -> PnrOptions {
        PnrOptions {
            placer: Placer::Analytical,
            ..PnrOptions::default()
        }
    }

    #[test]
    fn session_matches_scratch_flow_bit_for_bit() {
        let d = generate(&GgpuConfig::with_cus(2).unwrap()).unwrap();
        let tech = Tech::l65();
        let target = Mhz::new(500.0);
        let options = analytical_options();
        let scratch = place_and_route(&d, &tech, target, options).unwrap();
        let mut session = IncrementalPnr::new(options);
        let warm = session.place_and_route(&d, &tech, target).unwrap();
        assert_eq!(scratch, warm);
        // A delta run on the unchanged design is also identical.
        let delta = session
            .place_and_route_delta(&d, &tech, target, &PlacementDelta::default())
            .unwrap();
        assert_eq!(scratch, delta);
    }

    #[test]
    fn unchanged_delta_is_all_cache_hits() {
        let d = generate(&GgpuConfig::with_cus(4).unwrap()).unwrap();
        let tech = Tech::l65();
        let target = Mhz::new(500.0);
        let mut session = IncrementalPnr::new(analytical_options());
        session.place_and_route(&d, &tech, target).unwrap();
        let solves_after_warmup = session.stats().place.solves;
        session
            .place_and_route_delta(&d, &tech, target, &PlacementDelta::default())
            .unwrap();
        let stats = session.stats();
        assert_eq!(stats.place.solves, solves_after_warmup, "no new solves");
        assert_eq!(stats.undeclared_dirty, 0);
    }

    #[test]
    fn dirty_partition_is_resolved_and_audited() {
        let mut d = generate(&GgpuConfig::with_cus(2).unwrap()).unwrap();
        let tech = Tech::l65();
        let target = Mhz::new(500.0);
        let mut session = IncrementalPnr::new(analytical_options());
        session.place_and_route(&d, &tech, target).unwrap();
        let warm_solves = session.stats().place.solves;

        // Mutate the memory controller: change one macro's role,
        // which changes the module fingerprint (and the net model)
        // but not the geometry or any timing path.
        let gmc_id = build_floorplan(&d, &tech, Default::default())
            .unwrap()
            .gmc()
            .unwrap()
            .module;
        use ggpu_netlist::module::MemoryRole;
        let macro_name = d.module(gmc_id).macros[0].name.clone();
        d.module_mut(gmc_id).macros[0].role = MemoryRole::ScratchRam;

        // Declared dirty: one fresh solve, no audit hit.
        let layout = session
            .place_and_route_delta(&d, &tech, target, &PlacementDelta::of(vec![gmc_id]))
            .unwrap();
        let stats = session.stats();
        assert_eq!(stats.place.solves, warm_solves + 1);
        assert_eq!(stats.undeclared_dirty, 0);
        assert!(layout.placements.iter().any(|p| p
            .macros
            .iter()
            .any(|m| m.name == macro_name && m.role == MemoryRole::ScratchRam)));

        // Mutate again without declaring: still exact, but audited.
        d.module_mut(gmc_id).macros[0].role = MemoryRole::Other;
        let sneaky = session
            .place_and_route_delta(&d, &tech, target, &PlacementDelta::default())
            .unwrap();
        assert_eq!(session.stats().undeclared_dirty, 1);
        let scratch = place_and_route(&d, &tech, target, analytical_options()).unwrap();
        assert_eq!(sneaky, scratch, "under-reported delta must stay exact");
    }
}
