//! Nesterov-accelerated gradient descent with Barzilai–Borwein step
//! estimation — the ePlace optimizer loop.
//!
//! The caller supplies the gradient oracle (wirelength + λ-scaled
//! density in [`crate::eplace`]); this module owns the iteration
//! scheme:
//!
//! * momentum via the standard `a_{k+1} = (1 + √(4a_k² + 1)) / 2`
//!   sequence, reference points `v_k` extrapolated from the solution
//!   sequence `u_k`,
//! * steplength from the Barzilai–Borwein inverse-Lipschitz estimate
//!   `|Δv| / |Δg|`, with a conservative bound-relative fallback when
//!   the estimate degenerates (NaN, zero, or first iteration),
//! * projection of both sequences onto per-dimension box bounds (the
//!   partition interior, shrunk by each macro's half-extent).
//!
//! The loop is branch-deterministic: no time, no randomness, and
//! every float comparison is explicit, so the same inputs iterate
//! identically on every thread count.

/// Per-dimension box bounds for the projection step.
#[derive(Debug, Clone)]
pub(crate) struct Bounds {
    pub lo: Vec<f64>,
    pub hi: Vec<f64>,
}

impl Bounds {
    fn clamp(&self, x: &mut [f64]) {
        for (i, v) in x.iter_mut().enumerate() {
            // lo > hi means the object is larger than the region in
            // this dimension; a non-finite coordinate means a
            // degenerate gradient stepped out of ℝ. Both park at the
            // midpoint (legalization reports true misfits).
            if !v.is_finite() || self.lo[i] > self.hi[i] {
                *v = (self.lo[i] + self.hi[i]) / 2.0;
            } else {
                *v = v.clamp(self.lo[i], self.hi[i]);
            }
        }
    }

    /// A step that would traverse ~2 % of the widest dimension at unit
    /// gradient — the fallback when Barzilai–Borwein degenerates.
    fn fallback_step(&self, g: &[f64]) -> f64 {
        let span = self
            .lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| (h - l).abs())
            .fold(0.0, f64::max);
        let gmax = g.iter().map(|v| v.abs()).fold(0.0, f64::max);
        if gmax > 0.0 && span > 0.0 {
            0.02 * span / gmax
        } else {
            1e-3
        }
    }
}

/// Iteration limits and convergence target.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NesterovOptions {
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Iterations to run before the overflow stop is consulted (the
    /// density multiplier needs time to ramp).
    pub min_iters: usize,
    /// Stop once the gradient oracle reports overflow at or below
    /// this.
    pub stop_overflow: f64,
}

/// What the optimizer converged to.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Outcome {
    /// Iterations actually run.
    pub iterations: usize,
    /// Overflow reported by the last oracle call.
    pub overflow: f64,
}

/// Minimizes the oracle's objective from `x`, in place.
///
/// `grad_fn(v, g)` must fill `g` with the gradient at `v` and return
/// the current density overflow (used only for the stop test).
pub(crate) fn minimize<F>(
    x: &mut [f64],
    bounds: &Bounds,
    opts: &NesterovOptions,
    mut grad_fn: F,
) -> Outcome
where
    F: FnMut(&[f64], &mut [f64]) -> f64,
{
    let n = x.len();
    if n == 0 {
        return Outcome {
            iterations: 0,
            overflow: 0.0,
        };
    }
    bounds.clamp(x);
    let mut v = x.to_vec();
    let mut g = vec![0.0; n];
    let mut overflow = grad_fn(&v, &mut g);

    let mut u_prev = v.clone();
    let mut v_prev: Vec<f64> = Vec::new();
    let mut g_prev: Vec<f64> = Vec::new();
    let mut a_k = 1.0f64;
    let mut iterations = 0;

    for iter in 0..opts.max_iters {
        iterations = iter + 1;
        // Barzilai–Borwein steplength from the previous reference
        // point; guarded against degenerate estimates.
        let step = if v_prev.is_empty() {
            bounds.fallback_step(&g)
        } else {
            let mut dv2 = 0.0;
            let mut dg2 = 0.0;
            for i in 0..n {
                let dv = v[i] - v_prev[i];
                let dg = g[i] - g_prev[i];
                dv2 += dv * dv;
                dg2 += dg * dg;
            }
            let bb = (dv2 / dg2.max(1e-300)).sqrt();
            if bb.is_finite() && bb > 0.0 {
                bb
            } else {
                bounds.fallback_step(&g)
            }
        };

        // Gradient step to the new solution point.
        let mut u = vec![0.0; n];
        for i in 0..n {
            u[i] = v[i] - step * g[i];
        }
        bounds.clamp(&mut u);

        // Momentum extrapolation to the next reference point.
        let a_next = (1.0 + (4.0 * a_k * a_k + 1.0).sqrt()) / 2.0;
        let coef = (a_k - 1.0) / a_next;
        let mut v_next = vec![0.0; n];
        for i in 0..n {
            v_next[i] = u[i] + coef * (u[i] - u_prev[i]);
        }
        bounds.clamp(&mut v_next);

        u_prev = u;
        v_prev = std::mem::replace(&mut v, v_next);
        g_prev = g.clone();
        a_k = a_next;

        overflow = grad_fn(&v, &mut g);
        if iter + 1 >= opts.min_iters && overflow <= opts.stop_overflow {
            break;
        }
    }

    x.copy_from_slice(&u_prev);
    Outcome {
        iterations,
        overflow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds(n: usize, lo: f64, hi: f64) -> Bounds {
        Bounds {
            lo: vec![lo; n],
            hi: vec![hi; n],
        }
    }

    #[test]
    fn converges_on_a_quadratic_bowl() {
        // f(x) = Σ (x_i - t_i)^2 with targets inside the box.
        let targets = [3.0, -1.5, 7.25, 0.0];
        let mut x = vec![9.0, 9.0, -9.0, 9.0];
        let b = bounds(4, -10.0, 10.0);
        let opts = NesterovOptions {
            max_iters: 300,
            min_iters: 1,
            stop_overflow: -1.0, // never stop early; run to the cap
        };
        minimize(&mut x, &b, &opts, |v, g| {
            for i in 0..4 {
                g[i] = 2.0 * (v[i] - targets[i]);
            }
            1.0
        });
        for (xi, ti) in x.iter().zip(&targets) {
            assert!((xi - ti).abs() < 1e-2, "{xi} vs {ti}");
        }
    }

    #[test]
    fn respects_bounds() {
        // The unconstrained minimum is outside the box; the solution
        // must stick to the boundary.
        let mut x = vec![0.0];
        let b = bounds(1, -2.0, 2.0);
        let opts = NesterovOptions {
            max_iters: 120,
            min_iters: 1,
            stop_overflow: -1.0,
        };
        minimize(&mut x, &b, &opts, |v, g| {
            g[0] = 2.0 * (v[0] - 5.0);
            1.0
        });
        assert!((x[0] - 2.0).abs() < 1e-6, "clamped to the box: {}", x[0]);
    }

    #[test]
    fn overflow_stop_ends_the_loop_after_min_iters() {
        let mut x = vec![0.0; 2];
        let b = bounds(2, -1.0, 1.0);
        let opts = NesterovOptions {
            max_iters: 500,
            min_iters: 25,
            stop_overflow: 0.5,
        };
        let mut calls = 0usize;
        let out = minimize(&mut x, &b, &opts, |_, g| {
            calls += 1;
            g.fill(0.0);
            0.0 // always "converged"
        });
        assert_eq!(out.iterations, 25);
        // initial eval + one per iteration
        assert_eq!(calls, 26);
        assert_eq!(out.overflow, 0.0);
    }

    #[test]
    fn nan_gradients_do_not_poison_positions() {
        let mut x = vec![0.5; 2];
        let b = bounds(2, 0.0, 1.0);
        let opts = NesterovOptions {
            max_iters: 10,
            min_iters: 1,
            stop_overflow: -1.0,
        };
        minimize(&mut x, &b, &opts, |_, g| {
            g.fill(f64::NAN);
            1.0
        });
        // Clamp projects NaN-stepped points back into the box; the
        // final positions must be finite and inside.
        for v in &x {
            assert!(v.is_finite() && (0.0..=1.0).contains(v), "{v}");
        }
    }

    #[test]
    fn degenerate_box_parks_at_midpoint() {
        let mut x = vec![100.0];
        let b = Bounds {
            lo: vec![60.0],
            hi: vec![40.0], // object wider than the region
        };
        let opts = NesterovOptions {
            max_iters: 5,
            min_iters: 1,
            stop_overflow: -1.0,
        };
        minimize(&mut x, &b, &opts, |_, g| {
            g[0] = 0.0;
            1.0
        });
        assert_eq!(x[0], 50.0);
    }
}
