//! SVG export of a finished layout — the reproduction of the paper's
//! Figs. 3 and 4 (floorplan views with memories coloured by role).

use crate::Layout;
use ggpu_netlist::module::MemoryRole;
use std::fmt::Write as _;

/// Fill colour per memory role, echoing the paper's colour coding
/// (CU memories green, memory-controller memories yellow/pink, top
/// memories blue).
pub fn role_color(role: MemoryRole) -> &'static str {
    match role {
        MemoryRole::RegisterFile => "#3cb44b",
        MemoryRole::InstructionRam => "#7fd08a",
        MemoryRole::ScratchRam => "#2f9e77",
        MemoryRole::CacheData => "#ffe119",
        MemoryRole::CacheTag => "#f032e6",
        MemoryRole::RuntimeMemory => "#fabed4",
        MemoryRole::Fifo => "#f58231",
        MemoryRole::SchedulerState => "#911eb4",
        MemoryRole::Other => "#4363d8",
        // MemoryRole is non_exhaustive; future roles render neutral.
        _ => "#9a9a9a",
    }
}

/// Renders the layout as a standalone SVG document.
///
/// ```
/// # use ggpu_rtl::{generate, GgpuConfig};
/// # use ggpu_pnr::{place_and_route, PnrOptions};
/// # use ggpu_tech::{Tech, units::Mhz};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = generate(&GgpuConfig::with_cus(1)?)?;
/// let layout = place_and_route(&design, &Tech::l65(), Mhz::new(500.0), PnrOptions::default())?;
/// let svg = ggpu_pnr::to_svg(&layout);
/// assert!(svg.starts_with("<svg"));
/// # Ok(())
/// # }
/// ```
pub fn to_svg(layout: &Layout) -> String {
    let scale = 0.18; // um -> px
    let w = layout.floorplan.chip.w.value() * scale;
    let h = layout.floorplan.chip.h.value() * scale;
    let flip = |y: f64, rect_h: f64| h - (y + rect_h) * scale + rect_h * scale - rect_h * scale;
    let mut svg = String::new();
    let _ = write!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
         viewBox=\"0 0 {:.0} {:.0}\">",
        w + 20.0,
        h + 40.0,
        w + 20.0,
        h + 40.0
    );
    let _ = write!(
        svg,
        "<rect x=\"5\" y=\"5\" width=\"{:.1}\" height=\"{:.1}\" fill=\"#f4f4f0\" \
         stroke=\"#222\" stroke-width=\"1.5\"/>",
        w, h
    );
    for part in &layout.placements {
        let r = &part.partition.rect;
        let y = flip(r.y.value(), r.h.value());
        let _ = write!(
            svg,
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
             fill=\"#e8e8ff\" fill-opacity=\"0.35\" stroke=\"#555\" stroke-width=\"0.8\"/>",
            5.0 + r.x.value() * scale,
            5.0 + h - (r.y.value() + r.h.value()) * scale,
            r.w.value() * scale,
            r.h.value() * scale,
        );
        let _ = y; // silence in case of future use
        for m in &part.macros {
            let _ = write!(
                svg,
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                 fill=\"{}\" stroke=\"#333\" stroke-width=\"0.3\"><title>{}/{}</title></rect>",
                5.0 + m.rect.x.value() * scale,
                5.0 + h - (m.rect.y.value() + m.rect.h.value()) * scale,
                m.rect.w.value() * scale,
                m.rect.h.value() * scale,
                role_color(m.role),
                part.partition.name,
                m.name
            );
        }
        let (cx, _cy) = part.partition.rect.center();
        let _ = write!(
            svg,
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"middle\" \
             fill=\"#222\">{}</text>",
            5.0 + cx.value() * scale,
            5.0 + h - (part.partition.rect.y.value() + part.partition.rect.h.value()) * scale
                + 13.0,
            part.partition.name
        );
    }
    let _ = write!(
        svg,
        "<text x=\"8\" y=\"{:.1}\" font-size=\"12\" fill=\"#222\">{} @ {:.0} MHz \
         (achieved {:.0} MHz)</text>",
        h + 25.0,
        layout.design,
        layout.target.value(),
        layout.achieved_clock.value()
    );
    svg.push_str("</svg>");
    svg
}

/// Renders the macro placement as a DEF-style text report: one
/// `- <hierarchical name> <cell> + PLACED (x y)` line per macro, plus
/// the die area — the hand-off format physical-design teams diff
/// between floorplan revisions.
pub fn to_placement_report(layout: &Layout) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let chip = &layout.floorplan.chip;
    let _ = writeln!(out, "DESIGN {} ;", layout.design);
    let _ = writeln!(
        out,
        "DIEAREA ( 0 0 ) ( {:.0} {:.0} ) ;",
        chip.w.value(),
        chip.h.value()
    );
    let total: usize = layout.placements.iter().map(|p| p.macros.len()).sum();
    let _ = writeln!(out, "COMPONENTS {total} ;");
    for part in &layout.placements {
        for m in &part.macros {
            let _ = writeln!(
                out,
                "- {}/{} SRAM_{}x{} + PLACED ( {:.0} {:.0} ) ;",
                part.partition.name,
                m.name,
                (m.rect.w.value()).round(),
                (m.rect.h.value()).round(),
                m.rect.x.value(),
                m.rect.y.value()
            );
        }
    }
    let _ = writeln!(out, "END COMPONENTS");
    out
}

#[cfg(test)]
mod tests {
    use crate::{place_and_route, PnrOptions};
    use ggpu_rtl::{generate, GgpuConfig};
    use ggpu_tech::units::Mhz;
    use ggpu_tech::Tech;

    #[test]
    fn svg_contains_all_partitions_and_macros() {
        let d = generate(&GgpuConfig::with_cus(2).unwrap()).unwrap();
        let layout =
            place_and_route(&d, &Tech::l65(), Mhz::new(500.0), PnrOptions::default()).unwrap();
        let svg = super::to_svg(&layout);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains(">cu0<"));
        assert!(svg.contains(">cu1<"));
        assert!(svg.contains(">gmc<"));
        // 2 CUs x 42 macros + 9 shared macros appear as rects.
        let macro_rects = svg.matches("<title>").count();
        assert_eq!(macro_rects, 2 * 42 + 9);
    }

    #[test]
    fn placement_report_lists_every_macro_inside_the_die() {
        let d = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
        let layout =
            place_and_route(&d, &Tech::l65(), Mhz::new(500.0), PnrOptions::default()).unwrap();
        let def = super::to_placement_report(&layout);
        assert!(def.starts_with("DESIGN ggpu_1cu ;"));
        assert!(def.contains("COMPONENTS 51 ;"));
        assert_eq!(def.matches("+ PLACED").count(), 51);
        assert!(def.contains("cu0/pe0/rf_bank"));
        assert!(def.trim_end().ends_with("END COMPONENTS"));
    }
}
