//! Macro placement inside partitions.
//!
//! Block memories "have to be strategically placed in order to extract
//! the maximum performance" (paper §IV). Two placers are available
//! behind [`crate::PnrOptions::placer`]:
//!
//! * [`Placer::Legacy`] — the seed-era deterministic shelf packer:
//!   macros along the partition's bottom edge rows, first-fit
//!   decreasing. Retained as the bit-stable reference (the paper's 4
//!   physical layouts and all Table-I datasheets are pinned to it).
//! * [`Placer::Analytical`] — the electrostatic global placer
//!   ([`crate::eplace`]): Nesterov-optimized wirelength + density,
//!   then displacement-minimizing legalization back onto the
//!   partition. Identical CU clones share one solve (content-addressed
//!   by module fingerprint, partition shape, I/O side, net weights and
//!   seed), and the same key feeds the incremental cache in
//!   [`crate::incremental`].
//!
//! Either way the packer verifies that the std-cell region can hold
//! the partition's cells at a legal utilization.

use crate::eplace::{self, IoSide, MacroShape, NetWeights};
use crate::floorplan::{Floorplan, Partition, PartitionKind, MACRO_HALO};
use crate::geometry::Rect;
use crate::pool::Pool;
use crate::{PnrError, PnrOptions};
use ggpu_netlist::module::MemoryRole;
use ggpu_netlist::Design;
use ggpu_tech::units::Um;
use ggpu_tech::Tech;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Maximum legal std-cell utilization of the non-macro area.
pub const MAX_CELL_UTILIZATION: f64 = 0.88;
/// Spacing between adjacent macros.
const MACRO_SPACING: f64 = 10.0;

/// Which placement algorithm fills the partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Placer {
    /// Seed-era shelf packer (bit-stable reference, the default).
    #[default]
    Legacy,
    /// Electrostatic analytical placer with legalization.
    Analytical,
}

/// Counters of one placement run (or an incremental session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlaceStats {
    /// Fresh analytical partition solves executed.
    pub solves: u64,
    /// Partitions served from an existing solve (CU clones within a
    /// run, or warm entries of an incremental cache).
    pub cache_hits: u64,
    /// Partitions where legalization failed (or the solve diverged)
    /// and the shelf packer produced the placement instead.
    pub shelf_fallbacks: u64,
    /// Total Nesterov iterations across all fresh solves.
    pub nesterov_iterations: u64,
}

/// A macro placed inside a partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedMacro {
    /// Hierarchical name relative to the partition
    /// (`"pe3/rf_bank_d1"`).
    pub name: String,
    /// Architectural role (drives the layout colouring, matching the
    /// paper's Figs. 3-4).
    pub role: MemoryRole,
    /// Placed outline in chip coordinates.
    pub rect: Rect,
}

/// The placement of one partition: its macros plus achieved std-cell
/// utilization.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedPartition {
    /// The partition this placement fills.
    pub partition: Partition,
    /// Placed macros.
    pub macros: Vec<PlacedMacro>,
    /// Std-cell utilization of the remaining area.
    pub utilization: f64,
}

/// One macro to place: hierarchical name, role, width, height.
type MacroSpec = (String, MemoryRole, Um, Um);

/// One pending partition solve: cache key, macros, outline width and
/// height in µm, and which edge the partition's I/O faces.
type SolveJob = (u64, Vec<MacroSpec>, f64, f64, IoSide);

/// One finished solve: placed macros, whether the legalizer fell back
/// to shelf packing, and the Nesterov iteration count.
type SolveOutcome = Result<(Vec<PlacedMacro>, bool, u64), PnrError>;

/// Collects the macros of a partition's subtree with hierarchical
/// names.
fn collect_macros(
    design: &Design,
    module: ggpu_netlist::ModuleId,
    tech: &Tech,
) -> Result<Vec<MacroSpec>, PnrError> {
    fn walk(
        design: &Design,
        module: ggpu_netlist::ModuleId,
        tech: &Tech,
        prefix: &mut String,
        out: &mut Vec<(String, MemoryRole, Um, Um)>,
    ) -> Result<(), PnrError> {
        for m in &design.module(module).macros {
            let compiled = tech
                .memory_compiler
                .compile(m.config)
                .map_err(PnrError::Sram)?;
            let name = if prefix.is_empty() {
                m.name.clone()
            } else {
                format!("{prefix}/{}", m.name)
            };
            out.push((name, m.role, compiled.width, compiled.height));
        }
        let len = prefix.len();
        for child in &design.module(module).children {
            if !prefix.is_empty() {
                prefix.push('/');
            }
            prefix.push_str(&child.name);
            walk(design, child.module, tech, prefix, out)?;
            prefix.truncate(len);
        }
        Ok(())
    }
    let mut out = Vec::new();
    let mut prefix = String::new();
    walk(design, module, tech, &mut prefix, &mut out)?;
    Ok(out)
}

/// Shelf-packs `macros` into `region` with first-fit-decreasing: tall
/// macros open shelves bottom-up; later macros drop into the first
/// shelf with room (rotating when that helps).
fn shelf_pack(
    region: &Rect,
    macros: &mut [(String, MemoryRole, Um, Um)],
) -> Result<Vec<PlacedMacro>, PnrError> {
    // Normalize each macro taller-than-wide first, then sort by
    // height descending so shelf heights shrink monotonically.
    struct Shelf {
        y: f64,
        height: f64,
        cursor_x: f64,
    }
    let mut items: Vec<(String, MemoryRole, f64, f64)> = macros
        .iter()
        .map(|(n, r, w, h)| {
            let (w, h) = (w.value(), h.value());
            // Lay flat (wider than tall) so shelves stay short.
            if h > w {
                (n.clone(), *r, h, w)
            } else {
                (n.clone(), *r, w, h)
            }
        })
        .collect();
    items.sort_by(|a, b| b.3.total_cmp(&a.3).then_with(|| a.0.cmp(&b.0)));

    let right = (region.x + region.w).value();
    let top = (region.y + region.h).value();
    let mut shelves: Vec<Shelf> = Vec::new();
    let mut next_y = region.y.value();
    let mut placed = Vec::with_capacity(items.len());
    for (name, role, w, h) in items {
        // Try existing shelves first (as-is, then rotated).
        let mut pos = None;
        for shelf in &mut shelves {
            if h <= shelf.height && shelf.cursor_x + w <= right {
                pos = Some((shelf.cursor_x, shelf.y, w, h));
                shelf.cursor_x += w + MACRO_SPACING;
                break;
            }
            if w <= shelf.height && shelf.cursor_x + h <= right {
                pos = Some((shelf.cursor_x, shelf.y, h, w));
                shelf.cursor_x += h + MACRO_SPACING;
                break;
            }
        }
        let (x, y, w, h) = match pos {
            Some(p) => p,
            None => {
                // Open a new shelf; rotate if the macro is wider than
                // the region.
                let (w, h) = if region.x.value() + w > right && region.x.value() + h <= right {
                    (h, w)
                } else {
                    (w, h)
                };
                if next_y + h > top || region.x.value() + w > right {
                    return Err(PnrError::MacrosDoNotFit {
                        partition: String::new(),
                        macro_name: name.clone(),
                    });
                }
                let y = next_y;
                shelves.push(Shelf {
                    y,
                    height: h,
                    cursor_x: region.x.value() + w + MACRO_SPACING,
                });
                next_y += h + MACRO_SPACING;
                (region.x.value(), y, w, h)
            }
        };
        placed.push(PlacedMacro {
            name,
            role,
            rect: Rect::new(Um::new(x), Um::new(y), Um::new(w), Um::new(h)),
        });
    }
    Ok(placed)
}

/// Which edge of `part` faces the memory controller: CU columns left
/// of the GMC column anchor right, and vice versa; the GMC itself (and
/// the top strip) talk to both sides.
pub(crate) fn io_side(floorplan: &Floorplan, part: &Partition) -> IoSide {
    if part.kind != PartitionKind::ComputeUnit {
        return IoSide::Both;
    }
    let nearest = floorplan.gmcs().min_by(|a, b| {
        part.rect
            .center_distance(&a.rect)
            .value()
            .total_cmp(&part.rect.center_distance(&b.rect).value())
    });
    match nearest {
        Some(gmc) if part.rect.center().0.value() <= gmc.rect.center().0.value() => IoSide::Right,
        Some(_) => IoSide::Left,
        // No controller partition: pull toward the partition center.
        None => IoSide::Both,
    }
}

/// Content-addressed key of one partition's analytical solve: module
/// structure, partition shape, I/O anchor side, net weights and seed.
/// Identical CU clones collide (by construction), so a 64-CU design
/// costs two CU solves — one per column orientation — plus the GMC.
pub(crate) fn solve_key(
    design: &Design,
    part: &Partition,
    side: IoSide,
    options: &PnrOptions,
) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    design.module_fingerprint(part.module).hash(&mut h);
    part.rect.w.value().to_bits().hash(&mut h);
    part.rect.h.value().to_bits().hash(&mut h);
    side.key_code().hash(&mut h);
    options.net_weights.key_bits().hash(&mut h);
    options.seed.hash(&mut h);
    h.finish()
}

/// Legalizes solved macro centers onto the partition (local
/// coordinates): greedy displacement-minimizing packing over the
/// candidate grid spanned by region corners and placed-macro edges,
/// trying both orientations. Returns `None` if some macro cannot be
/// placed (caller falls back to the shelf packer).
fn legalize(
    w: f64,
    h: f64,
    shapes: &[MacroShape],
    solved: &[(f64, f64)],
) -> Option<Vec<PlacedMacro>> {
    // Big macros first: they have the fewest legal spots.
    let mut order: Vec<usize> = (0..shapes.len()).collect();
    order.sort_by(|&a, &b| {
        (shapes[b].w * shapes[b].h)
            .total_cmp(&(shapes[a].w * shapes[a].h))
            .then_with(|| shapes[a].name.cmp(&shapes[b].name))
    });

    let mut placed: Vec<Rect> = Vec::with_capacity(shapes.len());
    let mut out: Vec<Option<PlacedMacro>> = vec![None; shapes.len()];
    for &idx in &order {
        let shape = &shapes[idx];
        let (tx, ty) = solved[idx];
        let mut xs: Vec<f64> = vec![0.0];
        let mut ys: Vec<f64> = vec![0.0];
        for r in &placed {
            xs.push((r.x + r.w).value() + MACRO_SPACING);
            ys.push((r.y + r.h).value() + MACRO_SPACING);
            xs.push(r.x.value());
            ys.push(r.y.value());
        }
        let mut best: Option<(f64, f64, f64, f64, f64, bool)> = None;
        for rot in [false, true] {
            let (mw, mh) = if rot {
                (shape.h, shape.w)
            } else {
                (shape.w, shape.h)
            };
            if rot && (shape.w - shape.h).abs() < 1e-9 {
                continue; // square: identical orientation
            }
            if mw > w + 1e-6 || mh > h + 1e-6 {
                continue;
            }
            // The solved spot itself is the zero-displacement
            // candidate when it happens to be free.
            let sx = (tx - mw / 2.0).clamp(0.0, w - mw);
            let sy = (ty - mh / 2.0).clamp(0.0, h - mh);
            for &x in xs.iter().chain(std::iter::once(&sx)) {
                if x < -1e-6 || x + mw > w + 1e-6 {
                    continue;
                }
                for &y in ys.iter().chain(std::iter::once(&sy)) {
                    if y < -1e-6 || y + mh > h + 1e-6 {
                        continue;
                    }
                    // Keep the routing-halo gap to every placed macro.
                    let gap = MACRO_SPACING - 1e-6;
                    let candidate = Rect::new(
                        Um::new(x - gap),
                        Um::new(y - gap),
                        Um::new(mw + 2.0 * gap),
                        Um::new(mh + 2.0 * gap),
                    );
                    if placed.iter().any(|r| r.overlaps(&candidate)) {
                        continue;
                    }
                    let dx = x + mw / 2.0 - tx;
                    let dy = y + mh / 2.0 - ty;
                    let cost = dx * dx + dy * dy;
                    let better = match &best {
                        None => true,
                        Some((bc, bx, by, _, _, brot)) => match cost.total_cmp(bc) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Greater => false,
                            std::cmp::Ordering::Equal => match y.total_cmp(by) {
                                std::cmp::Ordering::Less => true,
                                std::cmp::Ordering::Greater => false,
                                std::cmp::Ordering::Equal => match x.total_cmp(bx) {
                                    std::cmp::Ordering::Less => true,
                                    std::cmp::Ordering::Greater => false,
                                    std::cmp::Ordering::Equal => !rot & *brot,
                                },
                            },
                        },
                    };
                    if better {
                        best = Some((cost, x, y, mw, mh, rot));
                    }
                }
            }
        }
        let (_, x, y, mw, mh, _) = best?;
        let rect = Rect::new(Um::new(x), Um::new(y), Um::new(mw), Um::new(mh));
        placed.push(rect);
        out[idx] = Some(PlacedMacro {
            name: shape.name.clone(),
            role: shape.role,
            rect,
        });
    }
    // Input order, like the shelf packer returns sorted order; callers
    // only rely on the set, but determinism wants a fixed order.
    Some(out.into_iter().flatten().collect())
}

/// Solves and legalizes one partition in local coordinates. Falls back
/// to the shelf packer when legalization cannot fit the solved
/// positions, so the analytical path can never produce an illegal
/// placement that the legacy path would have handled.
fn solve_partition(
    mut macros: Vec<MacroSpec>,
    w: f64,
    h: f64,
    side: IoSide,
    options: &PnrOptions,
    pool: &Pool,
) -> SolveOutcome {
    let shapes: Vec<MacroShape> = macros
        .iter()
        .map(|(n, r, mw, mh)| MacroShape {
            name: n.clone(),
            role: *r,
            w: mw.value(),
            h: mh.value(),
        })
        .collect();
    let solved = eplace::solve(
        &shapes,
        w,
        h,
        side,
        &options.net_weights,
        options.seed,
        pool,
    );
    let iterations = solved.iterations as u64;
    if solved.overflow.is_finite() {
        if let Some(placed) = legalize(w, h, &shapes, &solved.pos) {
            return Ok((placed, false, iterations));
        }
    }
    let region = Rect::new(Um::new(0.0), Um::new(0.0), Um::new(w), Um::new(h));
    let placed = shelf_pack(&region, &mut macros)?;
    Ok((placed, true, iterations))
}

fn utilization_of(part: &Partition, placed: &[PlacedMacro]) -> f64 {
    let macro_area: f64 = placed.iter().map(|m| m.rect.area().value()).sum();
    let free = part.rect.area().value() - macro_area * MACRO_HALO;
    if free > 0.0 {
        part.cell_area.value() / free
    } else {
        f64::INFINITY
    }
}

/// Places the macros of every partition in `floorplan` with the legacy
/// shelf packer (the seed-era behaviour; equivalent to
/// [`place_macros_with`] under default [`PnrOptions`]).
///
/// # Errors
///
/// Returns [`PnrError::MacrosDoNotFit`] if a partition cannot hold its
/// macros, or [`PnrError::Congested`] if the std-cell region would
/// exceed [`MAX_CELL_UTILIZATION`].
pub fn place_macros(
    design: &Design,
    floorplan: &Floorplan,
    tech: &Tech,
) -> Result<Vec<PlacedPartition>, PnrError> {
    place_macros_with(design, floorplan, tech, &PnrOptions::default())
}

/// Places the macros of every partition with the placer selected in
/// `options`, parallelizing analytical partition solves on the global
/// worker pool.
///
/// # Errors
///
/// As [`place_macros`].
pub fn place_macros_with(
    design: &Design,
    floorplan: &Floorplan,
    tech: &Tech,
    options: &PnrOptions,
) -> Result<Vec<PlacedPartition>, PnrError> {
    place_macros_pooled(design, floorplan, tech, options, Pool::global())
}

/// [`place_macros_with`] on an explicit worker pool — the hook the
/// determinism property tests use to compare thread counts within one
/// process.
///
/// # Errors
///
/// As [`place_macros`].
pub fn place_macros_pooled(
    design: &Design,
    floorplan: &Floorplan,
    tech: &Tech,
    options: &PnrOptions,
    pool: &Pool,
) -> Result<Vec<PlacedPartition>, PnrError> {
    let mut cache = HashMap::new();
    let mut stats = PlaceStats::default();
    place_macros_impl(
        design, floorplan, tech, options, pool, &mut cache, &mut stats,
    )
}

/// The shared placement engine: legacy shelf path, or analytical path
/// with a caller-owned content-addressed solve cache (scratch callers
/// pass an empty map; [`crate::incremental::IncrementalPnr`] passes
/// its persistent one and reaps cross-call hits).
pub(crate) fn place_macros_impl(
    design: &Design,
    floorplan: &Floorplan,
    tech: &Tech,
    options: &PnrOptions,
    pool: &Pool,
    cache: &mut HashMap<u64, Arc<Vec<PlacedMacro>>>,
    stats: &mut PlaceStats,
) -> Result<Vec<PlacedPartition>, PnrError> {
    let mut result = Vec::with_capacity(floorplan.partitions.len());
    match options.placer {
        Placer::Legacy => {
            for part in &floorplan.partitions {
                let mut macros = if part.name == "top" {
                    // The top partition holds only the top module's own
                    // macros (none in the G-GPU), not the whole design.
                    Vec::new()
                } else {
                    collect_macros(design, part.module, tech)?
                };
                let placed = shelf_pack(&part.rect, &mut macros).map_err(|e| match e {
                    PnrError::MacrosDoNotFit { macro_name, .. } => PnrError::MacrosDoNotFit {
                        partition: part.name.clone(),
                        macro_name,
                    },
                    other => other,
                })?;
                let utilization = utilization_of(part, &placed);
                if utilization > MAX_CELL_UTILIZATION {
                    return Err(PnrError::Congested {
                        partition: part.name.clone(),
                        utilization,
                    });
                }
                result.push(PlacedPartition {
                    partition: part.clone(),
                    macros: placed,
                    utilization,
                });
            }
        }
        Placer::Analytical => {
            // Assign every partition its solve key, then run only the
            // unique missing solves — CU clones collapse onto one key
            // per column orientation.
            let mut keys = Vec::with_capacity(floorplan.partitions.len());
            let mut jobs: Vec<SolveJob> = Vec::new();
            for part in &floorplan.partitions {
                let macros = if part.name == "top" {
                    Vec::new()
                } else {
                    collect_macros(design, part.module, tech)?
                };
                let side = io_side(floorplan, part);
                let key = solve_key(design, part, side, options);
                if macros.is_empty() {
                    // Macro-less partitions (the top strip) are free:
                    // neither a solve nor a cache hit.
                    keys.push((key, false));
                    cache.entry(key).or_insert_with(|| Arc::new(Vec::new()));
                    continue;
                }
                let fresh = !cache.contains_key(&key) && !jobs.iter().any(|(k, ..)| *k == key);
                if fresh {
                    jobs.push((key, macros, part.rect.w.value(), part.rect.h.value(), side));
                }
                keys.push((key, !fresh));
            }
            stats.solves += jobs.len() as u64;
            stats.cache_hits += keys.iter().filter(|(_, hit)| *hit).count() as u64;

            // Solving nests pool.map (gradient chunks inside partition
            // solves); the work-sharing pool handles that without
            // deadlock and preserves input order.
            let opts = *options;
            let solved: Vec<(u64, SolveOutcome)> = {
                let pool_ref = pool;
                // SAFETY-free trick: the pool's jobs need 'static, so
                // hand each job the global pool for its nested maps
                // when we are on the global pool, else solve inline.
                if std::ptr::eq(pool_ref, Pool::global()) {
                    pool.map(jobs, move |(key, macros, w, h, side)| {
                        (
                            key,
                            solve_partition(macros, w, h, side, &opts, Pool::global()),
                        )
                    })
                } else {
                    jobs.into_iter()
                        .map(|(key, macros, w, h, side)| {
                            (key, solve_partition(macros, w, h, side, &opts, pool_ref))
                        })
                        .collect()
                }
            };
            for (key, outcome) in solved {
                let (placed, fell_back, iterations) = outcome?;
                if fell_back {
                    stats.shelf_fallbacks += 1;
                }
                stats.nesterov_iterations += iterations;
                cache.insert(key, Arc::new(placed));
            }

            for (part, (key, _)) in floorplan.partitions.iter().zip(&keys) {
                let local = cache
                    .get(key)
                    .cloned()
                    .ok_or(PnrError::MissingPartition("solve cache entry"))?;
                let placed: Vec<PlacedMacro> = local
                    .iter()
                    .map(|m| PlacedMacro {
                        name: m.name.clone(),
                        role: m.role,
                        rect: Rect::new(
                            part.rect.x + m.rect.x,
                            part.rect.y + m.rect.y,
                            m.rect.w,
                            m.rect.h,
                        ),
                    })
                    .collect();
                let utilization = utilization_of(part, &placed);
                if utilization > MAX_CELL_UTILIZATION {
                    return Err(PnrError::Congested {
                        partition: part.name.clone(),
                        utilization,
                    });
                }
                result.push(PlacedPartition {
                    partition: part.clone(),
                    macros: placed,
                    utilization,
                });
            }
        }
    }
    Ok(result)
}

/// Total weighted macro half-perimeter wirelength of a placement under
/// the dataflow net model — the figure of merit the analytical placer
/// minimizes, evaluated exactly (not smoothed) so both placers can be
/// compared on it.
pub fn macro_hpwl(
    floorplan: &Floorplan,
    placements: &[PlacedPartition],
    weights: &NetWeights,
) -> Um {
    let mut total = 0.0;
    for placed in placements {
        if placed.macros.is_empty() {
            continue;
        }
        let part = &placed.partition;
        let side = io_side(floorplan, part);
        let shapes: Vec<MacroShape> = placed
            .macros
            .iter()
            .map(|m| MacroShape {
                name: m.name.clone(),
                role: m.role,
                w: m.rect.w.value(),
                h: m.rect.h.value(),
            })
            .collect();
        let nets = eplace::build_nets(
            &shapes,
            part.rect.w.value(),
            part.rect.h.value(),
            side,
            weights,
        );
        let pos: Vec<(f64, f64)> = placed
            .macros
            .iter()
            .map(|m| {
                let (cx, cy) = m.rect.center();
                (
                    cx.value() - part.rect.x.value(),
                    cy.value() - part.rect.y.value(),
                )
            })
            .collect();
        total += eplace::exact_hpwl(&nets, &pos);
    }
    Um::new(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{build_floorplan, DensityTargets};
    use ggpu_rtl::{generate, GgpuConfig};

    fn placed_with(n: u32, placer: Placer) -> (Floorplan, Vec<PlacedPartition>) {
        let d = generate(&GgpuConfig::with_cus(n).unwrap()).unwrap();
        let tech = Tech::l65();
        let fp = build_floorplan(&d, &tech, DensityTargets::default()).unwrap();
        let options = PnrOptions {
            placer,
            ..PnrOptions::default()
        };
        let parts = place_macros_with(&d, &fp, &tech, &options).unwrap();
        (fp, parts)
    }

    fn placed(n: u32) -> Vec<PlacedPartition> {
        placed_with(n, Placer::Legacy).1
    }

    #[test]
    fn every_cu_gets_42_macros() {
        let parts = placed(2);
        for p in parts
            .iter()
            .filter(|p| p.partition.kind == crate::floorplan::PartitionKind::ComputeUnit)
        {
            assert_eq!(p.macros.len(), 42, "{}", p.partition.name);
        }
    }

    #[test]
    fn gmc_gets_9_macros() {
        let parts = placed(1);
        let gmc = parts
            .iter()
            .find(|p| p.partition.kind == crate::floorplan::PartitionKind::MemoryController)
            .unwrap();
        assert_eq!(gmc.macros.len(), 9);
    }

    #[test]
    fn macros_stay_inside_their_partition_and_do_not_overlap() {
        for parts in [placed(1), placed(8)] {
            for p in &parts {
                for m in &p.macros {
                    assert!(
                        p.partition.rect.contains(&m.rect),
                        "{} escapes {}",
                        m.name,
                        p.partition.name
                    );
                }
                for (i, a) in p.macros.iter().enumerate() {
                    for b in p.macros.iter().skip(i + 1) {
                        assert!(!a.rect.overlaps(&b.rect), "{} vs {}", a.name, b.name);
                    }
                }
            }
        }
    }

    #[test]
    fn utilization_is_legal() {
        for p in placed(8) {
            assert!(
                p.utilization <= MAX_CELL_UTILIZATION,
                "{}: {}",
                p.partition.name,
                p.utilization
            );
        }
    }

    #[test]
    fn macro_names_are_hierarchical() {
        let parts = placed(1);
        let cu = parts
            .iter()
            .find(|p| p.partition.kind == crate::floorplan::PartitionKind::ComputeUnit)
            .unwrap();
        assert!(cu.macros.iter().any(|m| m.name.starts_with("pe0/")));
        assert!(cu.macros.iter().any(|m| m.name == "cram0"));
    }

    #[test]
    fn analytical_placement_is_legal_and_complete() {
        let (_, parts) = placed_with(2, Placer::Analytical);
        for p in &parts {
            let expected = match p.partition.kind {
                PartitionKind::ComputeUnit => 42,
                PartitionKind::MemoryController => 9,
                PartitionKind::Top => 0,
            };
            assert_eq!(p.macros.len(), expected, "{}", p.partition.name);
            for m in &p.macros {
                assert!(
                    p.partition.rect.contains(&m.rect),
                    "{} escapes {}",
                    m.name,
                    p.partition.name
                );
            }
            for (i, a) in p.macros.iter().enumerate() {
                for b in p.macros.iter().skip(i + 1) {
                    assert!(!a.rect.overlaps(&b.rect), "{} vs {}", a.name, b.name);
                }
            }
            assert!(p.utilization <= MAX_CELL_UTILIZATION);
        }
    }

    #[test]
    fn analytical_beats_legacy_hpwl_at_8_cus() {
        let (fp, legacy) = placed_with(8, Placer::Legacy);
        let (_, analytical) = placed_with(8, Placer::Analytical);
        let weights = NetWeights::default();
        let wl_legacy = macro_hpwl(&fp, &legacy, &weights).value();
        let wl_analytical = macro_hpwl(&fp, &analytical, &weights).value();
        assert!(
            wl_analytical < wl_legacy,
            "analytical {wl_analytical:.0} um must beat legacy {wl_legacy:.0} um"
        );
    }

    #[test]
    fn cu_clones_share_one_solve_per_column() {
        let d = generate(&GgpuConfig::with_cus(8).unwrap()).unwrap();
        let tech = Tech::l65();
        let fp = build_floorplan(&d, &tech, DensityTargets::default()).unwrap();
        let options = PnrOptions {
            placer: Placer::Analytical,
            ..PnrOptions::default()
        };
        let pool = Pool::new(1);
        let mut cache = HashMap::new();
        let mut stats = PlaceStats::default();
        let parts =
            place_macros_impl(&d, &fp, &tech, &options, &pool, &mut cache, &mut stats).unwrap();
        assert_eq!(parts.len(), 10); // 8 CUs + gmc + top
                                     // 8 CUs collapse to left-column + right-column solves, plus
                                     // the GMC; the macro-less top strip costs nothing.
        assert_eq!(stats.solves, 3, "{stats:?}");
        assert_eq!(stats.cache_hits, 6, "{stats:?}");
    }
}
