//! Macro placement inside partitions.
//!
//! Block memories "have to be strategically placed in order to extract
//! the maximum performance" (paper §IV); here a deterministic shelf
//! packer places each partition's macros along its bottom edge rows,
//! leaving the remaining area as the standard-cell region. The packer
//! verifies that the std-cell region can hold the partition's cells at
//! a legal utilization.

use crate::floorplan::{Floorplan, Partition, MACRO_HALO};
use crate::geometry::Rect;
use crate::PnrError;
use ggpu_netlist::module::MemoryRole;
use ggpu_netlist::Design;
use ggpu_tech::units::Um;
use ggpu_tech::Tech;

/// Maximum legal std-cell utilization of the non-macro area.
pub const MAX_CELL_UTILIZATION: f64 = 0.88;
/// Spacing between adjacent macros.
const MACRO_SPACING: f64 = 10.0;

/// A macro placed inside a partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedMacro {
    /// Hierarchical name relative to the partition
    /// (`"pe3/rf_bank_d1"`).
    pub name: String,
    /// Architectural role (drives the layout colouring, matching the
    /// paper's Figs. 3-4).
    pub role: MemoryRole,
    /// Placed outline in chip coordinates.
    pub rect: Rect,
}

/// The placement of one partition: its macros plus achieved std-cell
/// utilization.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedPartition {
    /// The partition this placement fills.
    pub partition: Partition,
    /// Placed macros.
    pub macros: Vec<PlacedMacro>,
    /// Std-cell utilization of the remaining area.
    pub utilization: f64,
}

/// Collects the macros of a partition's subtree with hierarchical
/// names.
fn collect_macros(
    design: &Design,
    module: ggpu_netlist::ModuleId,
    tech: &Tech,
) -> Result<Vec<(String, MemoryRole, Um, Um)>, PnrError> {
    fn walk(
        design: &Design,
        module: ggpu_netlist::ModuleId,
        tech: &Tech,
        prefix: &mut String,
        out: &mut Vec<(String, MemoryRole, Um, Um)>,
    ) -> Result<(), PnrError> {
        for m in &design.module(module).macros {
            let compiled = tech
                .memory_compiler
                .compile(m.config)
                .map_err(PnrError::Sram)?;
            let name = if prefix.is_empty() {
                m.name.clone()
            } else {
                format!("{prefix}/{}", m.name)
            };
            out.push((name, m.role, compiled.width, compiled.height));
        }
        let len = prefix.len();
        for child in &design.module(module).children {
            if !prefix.is_empty() {
                prefix.push('/');
            }
            prefix.push_str(&child.name);
            walk(design, child.module, tech, prefix, out)?;
            prefix.truncate(len);
        }
        Ok(())
    }
    let mut out = Vec::new();
    let mut prefix = String::new();
    walk(design, module, tech, &mut prefix, &mut out)?;
    Ok(out)
}

/// Shelf-packs `macros` into `region` with first-fit-decreasing: tall
/// macros open shelves bottom-up; later macros drop into the first
/// shelf with room (rotating when that helps).
fn shelf_pack(
    region: &Rect,
    macros: &mut [(String, MemoryRole, Um, Um)],
) -> Result<Vec<PlacedMacro>, PnrError> {
    // Normalize each macro taller-than-wide first, then sort by
    // height descending so shelf heights shrink monotonically.
    struct Shelf {
        y: f64,
        height: f64,
        cursor_x: f64,
    }
    let mut items: Vec<(String, MemoryRole, f64, f64)> = macros
        .iter()
        .map(|(n, r, w, h)| {
            let (w, h) = (w.value(), h.value());
            // Lay flat (wider than tall) so shelves stay short.
            if h > w {
                (n.clone(), *r, h, w)
            } else {
                (n.clone(), *r, w, h)
            }
        })
        .collect();
    items.sort_by(|a, b| {
        b.3.partial_cmp(&a.3)
            .expect("finite heights")
            .then_with(|| a.0.cmp(&b.0))
    });

    let right = (region.x + region.w).value();
    let top = (region.y + region.h).value();
    let mut shelves: Vec<Shelf> = Vec::new();
    let mut next_y = region.y.value();
    let mut placed = Vec::with_capacity(items.len());
    for (name, role, w, h) in items {
        // Try existing shelves first (as-is, then rotated).
        let mut pos = None;
        for shelf in &mut shelves {
            if h <= shelf.height && shelf.cursor_x + w <= right {
                pos = Some((shelf.cursor_x, shelf.y, w, h));
                shelf.cursor_x += w + MACRO_SPACING;
                break;
            }
            if w <= shelf.height && shelf.cursor_x + h <= right {
                pos = Some((shelf.cursor_x, shelf.y, h, w));
                shelf.cursor_x += h + MACRO_SPACING;
                break;
            }
        }
        let (x, y, w, h) = match pos {
            Some(p) => p,
            None => {
                // Open a new shelf; rotate if the macro is wider than
                // the region.
                let (w, h) = if region.x.value() + w > right && region.x.value() + h <= right {
                    (h, w)
                } else {
                    (w, h)
                };
                if next_y + h > top || region.x.value() + w > right {
                    return Err(PnrError::MacrosDoNotFit {
                        partition: String::new(),
                        macro_name: name.clone(),
                    });
                }
                let y = next_y;
                shelves.push(Shelf {
                    y,
                    height: h,
                    cursor_x: region.x.value() + w + MACRO_SPACING,
                });
                next_y += h + MACRO_SPACING;
                (region.x.value(), y, w, h)
            }
        };
        placed.push(PlacedMacro {
            name,
            role,
            rect: Rect::new(Um::new(x), Um::new(y), Um::new(w), Um::new(h)),
        });
    }
    Ok(placed)
}

/// Places the macros of every partition in `floorplan`.
///
/// # Errors
///
/// Returns [`PnrError::MacrosDoNotFit`] if a partition cannot hold its
/// macros, or [`PnrError::Congested`] if the std-cell region would
/// exceed [`MAX_CELL_UTILIZATION`].
pub fn place_macros(
    design: &Design,
    floorplan: &Floorplan,
    tech: &Tech,
) -> Result<Vec<PlacedPartition>, PnrError> {
    let mut result = Vec::with_capacity(floorplan.partitions.len());
    for part in &floorplan.partitions {
        let mut macros = if part.name == "top" {
            // The top partition holds only the top module's own macros
            // (none in the G-GPU), not the whole design.
            Vec::new()
        } else {
            collect_macros(design, part.module, tech)?
        };
        let placed = shelf_pack(&part.rect, &mut macros).map_err(|e| match e {
            PnrError::MacrosDoNotFit { macro_name, .. } => PnrError::MacrosDoNotFit {
                partition: part.name.clone(),
                macro_name,
            },
            other => other,
        })?;
        let macro_area: f64 = placed.iter().map(|m| m.rect.area().value()).sum();
        let free = part.rect.area().value() - macro_area * MACRO_HALO;
        let utilization = if free > 0.0 {
            part.cell_area.value() / free
        } else {
            f64::INFINITY
        };
        if utilization > MAX_CELL_UTILIZATION {
            return Err(PnrError::Congested {
                partition: part.name.clone(),
                utilization,
            });
        }
        result.push(PlacedPartition {
            partition: part.clone(),
            macros: placed,
            utilization,
        });
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{build_floorplan, DensityTargets};
    use ggpu_rtl::{generate, GgpuConfig};

    fn placed(n: u32) -> Vec<PlacedPartition> {
        let d = generate(&GgpuConfig::with_cus(n).unwrap()).unwrap();
        let tech = Tech::l65();
        let fp = build_floorplan(&d, &tech, DensityTargets::default()).unwrap();
        place_macros(&d, &fp, &tech).unwrap()
    }

    #[test]
    fn every_cu_gets_42_macros() {
        let parts = placed(2);
        for p in parts
            .iter()
            .filter(|p| p.partition.kind == crate::floorplan::PartitionKind::ComputeUnit)
        {
            assert_eq!(p.macros.len(), 42, "{}", p.partition.name);
        }
    }

    #[test]
    fn gmc_gets_9_macros() {
        let parts = placed(1);
        let gmc = parts
            .iter()
            .find(|p| p.partition.kind == crate::floorplan::PartitionKind::MemoryController)
            .unwrap();
        assert_eq!(gmc.macros.len(), 9);
    }

    #[test]
    fn macros_stay_inside_their_partition_and_do_not_overlap() {
        for parts in [placed(1), placed(8)] {
            for p in &parts {
                for m in &p.macros {
                    assert!(
                        p.partition.rect.contains(&m.rect),
                        "{} escapes {}",
                        m.name,
                        p.partition.name
                    );
                }
                for (i, a) in p.macros.iter().enumerate() {
                    for b in p.macros.iter().skip(i + 1) {
                        assert!(!a.rect.overlaps(&b.rect), "{} vs {}", a.name, b.name);
                    }
                }
            }
        }
    }

    #[test]
    fn utilization_is_legal() {
        for p in placed(8) {
            assert!(
                p.utilization <= MAX_CELL_UTILIZATION,
                "{}: {}",
                p.partition.name,
                p.utilization
            );
        }
    }

    #[test]
    fn macro_names_are_hierarchical() {
        let parts = placed(1);
        let cu = parts
            .iter()
            .find(|p| p.partition.kind == crate::floorplan::PartitionKind::ComputeUnit)
            .unwrap();
        assert!(cu.macros.iter().any(|m| m.name.starts_with("pe0/")));
        assert!(cu.macros.iter().any(|m| m.name == "cram0"));
    }
}
