//! A lazily-initialized global worker pool for the data-parallel
//! placement phases.
//!
//! The workspace builds fully offline, so the external `rayon` crate
//! is replaced by this minimal work-sharing pool: one process-wide set
//! of persistent worker threads (sized by the `GGPU_THREADS`
//! environment variable, read once at first use, falling back to
//! [`std::thread::available_parallelism`]) shared by every parallel
//! placement call — no per-call thread construction, mirroring how
//! `rayon::ThreadPoolBuilder::build_global` would be wired.
//!
//! [`Pool::map`] is deterministic by construction: every job is a pure
//! function of its input, results are collected by input index, and no
//! floating-point reduction depends on scheduling order — so the same
//! inputs produce byte-identical outputs on 1 or N threads (asserted
//! by `tests/prop_place.rs`).
//!
//! The calling thread participates in draining the queue while it
//! waits, which makes nested [`Pool::map`] calls deadlock-free: a
//! worker that issues a sub-map executes queued jobs itself instead of
//! blocking idle.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;

type Job = Box<dyn FnOnce() + Send>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    closed: Mutex<bool>,
}

/// A fixed-size work-sharing thread pool. Use [`Pool::global`] in
/// production code; explicit [`Pool::new`] instances exist so the
/// determinism property tests can compare thread counts within one
/// process.
pub struct Pool {
    threads: usize,
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

/// Recovers a poisoned lock: jobs run under `catch_unwind`, so the
/// protected queue state is always consistent.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Renders a caught panic payload as the human-readable message most
/// panics carry (`&str` or `String`), falling back to a generic label
/// for exotic payloads. Shared by [`Pool::try_map`] and the planner's
/// flow supervisor, so every isolated panic surfaces the same way.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    "non-string panic payload".to_string()
}

/// Worker-thread count for the global pool: `GGPU_THREADS` if set to a
/// positive integer, otherwise the host parallelism.
pub fn configured_threads() -> usize {
    std::env::var("GGPU_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()))
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    /// The process-wide pool, created on first use with
    /// [`configured_threads`] workers. Subsequent changes to
    /// `GGPU_THREADS` do not resize it.
    pub fn global() -> &'static Pool {
        GLOBAL.get_or_init(|| Pool::new(configured_threads()))
    }

    /// A pool with `threads` workers (`threads - 1` spawned threads;
    /// the caller of [`Pool::map`] is the remaining worker). A pool of
    /// 0 or 1 threads runs every map inline with no queue traffic.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            closed: Mutex::new(false),
        });
        let workers = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            threads,
            shared,
            workers,
        }
    }

    /// The pool's worker count (including the participating caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `inputs`, returning results in input order.
    ///
    /// Jobs are handed to the shared queue; the calling thread drains
    /// the queue alongside the workers until its own results are
    /// complete, so nested maps cannot deadlock. A panicking job is
    /// caught on the worker and re-raised here after the remaining
    /// jobs settle.
    pub fn map<I, T, F>(&self, inputs: Vec<I>, f: F) -> Vec<T>
    where
        I: Send + 'static,
        T: Send + 'static,
        F: Fn(I) -> T + Send + Sync + 'static,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        if self.threads <= 1 || n == 1 {
            return inputs.into_iter().map(f).collect();
        }
        let f = Arc::new(f);
        let (tx, rx) = channel::<(usize, thread::Result<T>)>();
        {
            let mut queue = relock(self.shared.queue.lock());
            for (idx, input) in inputs.into_iter().enumerate() {
                let f = Arc::clone(&f);
                let tx: Sender<(usize, thread::Result<T>)> = tx.clone();
                queue.push_back(Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| f(input)));
                    // The receiver may be gone if the caller already
                    // panicked out of `map`; dropping the result then
                    // is fine.
                    let _ = tx.send((idx, result));
                }));
            }
        }
        self.shared.available.notify_all();
        drop(tx);

        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut panic_payload = None;
        let mut done = 0;
        while done < n {
            // Collect whatever has already finished.
            while let Ok((idx, result)) = rx.try_recv() {
                match result {
                    Ok(v) => out[idx] = Some(v),
                    Err(p) => {
                        panic_payload.get_or_insert(p);
                    }
                }
                done += 1;
            }
            if done >= n {
                break;
            }
            // Help: run one queued job (ours or a sibling map's)...
            let job = relock(self.shared.queue.lock()).pop_front();
            match job {
                Some(job) => job(),
                // ...or, with the queue drained, wait for stragglers
                // still running on workers. The channel cannot close
                // early: every undelivered result holds a sender.
                None => {
                    if let Ok((idx, result)) = rx.recv() {
                        match result {
                            Ok(v) => out[idx] = Some(v),
                            Err(p) => {
                                panic_payload.get_or_insert(p);
                            }
                        }
                        done += 1;
                    }
                }
            }
        }
        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
        out.into_iter()
            .map(|v| v.unwrap_or_else(|| unreachable!("every job reported")))
            .collect()
    }

    /// [`Pool::map`] with per-job panic *isolation* instead of
    /// propagation: a job that panics yields `Err(message)` in its
    /// slot while every other job still completes and returns.
    ///
    /// This is the supervision boundary the flow orchestrator builds
    /// on — one poisoned candidate in a fanned-out sweep must not tear
    /// down its siblings' finished work.
    pub fn try_map<I, T, F>(&self, inputs: Vec<I>, f: F) -> Vec<Result<T, String>>
    where
        I: Send + 'static,
        T: Send + 'static,
        F: Fn(I) -> T + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        self.map(inputs, move |input| {
            catch_unwind(AssertUnwindSafe(|| f(input))).map_err(|p| panic_message(p.as_ref()))
        })
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        *relock(self.shared.closed.lock()) = true;
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = relock(shared.queue.lock());
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if *relock(shared.closed.lock()) {
                    break None;
                }
                queue = relock(shared.available.wait(queue));
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let pool = Pool::new(4);
        let squares = pool.map((0..97usize).collect(), |i| i * i);
        assert_eq!(squares, (0..97).map(|i| i * i).collect::<Vec<_>>());
        // Degenerate sizes fall back to inline execution.
        let one = Pool::new(1);
        assert_eq!(one.map(vec![7usize], |i| i + 1), vec![8]);
        assert_eq!(one.map(Vec::<usize>::new(), |i| i), Vec::<usize>::new());
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let work = |i: usize| {
            let mut acc = i as f64;
            for k in 1..200 {
                acc += (i * k) as f64 / (k as f64);
            }
            acc.to_bits()
        };
        let seq = Pool::new(1).map((0..64).collect(), work);
        for threads in [2, 3, 8] {
            let par = Pool::new(threads).map((0..64).collect(), work);
            assert_eq!(seq, par, "{threads} threads");
        }
    }

    #[test]
    fn nested_maps_do_not_deadlock() {
        let pool = Arc::new(Pool::new(2));
        let p2 = Arc::clone(&pool);
        let sums = pool.map((0..8usize).collect(), move |i| {
            p2.map((0..8usize).collect(), move |j| i * 10 + j)
                .into_iter()
                .sum::<usize>()
        });
        assert_eq!(sums.len(), 8);
        assert_eq!(sums[3], (0..8).map(|j| 30 + j).sum::<usize>());
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = Pool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..16usize).collect(), |i| {
                assert!(i != 11, "boom");
                i
            })
        }));
        assert!(result.is_err());
        // The pool survives a panicked map.
        assert_eq!(pool.map(vec![1usize, 2], |i| i * 2), vec![2, 4]);
    }

    #[test]
    fn try_map_isolates_panicking_jobs() {
        let pool = Pool::new(3);
        let out = pool.try_map((0..16usize).collect(), |i| {
            assert!(i % 5 != 3, "job {i} poisoned");
            i * 2
        });
        for (i, r) in out.iter().enumerate() {
            if i % 5 == 3 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("poisoned"), "{msg}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 2);
            }
        }
        // The pool stays usable afterwards.
        assert_eq!(pool.map(vec![1usize, 2], |i| i + 1), vec![2, 3]);
    }

    #[test]
    fn panic_messages_render_str_and_string_payloads() {
        let p = catch_unwind(|| panic!("plain str")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "plain str");
        let p = catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted 7");
        let p = catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = Pool::global() as *const Pool;
        let b = Pool::global() as *const Pool;
        assert_eq!(a, b);
        assert!(Pool::global().threads() >= 1);
    }
}
