//! Physical-synthesis model: partitioned floorplanning, macro
//! placement, global routing and post-route timing.
//!
//! [`place_and_route`] runs the paper's physical flow on a generated
//! design: build the three-partition floorplan (CU clones at 70 %
//! density, general memory controller at 70 %, sparse top at 30 %),
//! shelf-place the memory macros, estimate per-layer wirelength
//! (Table II), annotate the inter-partition routes with buffered-wire
//! delays and re-time the design. The returned [`Layout`] reports the
//! achieved clock — which is where the 8-CU design drops from the
//! requested 667 MHz to ~600 MHz, reproducing the paper's §IV finding.
//!
//! # Example
//!
//! ```
//! use ggpu_pnr::{place_and_route, PnrOptions};
//! use ggpu_rtl::{generate, GgpuConfig};
//! use ggpu_tech::units::Mhz;
//! use ggpu_tech::Tech;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate(&GgpuConfig::with_cus(1)?)?;
//! let layout = place_and_route(&design, &Tech::l65(), Mhz::new(500.0), PnrOptions::default())?;
//! assert!(layout.meets_timing);
//! # Ok(())
//! # }
//! ```
//!
//! # Placers
//!
//! Macro placement inside the partitions runs one of two engines,
//! selected by [`PnrOptions::placer`]: the seed-era shelf packer
//! ([`Placer::Legacy`], the bit-stable default that all Table-I
//! datasheets pin), or the electrostatic analytical placer
//! ([`Placer::Analytical`], [`eplace`]) whose gradient evaluation runs
//! data-parallel on the `GGPU_THREADS`-sized global worker pool
//! ([`pool::Pool::global`]). [`incremental::IncrementalPnr`] keeps the
//! analytical solves and the STA module cache warm across DSE
//! candidates.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod eplace;
pub mod floorplan;
pub mod geometry;
pub mod incremental;
mod nesterov;
pub mod place;
pub mod pool;
pub mod route;
pub mod svg;

use ggpu_netlist::Design;
use ggpu_sta::{analyze, max_frequency, StaError, TimingReport};
use ggpu_tech::sram::CompileSramError;
use ggpu_tech::units::{Mhz, Ns, Um};
use ggpu_tech::Tech;
use std::error::Error;
use std::fmt;

pub use eplace::NetWeights;
pub use floorplan::{build_floorplan, DensityTargets, Floorplan, Partition, PartitionKind};
pub use geometry::Rect;
pub use incremental::{IncrementalPnr, PlacementDelta, PnrStats};
pub use place::{
    macro_hpwl, place_macros, place_macros_pooled, place_macros_with, PlaceStats, PlacedMacro,
    PlacedPartition, Placer, MAX_CELL_UTILIZATION,
};
pub use pool::{configured_threads, panic_message, Pool};
pub use route::{annotate_routes, estimate_wirelength, LayerWirelength};
pub use svg::{role_color, to_placement_report, to_svg};

/// Options of the physical flow.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PnrOptions {
    /// Partition density targets.
    pub densities: DensityTargets,
    /// Which macro placer fills the partitions.
    pub placer: Placer,
    /// Net weights of the analytical placer's dataflow net model
    /// (ignored by the legacy placer). The planner derives these from
    /// kernel traffic profiles; the defaults model a generic
    /// memory-bound workload.
    pub net_weights: NetWeights,
    /// Seed of the analytical placer's deterministic initial jitter.
    pub seed: u64,
}

/// Errors of the physical flow.
#[derive(Debug, Clone, PartialEq)]
pub enum PnrError {
    /// The design lacks an expected partition module.
    MissingPartition(&'static str),
    /// The technology's metal stack lacks an expected routing layer.
    MissingLayer(&'static str),
    /// A macro geometry is outside the memory-compiler range.
    Sram(CompileSramError),
    /// A partition cannot physically hold its macros.
    MacrosDoNotFit {
        /// Partition name.
        partition: String,
        /// First macro that failed to place.
        macro_name: String,
    },
    /// Std-cell utilization exceeds the legal maximum.
    Congested {
        /// Partition name.
        partition: String,
        /// Computed utilization.
        utilization: f64,
    },
    /// Post-route timing analysis failed.
    Sta(StaError),
}

impl fmt::Display for PnrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PnrError::MissingPartition(p) => write!(f, "design has no {p} partition"),
            PnrError::MissingLayer(l) => write!(f, "metal stack has no {l} layer"),
            PnrError::Sram(e) => write!(f, "memory compiler: {e}"),
            PnrError::MacrosDoNotFit {
                partition,
                macro_name,
            } => write!(f, "macro {macro_name} does not fit in partition {partition}"),
            PnrError::Congested {
                partition,
                utilization,
            } => write!(
                f,
                "partition {partition} std-cell utilization {utilization:.2} exceeds {MAX_CELL_UTILIZATION}"
            ),
            PnrError::Sta(e) => write!(f, "timing: {e}"),
        }
    }
}

impl Error for PnrError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PnrError::Sram(e) => Some(e),
            PnrError::Sta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StaError> for PnrError {
    fn from(e: StaError) -> Self {
        PnrError::Sta(e)
    }
}

/// A finished layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    /// Design name.
    pub design: String,
    /// Requested clock.
    pub target: Mhz,
    /// The floorplan.
    pub floorplan: Floorplan,
    /// Placed partitions with their macros.
    pub placements: Vec<PlacedPartition>,
    /// Per-layer signal wirelength (Table II).
    pub wirelength: LayerWirelength,
    /// Exact weighted macro half-perimeter wirelength of the placement
    /// under the dataflow net model — the analytical placer's figure
    /// of merit, also evaluated for legacy placements so the two are
    /// comparable.
    pub macro_hpwl: Um,
    /// Which placer produced [`Layout::placements`].
    pub placer: Placer,
    /// Post-route timing at the requested clock.
    pub post_route: TimingReport,
    /// Post-route maximum frequency.
    pub fmax: Mhz,
    /// Per-CU route delays to the memory controller.
    pub cu_route_delays: Vec<Ns>,
    /// `true` if the layout meets the requested clock.
    pub meets_timing: bool,
    /// The clock the layout actually supports: the requested clock if
    /// timing is met, otherwise the post-route fmax (the paper's 8-CU
    /// 667 MHz request closes at 600 MHz this way).
    pub achieved_clock: Mhz,
}

/// Runs the physical flow: floorplan → macro placement → routing →
/// post-route timing.
///
/// # Errors
///
/// Returns [`PnrError`] if the hierarchy lacks the expected
/// partitions, macros do not fit, utilization is illegal, or timing
/// analysis fails.
pub fn place_and_route(
    design: &Design,
    tech: &Tech,
    target: Mhz,
    options: PnrOptions,
) -> Result<Layout, PnrError> {
    let floorplan = build_floorplan(design, tech, options.densities)?;
    let placements = place_macros_with(design, &floorplan, tech, &options)?;
    let wirelength = estimate_wirelength(design, &floorplan, tech)?;
    let hpwl = macro_hpwl(&floorplan, &placements, &options.net_weights);

    // Route annotation happens on a copy: PnR must not mutate the
    // caller's netlist.
    let mut annotated = design.clone();
    let cu_route_delays = annotate_routes(&mut annotated, &floorplan, tech)?;
    let post_route = analyze(&annotated, tech, target)?;
    let fmax = max_frequency(&annotated, tech)?.unwrap_or(Mhz::new(f64::INFINITY));
    let meets_timing = post_route.meets_timing();
    let achieved_clock = if meets_timing { target } else { fmax };

    Ok(Layout {
        design: design.name().to_string(),
        target,
        floorplan,
        placements,
        wirelength,
        macro_hpwl: hpwl,
        placer: options.placer,
        post_route,
        fmax,
        cu_route_delays,
        meets_timing,
        achieved_clock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_rtl::{generate, GgpuConfig};

    #[test]
    fn one_cu_closes_500mhz_post_route() {
        let d = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
        let layout =
            place_and_route(&d, &Tech::l65(), Mhz::new(500.0), PnrOptions::default()).unwrap();
        assert!(layout.meets_timing, "post-route fmax {}", layout.fmax);
        assert_eq!(layout.achieved_clock, Mhz::new(500.0));
    }

    #[test]
    fn eight_cu_baseline_also_closes_500mhz() {
        let d = generate(&GgpuConfig::with_cus(8).unwrap()).unwrap();
        let layout =
            place_and_route(&d, &Tech::l65(), Mhz::new(500.0), PnrOptions::default()).unwrap();
        assert!(
            layout.meets_timing,
            "paper: 8CU@500MHz closes; fmax {}",
            layout.fmax
        );
    }

    #[test]
    fn pnr_does_not_mutate_the_design() {
        let d = generate(&GgpuConfig::with_cus(2).unwrap()).unwrap();
        let before = d.clone();
        let _ = place_and_route(&d, &Tech::l65(), Mhz::new(500.0), PnrOptions::default()).unwrap();
        assert_eq!(d, before);
    }

    #[test]
    fn route_delays_are_reported_per_cu() {
        let d = generate(&GgpuConfig::with_cus(4).unwrap()).unwrap();
        let layout =
            place_and_route(&d, &Tech::l65(), Mhz::new(500.0), PnrOptions::default()).unwrap();
        assert_eq!(layout.cu_route_delays.len(), 4);
        assert!(layout.cu_route_delays.iter().all(|d| d.value() > 0.0));
    }
}
