//! Global routing: per-layer wirelength estimation and route-delay
//! annotation of inter-partition timing paths.
//!
//! Local (intra-partition) wiring is estimated with a calibrated
//! statistical model — detailed routing of a 1.5 M-cell design is out
//! of scope and unnecessary for the paper's conclusions, which depend
//! on (a) the per-layer wirelength ranking of Table II and (b) the
//! buffered-wire delay of the CU↔memory-controller routes that caps
//! the 8-CU layout at 600 MHz.

use crate::floorplan::Floorplan;
use crate::PnrError;
use ggpu_netlist::stats::design_stats;
use ggpu_netlist::Design;
use ggpu_tech::units::{Ns, Um};
use ggpu_tech::wireload::BufferedWire;
use ggpu_tech::Tech;
use std::collections::BTreeMap;

/// Signal wires in the CU ↔ memory-controller bus (request + response
/// data, address and handshake).
pub const CU_GMC_BUS_WIRES: f64 = 512.0;
/// Signal wires in the dispatcher ↔ CU control bus.
pub const TOP_CU_BUS_WIRES: f64 = 128.0;
/// Detour factor of routed versus Manhattan length.
pub const ROUTE_DETOUR: f64 = 1.15;
/// Fixed driver/via delay added to every buffered inter-partition
/// route.
pub const ROUTE_OVERHEAD: Ns = Ns::new(0.05);

/// Calibration constants of the statistical local-wirelength model
/// `WL = c * cells^0.75 * chip_mm2^0.3 * congestion`.
const WL_COEFF: f64 = 941.0;
const WL_CELL_EXP: f64 = 0.75;
const WL_AREA_EXP: f64 = 0.3;

/// Fraction of local wirelength per signal layer M2–M7, calibrated to
/// the distribution of the paper's Table II (1CU@500MHz column).
const LOCAL_PROFILE: [(&str, f64); 6] = [
    ("M2", 0.198),
    ("M3", 0.320),
    ("M4", 0.186),
    ("M5", 0.169),
    ("M6", 0.089),
    ("M7", 0.038),
];

/// Fraction of global (inter-partition) wirelength per layer; long
/// routes prefer the fast upper layers.
const GLOBAL_PROFILE: [(&str, f64); 4] = [("M4", 0.15), ("M5", 0.35), ("M6", 0.30), ("M7", 0.20)];

/// Signal wirelength broken down by metal layer — the paper's
/// Table II.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LayerWirelength {
    per_layer: BTreeMap<String, f64>,
}

impl LayerWirelength {
    /// Wirelength on the given layer.
    pub fn layer(&self, name: &str) -> Um {
        Um::new(self.per_layer.get(name).copied().unwrap_or(0.0))
    }

    /// Total signal wirelength.
    pub fn total(&self) -> Um {
        Um::new(self.per_layer.values().sum())
    }

    /// Iterates `(layer, wirelength)` in layer order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Um)> {
        self.per_layer
            .iter()
            .map(|(k, v)| (k.as_str(), Um::new(*v)))
    }

    fn add(&mut self, layer: &str, length: f64) {
        *self.per_layer.entry(layer.to_string()).or_insert(0.0) += length;
    }
}

/// Estimates the signal wirelength of the placed design.
///
/// # Errors
///
/// Fails if a macro geometry is outside the compiler range.
pub fn estimate_wirelength(
    design: &Design,
    floorplan: &Floorplan,
    tech: &Tech,
) -> Result<LayerWirelength, PnrError> {
    let stats = design_stats(design, tech).map_err(PnrError::Sram)?;
    let cells = stats.total_cells() as f64;
    let chip_mm2 = floorplan.chip.area().to_mm2();

    // Congestion: many small macros fragment the placement area and
    // force detours; the factor grows with macro count per unit area.
    let macro_density = stats.macro_count as f64 / chip_mm2.max(1e-6);
    let congestion = (macro_density / 10.0).max(0.5).sqrt();

    let local = WL_COEFF * cells.powf(WL_CELL_EXP) * chip_mm2.powf(WL_AREA_EXP) * congestion;

    let mut wl = LayerWirelength::default();
    for (layer, frac) in LOCAL_PROFILE {
        wl.add(layer, local * frac);
    }

    // Inter-partition buses (each CU talks to its nearest controller
    // replica).
    let mut global = 0.0;
    for cu in floorplan.cus() {
        let dist = floorplan
            .gmcs()
            .map(|g| cu.rect.center_distance(&g.rect).value())
            .fold(f64::MAX, f64::min);
        global += CU_GMC_BUS_WIRES * dist * ROUTE_DETOUR;
    }
    if let Some(top) = floorplan
        .partitions
        .iter()
        .find(|p| p.kind == crate::floorplan::PartitionKind::Top)
    {
        for cu in floorplan.cus() {
            global += TOP_CU_BUS_WIRES * cu.rect.center_distance(&top.rect).value() * ROUTE_DETOUR;
        }
    }
    for (layer, frac) in GLOBAL_PROFILE {
        wl.add(layer, global * frac);
    }
    Ok(wl)
}

/// Annotates the top module's per-CU arbitration paths (and the
/// dispatch path) with buffered-wire route delays derived from the
/// floorplan distances. Returns the per-CU route delays.
///
/// This is where the paper's 8-CU story plays out: *"the connecting
/// routing wires introduce a significant capacitance because of the
/// long distance between the peripheral CUs and the general memory
/// controller"*.
///
/// # Errors
///
/// Returns [`PnrError::MissingLayer`] if the technology has no M6
/// routing layer, or [`PnrError::MissingPartition`] if the floorplan
/// has no memory controller.
pub fn annotate_routes(
    design: &mut Design,
    floorplan: &Floorplan,
    tech: &Tech,
) -> Result<Vec<Ns>, PnrError> {
    let m6 = tech
        .metal_stack
        .by_name("M6")
        .ok_or(PnrError::MissingLayer("M6"))?
        .clone();
    let wire = BufferedWire::on_layer(&m6);
    let mut cu_delays: Vec<(String, Ns)> = Vec::new();
    for cu in floorplan.cus() {
        let dist = floorplan
            .gmcs()
            .map(|g| cu.rect.center_distance(&g.rect))
            .min_by(|a, b| a.value().total_cmp(&b.value()))
            .ok_or(PnrError::MissingPartition("memory_controller"))?;
        cu_delays.push((
            cu.name.clone(),
            wire.delay(dist * ROUTE_DETOUR) + ROUTE_OVERHEAD,
        ));
    }

    let top_id = design.top();
    let top = design.module_mut(top_id);
    let mut delays = Vec::with_capacity(cu_delays.len());
    for (cu_name, delay) in &cu_delays {
        // "cu3" -> path "arb_cu3".
        if let Some(path) = top
            .paths
            .iter_mut()
            .find(|p| p.name == format!("arb_{cu_name}"))
        {
            path.route_delay = *delay;
        }
        delays.push(*delay);
    }
    // The dispatch path runs from the top strip to the farthest CU.
    let max_delay = delays.iter().copied().fold(Ns::ZERO, Ns::max);
    if let Some(path) = top.paths.iter_mut().find(|p| p.name == "dispatch") {
        path.route_delay = max_delay * 0.6;
    }
    Ok(delays)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{build_floorplan, DensityTargets};
    use ggpu_rtl::{generate, GgpuConfig};
    use ggpu_sta::max_frequency;

    fn setup(n: u32) -> (Design, Floorplan, Tech) {
        let d = generate(&GgpuConfig::with_cus(n).unwrap()).unwrap();
        let tech = Tech::l65();
        let fp = build_floorplan(&d, &tech, DensityTargets::default()).unwrap();
        (d, fp, tech)
    }

    #[test]
    fn wirelength_covers_signal_layers_only() {
        let (d, fp, tech) = setup(1);
        let wl = estimate_wirelength(&d, &fp, &tech).unwrap();
        for layer in ["M2", "M3", "M4", "M5", "M6", "M7"] {
            assert!(wl.layer(layer).value() > 0.0, "{layer}");
        }
        assert_eq!(wl.layer("M1").value(), 0.0);
        assert_eq!(wl.layer("M8").value(), 0.0);
    }

    #[test]
    fn one_cu_total_is_table2_magnitude() {
        let (d, fp, tech) = setup(1);
        let wl = estimate_wirelength(&d, &fp, &tech).unwrap();
        // Paper Table II, 1CU@500MHz: 16.1e6 um total over M2-M7.
        let total = wl.total().value();
        assert!(
            (8.0e6..30.0e6).contains(&total),
            "1-CU total wirelength {total}"
        );
    }

    #[test]
    fn eight_cu_has_several_times_more_wire() {
        let (d1, fp1, tech) = setup(1);
        let (d8, fp8, _) = setup(8);
        let w1 = estimate_wirelength(&d1, &fp1, &tech).unwrap().total();
        let w8 = estimate_wirelength(&d8, &fp8, &tech).unwrap().total();
        let ratio = w8 / w1;
        // Paper: 109.8e6 / 16.1e6 = 6.8x.
        assert!((4.0..10.0).contains(&ratio), "8CU/1CU wirelength {ratio}");
    }

    #[test]
    fn m3_carries_the_most_local_wire() {
        let (d, fp, tech) = setup(1);
        let wl = estimate_wirelength(&d, &fp, &tech).unwrap();
        // Matches the Table II ranking for the unoptimized 1-CU design.
        assert!(wl.layer("M3") > wl.layer("M2"));
        assert!(wl.layer("M2") > wl.layer("M6"));
        assert!(wl.layer("M6") > wl.layer("M7"));
    }

    #[test]
    fn annotation_sets_per_cu_route_delays() {
        let (mut d, fp, tech) = setup(8);
        let before = max_frequency(&d, &tech).unwrap().unwrap();
        let delays = annotate_routes(&mut d, &fp, &tech).unwrap();
        assert_eq!(delays.len(), 8);
        // On the *unoptimized* design the memory paths still dominate,
        // so the baseline fmax must not change (the paper's routes only
        // bite on the 667 MHz-optimized 8-CU version).
        let after = max_frequency(&d, &tech).unwrap().unwrap();
        assert!((after.value() - before.value()).abs() < 1e-6);
        // Peripheral CUs are slower than central ones, and the worst
        // route is substantial (multi-millimetre buffered wire).
        let min = delays.iter().cloned().fold(Ns::new(f64::MAX), Ns::min);
        let max = delays.iter().cloned().fold(Ns::ZERO, Ns::max);
        assert!(
            max.value() > 1.5 * min.value(),
            "delay spread {min} .. {max}"
        );
        assert!(max.value() > 0.4, "worst route delay {max}");
        // The annotation landed on the arb paths.
        let top = d.module(d.top());
        assert!(top
            .paths
            .iter()
            .filter(|p| p.name.starts_with("arb_cu"))
            .all(|p| p.route_delay.value() > 0.0));
    }

    #[test]
    fn one_cu_routes_are_short() {
        let (mut d, fp, tech) = setup(1);
        let delays = annotate_routes(&mut d, &fp, &tech).unwrap();
        assert_eq!(delays.len(), 1);
        assert!(
            delays[0].value() < 0.5,
            "1-CU route delay {} should be well under the 667 MHz budget",
            delays[0]
        );
    }
}
