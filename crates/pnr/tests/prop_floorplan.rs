//! Property tests of the physical flow over the generator's whole
//! configuration space: partitions never overlap, macros always land
//! inside their partition, and wirelength grows with the design.
//!
//! The configuration space (cus x gmcs) is small enough to sweep
//! exhaustively, which is strictly stronger than sampling it.

use ggpu_pnr::{build_floorplan, place_and_route, DensityTargets, PnrOptions};
use ggpu_rtl::{generate, GgpuConfig};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;

fn config(cus: u32, gmcs: u32) -> GgpuConfig {
    GgpuConfig {
        compute_units: cus,
        memory_controllers: gmcs,
        ..GgpuConfig::default()
    }
}

#[test]
fn floorplans_are_always_legal() {
    let tech = Tech::l65();
    for cus in 1u32..=8 {
        for gmcs in 1u32..=2 {
            let design = generate(&config(cus, gmcs)).expect("valid config");
            let fp =
                build_floorplan(&design, &tech, DensityTargets::default()).expect("floorplans");
            assert_eq!(fp.cus().count(), cus as usize);
            assert_eq!(fp.gmcs().count(), gmcs as usize);
            for p in &fp.partitions {
                assert!(fp.chip.contains(&p.rect), "{} escapes chip", p.name);
            }
            for (i, a) in fp.partitions.iter().enumerate() {
                for b in fp.partitions.iter().skip(i + 1) {
                    assert!(!a.rect.overlaps(&b.rect), "{} vs {}", a.name, b.name);
                }
            }
        }
    }
}

#[test]
fn placement_and_routing_always_complete_at_500mhz() {
    let tech = Tech::l65();
    for cus in 1u32..=8 {
        for gmcs in 1u32..=2 {
            let design = generate(&config(cus, gmcs)).expect("valid config");
            let layout = place_and_route(&design, &tech, Mhz::new(500.0), PnrOptions::default())
                .expect("flow completes");
            // Every macro of every partition is inside its outline.
            for p in &layout.placements {
                for m in &p.macros {
                    assert!(p.partition.rect.contains(&m.rect), "{}", m.name);
                }
            }
            // The baseline always closes 500 MHz regardless of CU count.
            assert!(layout.meets_timing, "fmax {}", layout.fmax);
            assert!(layout.wirelength.total().value() > 0.0);
            assert_eq!(layout.cu_route_delays.len(), cus as usize);
        }
    }
}

#[test]
fn more_cus_means_more_wire_and_area() {
    let tech = Tech::l65();
    for cus in 1u32..=7 {
        let small = generate(&config(cus, 1)).expect("valid");
        let big = generate(&config(cus + 1, 1)).expect("valid");
        let fp_s = build_floorplan(&small, &tech, DensityTargets::default()).expect("ok");
        let fp_b = build_floorplan(&big, &tech, DensityTargets::default()).expect("ok");
        // Adding a CU fills an empty column slot when the count goes
        // odd -> even, so chip area is non-decreasing (strictly larger
        // whenever a new row is opened).
        assert!(fp_b.chip.area().value() >= fp_s.chip.area().value() - 1e-6);
        let wl_s = ggpu_pnr::estimate_wirelength(&small, &fp_s, &tech)
            .expect("ok")
            .total();
        let wl_b = ggpu_pnr::estimate_wirelength(&big, &fp_b, &tech)
            .expect("ok")
            .total();
        assert!(wl_b.value() > wl_s.value());
    }
}
