//! Property tests of macro placement: both placers produce legal,
//! complete placements over randomized CU geometries (1–64, past the
//! paper's 8-CU ceiling) and solver seeds, and the analytical placer
//! is deterministic — the same design and seed give byte-identical
//! placements regardless of worker-pool size.

use ggpu_pnr::{
    build_floorplan, place_and_route, place_macros_pooled, DensityTargets, PlacedPartition, Placer,
    PnrOptions, Pool, MAX_CELL_UTILIZATION,
};
use ggpu_rtl::{generate, GgpuConfig};
use ggpu_tech::units::Mhz;
use ggpu_tech::Tech;

fn config(cus: u32, gmcs: u32) -> GgpuConfig {
    GgpuConfig {
        compute_units: cus,
        memory_controllers: gmcs,
        allow_extended_cus: cus > 8,
        ..GgpuConfig::default()
    }
}

/// Deterministic test RNG (splitmix64) — no external crates.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Asserts one partition's placement is physically legal: every macro
/// inside the partition outline, no two macros overlapping, std-cell
/// utilization within range, and no macro placed twice.
fn assert_legal(p: &PlacedPartition, ctx: &str) {
    assert!(
        p.utilization <= MAX_CELL_UTILIZATION + 1e-9,
        "{ctx}/{}: utilization {}",
        p.partition.name,
        p.utilization
    );
    let mut names: Vec<&str> = p.macros.iter().map(|m| m.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(
        names.len(),
        p.macros.len(),
        "{ctx}/{}: duplicate macro names",
        p.partition.name
    );
    for m in &p.macros {
        assert!(
            p.partition.rect.contains(&m.rect),
            "{ctx}/{}: {} escapes its partition",
            p.partition.name,
            m.name
        );
    }
    for (i, a) in p.macros.iter().enumerate() {
        for b in p.macros.iter().skip(i + 1) {
            assert!(
                !a.rect.overlaps(&b.rect),
                "{ctx}/{}: {} overlaps {}",
                p.partition.name,
                a.name,
                b.name
            );
        }
    }
}

#[test]
fn both_placers_are_legal_on_random_geometries() {
    let tech = Tech::l65();
    let mut rng = 0x5eed_u64;
    // A fixed ladder covering the interesting sizes plus random fill.
    let mut cu_counts = vec![1, 2, 8, 16, 33, 64];
    for _ in 0..4 {
        cu_counts.push((next(&mut rng) % 64 + 1) as u32);
    }
    for cus in cu_counts {
        let gmcs = (next(&mut rng) % 2 + 1) as u32;
        let design = generate(&config(cus, gmcs)).expect("valid config");
        let fp = build_floorplan(&design, &tech, DensityTargets::default()).expect("floorplan");
        for placer in [Placer::Legacy, Placer::Analytical] {
            let options = PnrOptions {
                placer,
                seed: next(&mut rng),
                ..PnrOptions::default()
            };
            let ctx = format!("{cus}cu/{gmcs}gmc/{placer:?}/seed{}", options.seed);
            let placed = place_macros_pooled(&design, &fp, &tech, &options, Pool::global())
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert_eq!(placed.len(), fp.partitions.len(), "{ctx}");
            let mut total = 0usize;
            for p in &placed {
                assert_legal(p, &ctx);
                total += p.macros.len();
            }
            assert!(total > 0, "{ctx}: nothing placed");
            // Both placers place the same macro population.
            if placer == Placer::Analytical {
                let legacy = place_macros_pooled(
                    &design,
                    &fp,
                    &tech,
                    &PnrOptions::default(),
                    Pool::global(),
                )
                .expect("legacy placement");
                let count =
                    |ps: &[PlacedPartition]| -> usize { ps.iter().map(|p| p.macros.len()).sum() };
                assert_eq!(count(&placed), count(&legacy), "{ctx}");
            }
        }
    }
}

#[test]
fn analytical_placement_is_deterministic_across_thread_counts() {
    let tech = Tech::l65();
    for (cus, seed) in [(2u32, 7u64), (8, 42), (16, 1234)] {
        let design = generate(&config(cus, 1)).expect("valid config");
        let fp = build_floorplan(&design, &tech, DensityTargets::default()).expect("floorplan");
        let options = PnrOptions {
            placer: Placer::Analytical,
            seed,
            ..PnrOptions::default()
        };
        let single = Pool::new(1);
        let quad = Pool::new(4);
        let a = place_macros_pooled(&design, &fp, &tech, &options, &single).expect("1 thread");
        let b = place_macros_pooled(&design, &fp, &tech, &options, &quad).expect("4 threads");
        assert_eq!(
            a, b,
            "{cus} CUs seed {seed}: thread count changed placement"
        );
        // And stable across repeated runs on the same pool.
        let c = place_macros_pooled(&design, &fp, &tech, &options, &quad).expect("rerun");
        assert_eq!(b, c, "{cus} CUs seed {seed}: rerun changed placement");
        // A different seed is allowed to (and generally does) differ,
        // but must stay legal.
        let other = PnrOptions {
            seed: seed + 1,
            ..options
        };
        for p in &place_macros_pooled(&design, &fp, &tech, &other, &quad).expect("other seed") {
            assert_legal(p, "reseeded");
        }
    }
}

#[test]
fn extended_geometries_flow_through_timing() {
    // The DSE-scale acceptance: 16-, 32- and 64-CU machines produce
    // legal, timing-evaluated layouts under the analytical placer.
    let tech = Tech::l65();
    for cus in [16u32, 32, 64] {
        let design = generate(&config(cus, 2)).expect("valid config");
        let layout = place_and_route(
            &design,
            &tech,
            Mhz::new(500.0),
            PnrOptions {
                placer: Placer::Analytical,
                ..PnrOptions::default()
            },
        )
        .expect("flow completes");
        assert_eq!(layout.placer, Placer::Analytical);
        assert_eq!(layout.cu_route_delays.len(), cus as usize);
        for p in &layout.placements {
            assert_legal(p, &format!("{cus}cu"));
        }
        // Timing was genuinely evaluated: a finite fmax and a
        // consistent verdict.
        assert!(layout.fmax.value().is_finite());
        assert_eq!(
            layout.meets_timing,
            layout.fmax.value() + 1e-9 >= layout.target.value(),
            "{cus} CUs: verdict inconsistent with fmax {}",
            layout.fmax
        );
    }
}
