//! Crash-safe persistence primitives for resumable campaigns.
//!
//! Extracted from the fault crate's checkpoint runner (PR 5) and
//! generalized so every long-running flow — SEU campaigns, DSE sweep
//! campaigns, future service state — shares one audited implementation
//! of the two patterns that make `kill -9` recoverable:
//!
//! * [`Journal`] — an append-only *write-ahead* line file. The first
//!   line is a caller-supplied header that fingerprints the campaign;
//!   every completed unit of work appends exactly one `\n`-terminated
//!   record line (synced with `fsync` by default). Opening an existing
//!   journal validates the header, returns every *complete* record
//!   line, and **repairs a torn tail**: a final line without a
//!   trailing newline is the signature of a process killed mid-write,
//!   so it is truncated away (the unit of work it described simply
//!   re-runs) instead of corrupting subsequent appends.
//! * [`write_snapshot`] — atomic whole-state replacement: write to a
//!   `.tmp` sibling, `fsync`, then `rename` over the target. A reader
//!   (or a crash at any byte) sees either the old state or the new
//!   state, never a mix.
//!
//! Every failure carries the path and the operation that failed
//! ([`WalError`]), so campaign-level errors can report *which* file
//! broke and *how* instead of a bare I/O message.
//!
//! # Crash model
//!
//! The guarantees target the POSIX crash model the property suites
//! simulate by truncating files at arbitrary byte offsets: appends may
//! tear mid-line (repaired on open), a header may tear before its
//! newline (the journal restarts empty — nothing after a torn header
//! can exist, since records are only appended after the header is
//! synced), and snapshots are all-or-nothing via `rename`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The file operation a [`WalError`] failed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// Creating the file (first open of a fresh journal).
    Create,
    /// Opening an existing file for append.
    Open,
    /// Reading the file's contents.
    Read,
    /// Appending a record line.
    Append,
    /// Flushing buffered writes to the OS / device (`fsync`).
    Sync,
    /// Truncating a torn tail during open-time repair.
    Repair,
    /// Renaming a snapshot's temporary file over the target.
    Rename,
    /// Removing a file.
    Remove,
}

impl WalOp {
    /// Stable lowercase name for reports and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            WalOp::Create => "create",
            WalOp::Open => "open",
            WalOp::Read => "read",
            WalOp::Append => "append",
            WalOp::Sync => "sync",
            WalOp::Repair => "repair",
            WalOp::Rename => "rename",
            WalOp::Remove => "remove",
        }
    }
}

impl fmt::Display for WalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A failed journal/snapshot operation, carrying the offending path
/// and the operation so campaign errors stay actionable.
#[derive(Debug)]
pub struct WalError {
    /// The file the operation targeted.
    pub path: PathBuf,
    /// What was being done.
    pub op: WalOp,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl WalError {
    fn new(path: &Path, op: WalOp, source: std::io::Error) -> Self {
        Self {
            path: path.to_path_buf(),
            op,
            source,
        }
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} failed on {}: {}",
            self.op,
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// What [`Journal::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalState {
    /// The file did not exist (or held only a torn header); a fresh
    /// header was written.
    Fresh,
    /// The file existed with a matching header; records were
    /// recovered.
    Resumed,
}

/// An append-only write-ahead line journal with a validated header.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    sync: bool,
}

impl Journal {
    /// Opens (or creates) the journal at `path` with the given
    /// campaign `header` line (no trailing newline).
    ///
    /// Returns the journal, the complete record lines recovered from
    /// an existing file (empty for a fresh one) and whether the open
    /// was fresh or a resume. A torn final record line is truncated
    /// away; a torn header (a file with no newline at all) is treated
    /// as a fresh journal, because records are only ever appended
    /// after the header line was synced.
    ///
    /// # Errors
    ///
    /// Returns [`WalError`] on I/O failure, or a `Header` mismatch
    /// (as an [`std::io::ErrorKind::InvalidData`] error) when the file
    /// carries a *complete* header for a different campaign — that is
    /// a caller mistake, not a crash artifact, so it is never silently
    /// overwritten.
    pub fn open(path: &Path, header: &str) -> Result<(Self, Vec<String>, JournalState), WalError> {
        if !path.exists() {
            return Ok((Self::create(path, header)?, Vec::new(), JournalState::Fresh));
        }
        let bytes = std::fs::read(path).map_err(|e| WalError::new(path, WalOp::Read, e))?;
        // A torn header: no newline anywhere. Nothing can follow it,
        // so restart the journal from scratch.
        let Some(header_end) = bytes.iter().position(|&b| b == b'\n') else {
            return Ok((Self::create(path, header)?, Vec::new(), JournalState::Fresh));
        };
        let found = String::from_utf8_lossy(&bytes[..header_end]);
        if found != header {
            return Err(WalError::new(
                path,
                WalOp::Open,
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("journal header {found:?} does not match campaign {header:?}"),
                ),
            ));
        }
        // Complete records end in '\n'; anything after the last
        // newline is a torn tail from a killed append.
        let valid_len = bytes
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(bytes.len(), |p| p + 1);
        let records = String::from_utf8_lossy(&bytes[header_end + 1..valid_len])
            .lines()
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect();
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| WalError::new(path, WalOp::Open, e))?;
        if valid_len < bytes.len() {
            file.set_len(valid_len as u64)
                .map_err(|e| WalError::new(path, WalOp::Repair, e))?;
        }
        Ok((
            Self {
                path: path.to_path_buf(),
                file,
                sync: true,
            },
            records,
            JournalState::Resumed,
        ))
    }

    fn create(path: &Path, header: &str) -> Result<Self, WalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| WalError::new(path, WalOp::Create, e))?;
        writeln!(file, "{header}").map_err(|e| WalError::new(path, WalOp::Append, e))?;
        file.sync_data()
            .map_err(|e| WalError::new(path, WalOp::Sync, e))?;
        // Reopen in append mode so every future write lands at the
        // file's end regardless of truncations (`reset_to_header`).
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| WalError::new(path, WalOp::Open, e))?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            sync: true,
        })
    }

    /// Disables the per-append `fsync` (for callers whose record rate
    /// makes the sync dominate and who accept losing the OS-buffered
    /// tail on power failure; a process `kill -9` still loses
    /// nothing).
    pub fn with_sync(mut self, sync: bool) -> Self {
        self.sync = sync;
        self
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record line (must not contain `\n`) and syncs it.
    ///
    /// # Errors
    ///
    /// Returns [`WalError`] on write or sync failure.
    pub fn append(&mut self, line: &str) -> Result<(), WalError> {
        debug_assert!(!line.contains('\n'), "journal records are single lines");
        writeln!(self.file, "{line}").map_err(|e| WalError::new(&self.path, WalOp::Append, e))?;
        if self.sync {
            self.file
                .sync_data()
                .map_err(|e| WalError::new(&self.path, WalOp::Sync, e))?;
        }
        Ok(())
    }

    /// Truncates the journal back to just its header (used after its
    /// records were folded into a snapshot). The truncation is synced.
    ///
    /// # Errors
    ///
    /// Returns [`WalError`] on I/O failure.
    pub fn reset_to_header(&mut self, header: &str) -> Result<(), WalError> {
        let len = header.len() as u64 + 1;
        self.file
            .set_len(len)
            .map_err(|e| WalError::new(&self.path, WalOp::Repair, e))?;
        self.file
            .sync_data()
            .map_err(|e| WalError::new(&self.path, WalOp::Sync, e))?;
        Ok(())
    }
}

/// Atomically replaces `path` with `contents`: the bytes are written
/// to a `.tmp` sibling, synced, and renamed over the target. A crash
/// at any point leaves either the previous snapshot or the new one.
///
/// # Errors
///
/// Returns [`WalError`] on I/O failure.
pub fn write_snapshot(path: &Path, contents: &str) -> Result<(), WalError> {
    let tmp = tmp_sibling(path);
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| WalError::new(&tmp, WalOp::Create, e))?;
        file.write_all(contents.as_bytes())
            .map_err(|e| WalError::new(&tmp, WalOp::Append, e))?;
        file.sync_data()
            .map_err(|e| WalError::new(&tmp, WalOp::Sync, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| WalError::new(path, WalOp::Rename, e))
}

/// Reads a snapshot written by [`write_snapshot`]. Returns `None` when
/// no snapshot exists (including when only a torn `.tmp` survives — a
/// crash before the rename means the snapshot never happened).
///
/// # Errors
///
/// Returns [`WalError`] if the snapshot exists but cannot be read.
pub fn read_snapshot(path: &Path) -> Result<Option<String>, WalError> {
    if !path.exists() {
        return Ok(None);
    }
    std::fs::read_to_string(path)
        .map(Some)
        .map_err(|e| WalError::new(path, WalOp::Read, e))
}

/// The temporary sibling `write_snapshot` stages into.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("ggpu_wal_{}_{name}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn fresh_journal_writes_header_and_records() {
        let path = scratch("fresh");
        let (mut j, records, state) = Journal::open(&path, "hdr v1 seed=7").unwrap();
        assert_eq!(state, JournalState::Fresh);
        assert!(records.is_empty());
        j.append("r 1").unwrap();
        j.append("r 2").unwrap();
        drop(j);
        let (_, records, state) = Journal::open(&path, "hdr v1 seed=7").unwrap();
        assert_eq!(state, JournalState::Resumed);
        assert_eq!(records, vec!["r 1", "r 2"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_repaired_and_appends_stay_whole() {
        let path = scratch("torn");
        {
            let (mut j, _, _) = Journal::open(&path, "hdr").unwrap();
            j.append("complete 1").unwrap();
            j.append("complete 2").unwrap();
        }
        // Simulate a kill mid-append: chop the file inside the last
        // line.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let (mut j, records, state) = Journal::open(&path, "hdr").unwrap();
        assert_eq!(state, JournalState::Resumed);
        assert_eq!(records, vec!["complete 1"], "torn line dropped");
        j.append("complete 2 again").unwrap();
        drop(j);
        let (_, records, _) = Journal::open(&path, "hdr").unwrap();
        assert_eq!(records, vec!["complete 1", "complete 2 again"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_header_restarts_fresh() {
        let path = scratch("torn_header");
        std::fs::write(&path, "hdr v1 se").unwrap();
        let (_, records, state) = Journal::open(&path, "hdr v1 seed=9").unwrap();
        assert_eq!(state, JournalState::Fresh);
        assert!(records.is_empty());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "hdr v1 seed=9\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn complete_foreign_header_is_refused() {
        let path = scratch("foreign");
        std::fs::write(&path, "other campaign\nr 1\n").unwrap();
        let err = Journal::open(&path, "mine").unwrap_err();
        assert_eq!(err.op, WalOp::Open);
        assert_eq!(err.path, path);
        assert!(err.to_string().contains("does not match"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_round_trips_and_ignores_torn_tmp() {
        let path = scratch("snap");
        assert_eq!(read_snapshot(&path).unwrap(), None);
        write_snapshot(&path, "state A\n").unwrap();
        assert_eq!(read_snapshot(&path).unwrap().as_deref(), Some("state A\n"));
        write_snapshot(&path, "state B\n").unwrap();
        assert_eq!(read_snapshot(&path).unwrap().as_deref(), Some("state B\n"));
        // A crash mid-snapshot leaves only a .tmp; the real path still
        // reads the previous state.
        std::fs::write(tmp_sibling(&path), "torn").unwrap();
        assert_eq!(read_snapshot(&path).unwrap().as_deref(), Some("state B\n"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(tmp_sibling(&path));
    }

    #[test]
    fn reset_to_header_drops_records() {
        let path = scratch("reset");
        let header = "hdr compact";
        let (mut j, _, _) = Journal::open(&path, header).unwrap();
        j.append("old 1").unwrap();
        j.append("old 2").unwrap();
        j.reset_to_header(header).unwrap();
        j.append("new 1").unwrap();
        drop(j);
        let (_, records, _) = Journal::open(&path, header).unwrap();
        assert_eq!(records, vec!["new 1"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn errors_carry_path_and_operation() {
        let dir = std::env::temp_dir().join(format!("ggpu_wal_dir_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Opening a directory as a journal fails with a typed error.
        let err = Journal::open(&dir, "hdr").unwrap_err();
        assert_eq!(err.path, dir);
        assert!(matches!(err.op, WalOp::Read | WalOp::Create));
        assert!(err.to_string().contains(&dir.display().to_string()));
        let _ = std::fs::remove_dir(&dir);
    }
}
