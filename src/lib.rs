//! Facade crate re-exporting the whole G-GPU / GPUPlanner reproduction.
pub use ggpu_isa as isa;
pub use ggpu_kernels as kernels;
pub use ggpu_lint as lint;
pub use ggpu_netlist as netlist;
pub use ggpu_pnr as pnr;
pub use ggpu_riscv as riscv;
pub use ggpu_rtl as rtl;
pub use ggpu_simt as simt;
pub use ggpu_sta as sta;
pub use ggpu_synth as synth;
pub use ggpu_tech as tech;
pub use gpuplanner as planner;

/// The two independently parametric cache-capacity defaults, surfaced
/// as one documented pair.
///
/// DESIGN.md ("Known modelling inconsistencies"): the paper never
/// states the evaluated cache capacity. The Table-I *area* calibration
/// wants 64 KiB of cache-data macros (the RTL generator's default,
/// [`rtl::GgpuConfig::default`]`.cache_kib`), while the Table-III
/// *cycle* calibration wants the 32 KiB the performance simulator
/// defaults to ([`simt::CacheConfig::default`]`.size_kib`) — with
/// 64 KiB, xcorr's working set would fit and the kernel ordering would
/// flatten. Both models are correct against their own table; the
/// discrepancy is a property of the paper's under-specification, so it
/// is *recorded* here rather than silently resolved.
///
/// These constants are the single source of truth for that recorded
/// state: a cross-check test fails if either subsystem default drifts
/// away from its documented value, forcing any future change to be a
/// deliberate, documented decision.
pub struct CacheSizing;

impl CacheSizing {
    /// The RTL/area model's cache capacity (KiB): what Table I's
    /// macro-count and area calibration assumes.
    pub const AREA_MODEL_KIB: u32 = 64;

    /// The performance simulator's cache capacity (KiB): what
    /// Table III's cycle calibration assumes.
    pub const CYCLE_MODEL_KIB: u32 = 32;

    /// `true` while the documented inconsistency still stands. If the
    /// models are ever unified this goes to `false` and DESIGN.md's
    /// "Known modelling inconsistencies" entry must be updated in the
    /// same change.
    pub const MODELS_DISAGREE: bool = Self::AREA_MODEL_KIB != Self::CYCLE_MODEL_KIB;
}
