//! Facade crate re-exporting the whole G-GPU / GPUPlanner reproduction.
pub use ggpu_isa as isa;
pub use ggpu_kernels as kernels;
pub use ggpu_lint as lint;
pub use ggpu_netlist as netlist;
pub use ggpu_pnr as pnr;
pub use ggpu_riscv as riscv;
pub use ggpu_rtl as rtl;
pub use ggpu_simt as simt;
pub use ggpu_sta as sta;
pub use ggpu_synth as synth;
pub use ggpu_tech as tech;
pub use gpuplanner as planner;
