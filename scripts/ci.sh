#!/usr/bin/env bash
# Tier-1 CI entry point. Fully offline: the workspace has no external
# dependencies, so every step below runs without network access.
#
#   scripts/ci.sh          # the full gate
#   GGPU_THREADS=1 scripts/ci.sh   # force single-threaded sweeps
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt (check) =="
cargo fmt --all -- --check

echo "== clippy (-D warnings, all targets) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== lint (static kernel verifier, warnings are denials) =="
# Gates on the shipped kernels AND the generated 1/8-CU netlists; the
# command fails (non-zero exit) on any deny-level finding and prints a
# one-line summary ("N programs, M denials") as its last line.
cargo run -q -p ggpu-lint -- --all-kernels --design 1 --design 8 --deny warn

echo "== build (release) =="
cargo build --workspace --release

echo "== test (workspace) =="
# NOTE: the root manifest is both the workspace and the `g-gpu` facade
# package, so a bare `cargo test` would only run the facade's tests.
cargo test --workspace -q

echo "== smoke (event-driven simulator, ~2 s) =="
cargo run --release --example accelerator_vs_cpu 512

echo "== property suite (transactional transform engine, release) =="
# The journal/CoW bit-identity claims, re-run under the optimizer: the
# randomized journal-vs-clone equivalence and revert-fidelity
# properties, plus the beam-vs-greedy acceptance across all 12 Table-I
# versions. (The debug-mode run is part of the workspace tests above.)
cargo test --release -q -p gpuplanner --test prop_journal_equiv --test beam_vs_greedy

echo "== smoke (STA perf baseline, 1-CU scenarios) =="
# Asserts that the incremental engine and the legacy engine produce
# bit-identical plans/fmax while it measures; deterministic and offline.
# Wall-clock numbers are informational in CI — the tracked baseline is
# the checked-in BENCH_sta.json regenerated via the full (non-smoke) run.
# Since the transactional refactor this also runs the clone-vs-CoW-vs-
# journal engine comparison, which *asserts* zero clones per DSE
# candidate on the journal path.
cargo run --release -p ggpu-bench --bin sta_bench -- --smoke --out target/BENCH_sta_smoke.json

echo "== smoke (analytical placer quality + incremental PnR) =="
# Legacy vs analytical HPWL on shared floorplans (asserts the
# analytical placer wins at 8 CUs) and the scratch-vs-incremental
# comparison (asserts the one-dirty-partition delta path is >= 5x
# faster while producing bit-identical layouts). Tracked baseline is
# the checked-in BENCH_pnr.json from the full (non-smoke) run.
cargo run --release -p ggpu-bench --bin pnr_bench -- --smoke --out target/BENCH_pnr_smoke.json

echo "== smoke (transform engine baseline) =="
# Journal replay vs deep-clone replay, revert-walk fidelity and the
# beam-width comparison; the tracked baseline is BENCH_journal.json
# from the full run.
cargo run --release -p ggpu-bench --bin journal_bench -- --smoke --out target/BENCH_journal_smoke.json

echo "== smoke (seeded fault campaign, 64 injections/policy) =="
# Offline SEU campaign on the 1-CU design (copy kernel, unprotected /
# parity / SEC-DED policies). The binary asserts determinism as it
# measures: a single-threaded replay of the first scenario must be
# byte-identical to the parallel run. Tracked baseline is the
# checked-in BENCH_fault.json from the full (non-smoke) run.
cargo run --release -p ggpu-bench --bin fault_bench -- --smoke --out target/BENCH_fault_smoke.json

echo "== smoke (SIMT backend agreement + throughput) =="
# Runs every shipped kernel on both execution backends (scalar
# reference and SoA fast path) and *asserts* their RunStats are
# bit-identical before reporting host throughput — this is the CI
# gate for the data-oriented engine. Tracked baseline is the
# checked-in BENCH_simt.json from the full (non-smoke) run.
cargo run --release -p ggpu-bench --bin simt_bench -- --smoke --out target/BENCH_simt_smoke.json

echo "== smoke (memory geometry: conflict profile + banking co-opt) =="
# Profiles every shipped kernel under ideal vs banked LRAM models
# (asserting banking never changes results and only mat_mul_local
# pays conflicts) and runs the planner's banking co-optimization,
# asserting the DSE chooses a banked plan that meets timing and beats
# the unbanked plan on kernel runtime. Tracked baseline is the
# checked-in BENCH_mem.json from the full (non-smoke) run.
cargo run --release -p ggpu-bench --bin mem_bench -- --smoke --out target/BENCH_mem_smoke.json

echo "== smoke (static analyzer cost vs syntactic baseline) =="
# Times the abstract interpreter (verify_program, K010-K012) against
# the PR-2 syntactic pass (verify_program_classic) on the 8 shipped
# kernels, asserting both leave every kernel deny-free. Tracked
# baseline is the checked-in BENCH_lint.json from the full run.
cargo run --release -p ggpu-bench --bin lint_bench -- --smoke --out target/BENCH_lint_smoke.json

echo "== smoke (flow supervision overhead + chaos zero-loss) =="
# Runs the supervised pipeline (verify -> plan -> implement) against
# the identical unsupervised stage sequence, asserting datasheets stay
# byte-identical, supervision overhead stays under 2 %, and a seeded
# chaos sweep loses or corrupts nothing. Tracked baseline is the
# checked-in BENCH_flow.json from the full (12-spec, 200-campaign) run.
cargo run --release -p ggpu-bench --bin flow_bench -- --smoke --out target/BENCH_flow_smoke.json

echo "== ci green =="
