//! End-to-end integration of the whole GPUPlanner flow: specification
//! → exploration → logic synthesis → physical synthesis, reproducing
//! the paper's four physically implemented versions.

use g_gpu::planner::{physical_versions, GpuPlanner, Specification};
use g_gpu::tech::units::Mhz;
use g_gpu::tech::Tech;

#[test]
fn the_four_physical_versions_behave_like_the_paper() {
    let planner = GpuPlanner::new(Tech::l65());
    let results: Vec<_> = planner.run(&physical_versions());
    assert_eq!(results.len(), 4);
    let implemented: Vec<_> = results
        .into_iter()
        .map(|r| r.expect("all four versions implement"))
        .collect();

    // 1cu@500, 1cu@667 and 8cu@500 close timing at the requested clock.
    for (i, name) in [(0, "1cu@500"), (1, "1cu@667"), (2, "8cu@500")] {
        assert!(
            implemented[i].within_spec,
            "{name} must close (achieved {})",
            implemented[i].achieved_clock()
        );
    }
    // 8cu@667 fails on the peripheral-CU routes and lands near 600 MHz.
    let v8 = &implemented[3];
    assert!(!v8.within_spec);
    let achieved = v8.achieved_clock().value();
    assert!(
        (540.0..660.0).contains(&achieved),
        "8cu@667 achieved {achieved}, paper: 600"
    );
    // The failing paths are the top-level arbitration routes.
    let crit = v8.layout.post_route.critical().expect("paths exist");
    assert!(
        crit.path.starts_with("arb_cu"),
        "critical post-route path is {}, expected an arb route",
        crit.path
    );
}

#[test]
fn eight_cu_layout_has_more_wire_on_every_layer_than_one_cu() {
    let planner = GpuPlanner::new(Tech::l65());
    let one = planner
        .implement(
            &planner
                .plan(&Specification::new(1, Mhz::new(500.0)))
                .unwrap(),
        )
        .unwrap();
    let eight = planner
        .implement(
            &planner
                .plan(&Specification::new(8, Mhz::new(500.0)))
                .unwrap(),
        )
        .unwrap();
    for layer in ["M2", "M3", "M4", "M5", "M6", "M7"] {
        assert!(
            eight.layout.wirelength.layer(layer) > one.layout.wirelength.layer(layer),
            "{layer}"
        );
    }
}

#[test]
fn optimized_version_has_more_macros_and_area_but_same_ffs_modulo_pipelines() {
    let planner = GpuPlanner::new(Tech::l65());
    let base = planner
        .plan(&Specification::new(1, Mhz::new(500.0)))
        .unwrap();
    let fast = planner
        .plan(&Specification::new(1, Mhz::new(667.0)))
        .unwrap();
    assert!(fast.synthesis.stats.macro_count > base.synthesis.stats.macro_count);
    assert!(fast.synthesis.stats.total_area() > base.synthesis.stats.total_area());
    // FF delta is exactly the inserted pipeline registers.
    let delta = fast.synthesis.stats.ff_cells - base.synthesis.stats.ff_cells;
    let pipelines = fast.plan.pipelines.len() as u64;
    assert_eq!(delta, pipelines * g_gpu::synth::PIPELINE_WIDTH_BITS);
}

#[test]
fn rebuilt_design_synthesizes_identically() {
    let planner = GpuPlanner::new(Tech::l65());
    let spec = Specification::new(2, Mhz::new(590.0));
    let planned = planner.plan(&spec).unwrap();
    let rebuilt = planner.rebuild(&spec, &planned.plan).unwrap();
    let report = g_gpu::synth::synthesize(&rebuilt, planner.tech(), spec.frequency).unwrap();
    assert_eq!(report.stats, planned.synthesis.stats);
    assert_eq!(report.meets_timing, planned.synthesis.meets_timing);
}

#[test]
fn power_ceiling_flags_hot_versions() {
    let planner = GpuPlanner::new(Tech::l65());
    // An 8-CU version dissipates over 10 W; a 5 W ceiling must fail.
    let spec = Specification::new(8, Mhz::new(500.0)).with_max_power_w(5.0);
    let implemented = planner.implement(&planner.plan(&spec).unwrap()).unwrap();
    assert!(!implemented.within_spec);
    // The same version with a generous ceiling passes.
    let spec_ok = Specification::new(8, Mhz::new(500.0)).with_max_power_w(50.0);
    let implemented_ok = planner.implement(&planner.plan(&spec_ok).unwrap()).unwrap();
    assert!(implemented_ok.within_spec);
}

#[test]
fn replicating_the_memory_controller_rescues_8cu_at_667mhz() {
    // The paper's future-work proposal, implemented: "replicating the
    // general memory controller, shortening the distance between the
    // peripheral CUs". With two controller replicas the 8-CU design
    // must close a higher clock than with one.
    let planner = GpuPlanner::new(Tech::l65());
    let single = planner
        .implement(
            &planner
                .plan(&Specification::new(8, Mhz::new(667.0)))
                .unwrap(),
        )
        .unwrap();
    let spec2 = Specification::new(8, Mhz::new(667.0)).with_memory_controllers(2);
    let doubled = planner.implement(&planner.plan(&spec2).unwrap()).unwrap();
    assert!(!single.within_spec, "single controller caps out");
    assert!(
        doubled.achieved_clock().value() > single.achieved_clock().value() + 20.0,
        "replication must shorten the worst routes: {} vs {}",
        doubled.achieved_clock(),
        single.achieved_clock()
    );
    // The fix costs area: a second controller's macros and logic.
    let area_1 = single.planned.synthesis.stats.total_area();
    let area_2 = doubled.planned.synthesis.stats.total_area();
    assert!(area_2 > area_1);
}
