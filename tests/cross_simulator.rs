//! Cross-simulator agreement: every benchmark kernel must produce the
//! same output on the SIMT accelerator, the RISC-V baseline, and the
//! golden Rust reference, across awkward grid shapes (partial
//! wavefronts, partial workgroups, single item).

use g_gpu::kernels::all;

#[test]
fn kernels_agree_across_simulators_at_awkward_sizes() {
    // 4: below one wavefront; 64: exactly one; 68: partial second WF;
    // 260: partial workgroup spillover.
    for n in [4u32, 64, 68, 260] {
        for bench in all() {
            bench
                .run_gpu(n, 1)
                .unwrap_or_else(|e| panic!("{} n={n} gpu 1cu: {e}", bench.name));
            bench
                .run_gpu(n, 3)
                .unwrap_or_else(|e| panic!("{} n={n} gpu 3cu: {e}", bench.name));
            bench
                .run_riscv(n)
                .unwrap_or_else(|e| panic!("{} n={n} riscv: {e}", bench.name));
        }
    }
}

#[test]
fn single_item_grids_work() {
    for bench in all() {
        bench
            .run_gpu(1, 1)
            .unwrap_or_else(|e| panic!("{} n=1: {e}", bench.name));
    }
}

#[test]
fn cycle_counts_are_deterministic() {
    let bench = all()[2]; // vec_mul
    let a = bench.run_gpu(512, 2).unwrap();
    let b = bench.run_gpu(512, 2).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.mem, b.mem);
}

#[test]
fn gpu_cycle_counts_scale_down_with_cus_for_parallel_kernels() {
    for bench in all()
        .iter()
        .filter(|b| matches!(b.name, "mat_mul" | "fir" | "parallel_sel"))
    {
        let c1 = bench.run_gpu(1024, 1).unwrap().cycles;
        let c4 = bench.run_gpu(1024, 4).unwrap().cycles;
        assert!(
            c4 < c1,
            "{}: 4 CUs ({c4}) must beat 1 CU ({c1})",
            bench.name
        );
    }
}

#[test]
fn divergent_kernels_issue_more_than_their_lane_ops_imply() {
    // parallel_sel branches per element: its vector-instruction count
    // per lane-op must exceed the branchless copy kernel's.
    let sel = all()[6].run_gpu(512, 1).unwrap();
    let copy = all()[1].run_gpu(512, 1).unwrap();
    let sel_ratio = sel.vector_instructions as f64 / sel.lane_ops as f64;
    let copy_ratio = copy.vector_instructions as f64 / copy.lane_ops as f64;
    assert!(
        sel_ratio > copy_ratio,
        "divergence must fragment issues: {sel_ratio:.4} vs {copy_ratio:.4}"
    );
}
