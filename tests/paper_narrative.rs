//! Assertions for the paper's §III–§IV narrative claims, checked
//! against the reproduction as integration tests.

use g_gpu::netlist::stats::design_stats;
use g_gpu::planner::{advise, Advice, GpuPlanner, Specification};
use g_gpu::rtl::{generate, generate_riscv, GgpuConfig, RiscvConfig};
use g_gpu::sta::{analyze, max_frequency};
use g_gpu::tech::units::Mhz;
use g_gpu::tech::Tech;

/// "For the logical synthesis, the value found for the standard
/// version is 500MHz. The G-GPU has a similar performance across
/// versions with different numbers of CUs because the CU itself is
/// the bottleneck."
#[test]
fn baseline_fmax_is_500mhz_for_every_cu_count() {
    let tech = Tech::l65();
    let mut fmaxes = Vec::new();
    for n in [1u32, 2, 4, 8] {
        let d = generate(&GgpuConfig::with_cus(n).unwrap()).unwrap();
        let fmax = max_frequency(&d, &tech).unwrap().unwrap();
        assert!(
            (490.0..515.0).contains(&fmax.value()),
            "{n} CU baseline fmax {fmax}"
        );
        fmaxes.push(fmax.value());
    }
    let spread = fmaxes.iter().cloned().fold(0.0f64, f64::max)
        - fmaxes.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 1.0, "fmax must not depend on the CU count");
}

/// "The critical path for the version without any optimization has
/// its starting point at a memory block. Also, the critical path was
/// found inside the CU partition."
#[test]
fn unoptimized_critical_path_starts_at_a_memory_inside_the_cu() {
    let tech = Tech::l65();
    let d = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
    let report = analyze(&d, &tech, Mhz::new(500.0)).unwrap();
    let crit = report.critical().unwrap();
    assert!(crit.is_memory_launched());
    assert!(
        crit.module == "processing_element" || crit.module == "compute_unit",
        "critical path in {}, expected the CU partition",
        crit.module
    );
}

/// The frequency map recommends memory division first (the paper's
/// primary strategy), and pipelines only once the critical path is
/// pure logic.
#[test]
fn map_divides_memories_before_pipelining() {
    let tech = Tech::l65();
    let planner = GpuPlanner::new(tech.clone());
    let version = planner
        .plan(&Specification::new(1, Mhz::new(667.0)))
        .unwrap();
    // Replay the trace: every pipeline insertion must come after at
    // least one division.
    let first_division = version
        .trace
        .iter()
        .position(|t| t.starts_with("divide"))
        .expect("at least one division");
    let first_pipeline = version.trace.iter().position(|t| t.starts_with("pipeline"));
    if let Some(p) = first_pipeline {
        assert!(first_division < p, "trace: {:?}", version.trace);
    }
    // And the first advice on the fresh design is a division.
    let base = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
    assert!(matches!(
        advise(&base, &tech, Mhz::new(667.0)).unwrap(),
        Advice::DivideMemory { .. }
    ));
}

/// "In terms of area, the G-GPU size grows linearly with the number
/// of CUs."
#[test]
fn area_grows_linearly_in_cus() {
    let tech = Tech::l65();
    let areas: Vec<f64> = [1u32, 2, 4, 8]
        .iter()
        .map(|&n| {
            let d = generate(&GgpuConfig::with_cus(n).unwrap()).unwrap();
            design_stats(&d, &tech).unwrap().total_area().to_mm2()
        })
        .collect();
    // Fit: per-CU increment must be consistent within 10 %.
    let inc1 = areas[1] - areas[0];
    let inc4 = (areas[3] - areas[2]) / 4.0;
    assert!(
        (inc1 - inc4).abs() / inc1 < 0.10,
        "per-CU increments {inc1:.2} vs {inc4:.2} mm2"
    );
}

/// Fig. 6's denominators: "G-GPU with 1 CU has an area that is 6.5
/// times larger than the RISC-V... 8 CUs... 41 times bigger."
#[test]
fn area_ratios_vs_riscv_match_fig6() {
    let tech = Tech::l65();
    let riscv = design_stats(&generate_riscv(&RiscvConfig::default()), &tech)
        .unwrap()
        .total_area();
    let r = |n: u32| {
        let d = generate(&GgpuConfig::with_cus(n).unwrap()).unwrap();
        design_stats(&d, &tech).unwrap().total_area() / riscv
    };
    let r1 = r(1);
    let r8 = r(8);
    assert!((5.0..8.5).contains(&r1), "1 CU ratio {r1:.1} (paper 6.5)");
    assert!((32.0..48.0).contains(&r8), "8 CU ratio {r8:.1} (paper 41)");
}

/// Future work implemented: the generator scales beyond 8 CUs when
/// explicitly opted in, and the flow still closes timing at 500 MHz.
#[test]
fn extended_cu_counts_flow_through_synthesis() {
    let tech = Tech::l65();
    let cfg = GgpuConfig {
        compute_units: 12,
        allow_extended_cus: true,
        ..GgpuConfig::default()
    };
    let d = generate(&cfg).unwrap();
    let report = g_gpu::synth::synthesize(&d, &tech, Mhz::new(500.0)).unwrap();
    assert!(report.meets_timing);
    assert_eq!(report.stats.macro_count, 42 * 12 + 9);
}

/// §IV: "Employing our strategy for other technologies would result in
/// different PPA ratios... the points of optimization would be
/// somewhat the same." At a slow sign-off corner the same map applies
/// but has to work harder for the same frequency.
#[test]
fn slow_corner_needs_a_bigger_recipe_for_the_same_target() {
    use g_gpu::tech::Corner;
    let tt = GpuPlanner::new(Tech::l65());
    let ss = GpuPlanner::new(Corner::SlowCold.apply(&Tech::l65()));
    let spec = Specification::new(1, Mhz::new(590.0));
    let plan_tt = tt.plan(&spec).unwrap();
    let plan_ss = ss.plan(&spec).unwrap();
    assert!(
        plan_ss.synthesis.meets_timing,
        "590 is still reachable at ss"
    );
    let work = |p: &g_gpu::planner::PlannedVersion| {
        p.plan
            .divisions
            .values()
            .map(|f| *f as usize)
            .sum::<usize>()
            + p.plan.pipelines.len()
    };
    assert!(
        work(&plan_ss) > work(&plan_tt),
        "slow corner must require more optimization: {:?} vs {:?}",
        plan_ss.plan,
        plan_tt.plan
    );
    // The optimization points are "somewhat the same": every memory
    // divided at tt is also divided at ss.
    for key in plan_tt.plan.divisions.keys() {
        assert!(
            plan_ss.plan.divisions.contains_key(key),
            "tt divides {key:?}, ss must too"
        );
    }
}

/// The baseline fmax at the slow corner drops below 500 MHz — the
/// unoptimized design no longer closes without the map's help.
#[test]
fn slow_corner_baseline_misses_500() {
    use g_gpu::tech::Corner;
    let ss = Corner::SlowCold.apply(&Tech::l65());
    let d = generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
    let fmax = max_frequency(&d, &ss).unwrap().unwrap();
    assert!(fmax.value() < 500.0, "ss baseline fmax {fmax}");
    // ...and the planner recovers it with divisions.
    let planner = GpuPlanner::new(ss);
    let v = planner
        .plan(&Specification::new(1, Mhz::new(500.0)))
        .unwrap();
    assert!(v.synthesis.meets_timing);
    assert!(!v.plan.is_empty());
}
