//! Cross-check for the documented cache-capacity inconsistency.
//!
//! DESIGN.md records that the area model (Table-I calibration) and the
//! cycle model (Table-III calibration) assume *different* cache
//! capacities. `g_gpu::CacheSizing` is the code-level record of that
//! state; this test fails if either subsystem default silently drifts
//! away from it, so any change must update the constants (and
//! DESIGN.md) deliberately.

use g_gpu::rtl::GgpuConfig;
use g_gpu::simt::CacheConfig;
use g_gpu::CacheSizing;

#[test]
fn area_model_default_matches_documented_constant() {
    assert_eq!(
        GgpuConfig::default().cache_kib,
        CacheSizing::AREA_MODEL_KIB,
        "the RTL generator's default cache capacity drifted from the \
         documented Table-I calibration; update CacheSizing and the \
         DESIGN.md 'Known modelling inconsistencies' entry together"
    );
}

#[test]
fn cycle_model_default_matches_documented_constant() {
    assert_eq!(
        CacheConfig::default().size_kib,
        CacheSizing::CYCLE_MODEL_KIB,
        "the performance simulator's default cache capacity drifted \
         from the documented Table-III calibration; update CacheSizing \
         and the DESIGN.md 'Known modelling inconsistencies' entry \
         together"
    );
}

#[test]
// The assertion *is* on a constant — that is the point: the test body
// documents the recorded state and fails loudly when it changes.
#[allow(clippy::assertions_on_constants)]
fn the_documented_inconsistency_still_stands() {
    // If this starts failing, the two models were unified: flip
    // MODELS_DISAGREE, delete the DESIGN.md entry, and celebrate.
    assert!(CacheSizing::MODELS_DISAGREE);
    assert_eq!(CacheSizing::AREA_MODEL_KIB, 64);
    assert_eq!(CacheSizing::CYCLE_MODEL_KIB, 32);
}
