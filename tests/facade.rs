//! The root `g-gpu` facade must re-export every subsystem usable
//! together in one namespace.

use g_gpu::isa::assemble as simt_assemble;
use g_gpu::kernels::all;
use g_gpu::netlist::Design;
use g_gpu::planner::{GpuPlanner, Specification};
use g_gpu::riscv::assemble as rv_assemble;
use g_gpu::rtl::GgpuConfig;
use g_gpu::simt::{Gpu, Kernel, Launch, SimtConfig};
use g_gpu::sta::max_frequency;
use g_gpu::tech::units::Mhz;
use g_gpu::tech::Tech;

#[test]
fn every_subsystem_is_reachable_through_the_facade() {
    // tech + rtl + sta
    let tech = Tech::l65();
    let design: Design = g_gpu::rtl::generate(&GgpuConfig::with_cus(1).unwrap()).unwrap();
    assert!(max_frequency(&design, &tech).unwrap().is_some());

    // synth
    let report = g_gpu::synth::synthesize(&design, &tech, Mhz::new(500.0)).unwrap();
    assert!(report.meets_timing);

    // planner
    let planner = GpuPlanner::new(tech);
    assert!(planner
        .estimate(&Specification::new(1, Mhz::new(500.0)))
        .is_ok());

    // isa + simt
    let kernel = Kernel {
        name: "k".into(),
        program: simt_assemble("gid r1\nret").unwrap(),
    };
    let mut gpu = Gpu::new(SimtConfig::with_cus(1), 1024);
    assert!(gpu.launch(&kernel, &Launch::new(8, 8, vec![])).is_ok());

    // riscv
    assert!(rv_assemble("ecall").is_ok());

    // kernels
    assert_eq!(all().len(), 7);
}
